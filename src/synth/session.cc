#include "synth/session.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <iterator>
#include <mutex>
#include <unordered_map>

#include "common/hashing.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/connected_components.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/artifact_codec.h"
#include "persist/wire.h"
#include "stats/inverted_index.h"
#include "table/tsv.h"

namespace ms {

Status SynthesisOptions::Validate() const {
  MS_RETURN_IF_ERROR(extraction.Validate());
  MS_RETURN_IF_ERROR(blocking.Validate());
  MS_RETURN_IF_ERROR(compat.Validate());
  MS_RETURN_IF_ERROR(partitioner.Validate());
  if (min_pairs == 0) {
    return Status::InvalidArgument(
        "min_pairs must be >= 1: a zero-pair curation floor keeps empty "
        "mappings whose popularity ratios divide by zero");
  }
  if (min_domains == 0) {
    return Status::InvalidArgument(
        "min_domains must be >= 1: every mapping is contributed by at "
        "least one domain, so 0 expresses nothing and usually means an "
        "uninitialized config");
  }
  // A count beyond any real machine is an overflow/typo (e.g. a size_t
  // underflow producing 2^64 - 1), not a parallelism request; ThreadPool
  // would try to spawn that many workers and take the process down.
  constexpr size_t kMaxThreads = 4096;
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        "num_threads = " + std::to_string(num_threads) +
        " exceeds the sanity cap of " + std::to_string(kMaxThreads) +
        " (0 means hardware concurrency)");
  }
  return Status::OK();
}

uint64_t OptionsFingerprint(const SynthesisOptions& o) {
  // Serialize every result-affecting knob through the persist wire encoding
  // (stable little-endian bytes) and FNV-hash the stream. Field order is
  // part of snapshot compatibility: changing it orphans old snapshots with
  // FailedPrecondition, which is exactly what a semantics change should do.
  persist::WireWriter w;
  w.F64(o.extraction.coherence_threshold);
  w.F64(o.extraction.fd_theta);
  w.U64(o.extraction.min_pairs);
  w.U64(o.extraction.max_columns);
  w.Bool(o.extraction.drop_numeric_left);
  w.U64(o.extraction.coherence.max_sampled_values);
  w.U64(o.extraction.coherence.sample_seed);
  w.U64(o.extraction.coherence.min_value_support);
  w.Bool(o.extraction.normalize.lowercase);
  w.Bool(o.extraction.normalize.strip_punctuation);
  w.Bool(o.extraction.normalize.collapse_whitespace);
  w.Bool(o.extraction.normalize.strip_footnote_marks);
  w.U64(o.blocking.theta_overlap);
  w.U64(o.blocking.max_posting);
  w.Bool(o.compat.approximate_matching);
  w.F64(o.compat.edit.fractional);
  w.U64(o.compat.edit.cap);
  // Synonym feeds can't be persisted (caller-owned), but artifact contents
  // depend on theirs: fingerprint presence + content version so a restart
  // with a drifted dictionary refuses the stale graph.
  w.Bool(o.compat.synonyms != nullptr);
  w.U64(o.compat.synonyms ? o.compat.synonyms->version() : 0);
  w.F64(o.partitioner.tau);
  w.F64(o.partitioner.theta_edge);
  w.Bool(o.partitioner.use_negative_signals);
  w.Bool(o.conflict.synonyms != nullptr);
  w.U64(o.conflict.synonyms ? o.conflict.synonyms->version() : 0);
  w.Bool(o.resolve_conflicts);
  w.Bool(o.use_majority_voting);
  w.Bool(o.divide_and_conquer);
  w.U64(o.min_domains);
  w.U64(o.min_pairs);
  return Fnv1a64(w.bytes());
}

namespace {

/// The shared scoring core: chunked scoring of `pairs` into a finalized
/// graph. `worker_matcher` (optional) supplies a persistent per-worker
/// matcher — the session's warm path; when absent, each chunk builds a
/// short-lived matcher exactly like the pre-session pipeline, so both paths
/// stay byte-identical by construction.
CompatibilityGraph ScorePairsCore(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const std::vector<CandidateTablePair>& pairs,
    const CompatibilityOptions& compat, ThreadPool* threads,
    const std::function<BatchApproxMatcher*()>& worker_matcher,
    ScoringStats* scoring_out) {
  CompatibilityGraph graph(candidates.size());
  std::vector<PairScores> scores(pairs.size());

  // Pairs arrive sorted by (a, b), so consecutive pairs share table a and —
  // more importantly — value strings. Scoring in chunks through a matcher
  // lets every pattern bitmask build amortize across the chunk (and, for
  // session-owned matchers, across the whole run and every later run),
  // and the per-pair blocking hints let exactly-counted pairs skip the
  // pair-list merge entirely.
  constexpr size_t kScoringChunk = 256;
  const size_t num_chunks = (pairs.size() + kScoringChunk - 1) / kScoringChunk;
  std::vector<ScoringStats> chunk_stats(num_chunks);
  auto score_chunk = [&](size_t c) {
    const size_t begin = c * kScoringChunk;
    const size_t end = std::min(begin + kScoringChunk, pairs.size());
    BatchApproxMatcher* matcher =
        worker_matcher ? worker_matcher() : nullptr;
    std::unique_ptr<BatchApproxMatcher> local;
    if (matcher == nullptr) {
      local = std::make_unique<BatchApproxMatcher>(
          pool, compat.edit, compat.approximate_matching, compat.synonyms,
          compat.synonym_snapshot);
      matcher = local.get();
    }
    ScoringStats& st = chunk_stats[c];
    for (size_t i = begin; i < end; ++i) {
      const BlockingHint hint{pairs[i].shared_pairs, pairs[i].shared_lefts,
                              pairs[i].counts_exact};
      // ComputeCompatibility is orientation-sensitive: conflicts count the
      // FIRST table's conflicting left-runs, and the approximate-overlap
      // greedy matches the first table's residue against the second's. A
      // cold run orders operands by candidate id, which equals table order
      // under dense assignment — so score in (source table, id) order
      // explicitly. For cold runs this is the identical orientation; for
      // incremental families where a re-extracted table sits at tail ids it
      // is what keeps every edge weight bit-identical to the cold oracle's.
      const BinaryTable& ta = candidates[pairs[i].a];
      const BinaryTable& tb = candidates[pairs[i].b];
      const bool cold_swapped =
          std::tie(tb.source_table, pairs[i].b) <
          std::tie(ta.source_table, pairs[i].a);
      scores[i] = cold_swapped
                      ? ComputeCompatibility(tb, ta, pool, compat, matcher,
                                             &hint, &st)
                      : ComputeCompatibility(ta, tb, pool, compat, matcher,
                                             &hint, &st);
    }
    // Short-lived matchers surrender their kernel counters here; persistent
    // ones accumulate and are drained once per run by the session.
    if (local) st.matcher.Add(local->stats());
  };
  if (threads) {
    threads->ParallelFor(num_chunks, score_chunk);
  } else {
    for (size_t c = 0; c < num_chunks; ++c) score_chunk(c);
  }
  if (scoring_out) {
    for (const auto& st : chunk_stats) scoring_out->Add(st);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i].w_pos > 0.0 || scores[i].w_neg < 0.0) {
      graph.AddEdge(pairs[i].a, pairs[i].b, scores[i].w_pos, scores[i].w_neg);
    }
  }
  graph.Finalize();
  return graph;
}

/// Builds the component-local subgraph of `members` and runs Algorithm 3 on
/// it. `local_of` maps global vertex -> component-local index; cross-
/// component edges (positive weight below θ_edge) are filtered via `comp`.
/// Shared by Partition() and the append path's dirty-component re-run so
/// both produce identical partitions for identical components.
PartitionResult PartitionComponentSubgraph(
    const CompatibilityGraph& graph, const std::vector<uint32_t>& comp,
    const std::vector<uint32_t>& local_of,
    const std::vector<VertexId>& members, const PartitionerOptions& options) {
  CompatibilityGraph sub(members.size());
  for (VertexId v : members) {
    for (uint32_t e : graph.IncidentEdges(v)) {
      const auto& edge = graph.edges()[e];
      if (edge.u != v) continue;  // visit each edge once (u < v)
      if (comp[edge.v] != comp[v]) continue;
      sub.AddEdge(local_of[edge.u], local_of[edge.v], edge.w_pos, edge.w_neg);
    }
  }
  sub.Finalize();
  return GreedyPartition(sub, options);
}

/// Conflict resolution + mapping assembly for a set of partition groups
/// (pre-curation). Shared by Resolve() (all groups) and the append path
/// (dirty groups only); both must build mappings identically.
std::vector<SynthesizedMapping> ResolveGroups(
    const std::vector<BinaryTable>& cands,
    const std::vector<std::vector<VertexId>>& groups,
    const SynthesisOptions& options, const ConflictResolutionOptions& conflict,
    ThreadPool* threads) {
  std::vector<SynthesizedMapping> mappings(groups.size());
  auto resolve_one = [&](size_t gi) {
    std::vector<const BinaryTable*> tables;
    tables.reserve(groups[gi].size());
    for (VertexId v : groups[gi]) tables.push_back(&cands[v]);

    if (options.use_majority_voting) {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      SynthesizedMapping m = BuildMapping(tables, all);
      m.merged = BinaryTable::FromPairs(MajorityVotePairs(tables, conflict));
      mappings[gi] = std::move(m);
    } else if (options.resolve_conflicts) {
      auto resolved = ResolveConflicts(tables, conflict);
      mappings[gi] = BuildMapping(tables, resolved.kept);
    } else {
      std::vector<size_t> all(tables.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      mappings[gi] = BuildMapping(tables, all);
    }
  };
  if (threads) {
    threads->ParallelFor(groups.size(), resolve_one);
  } else {
    for (size_t gi = 0; gi < groups.size(); ++gi) resolve_one(gi);
  }
  return mappings;
}

/// Field-wise sum of extraction counters: append passes report delta-only
/// counters that extend the base run's cumulative totals.
void AddExtractionStats(ExtractionStats* dst, const ExtractionStats& s) {
  dst->tables_seen += s.tables_seen;
  dst->columns_seen += s.columns_seen;
  dst->columns_kept += s.columns_kept;
  dst->pairs_considered += s.pairs_considered;
  dst->pairs_kept += s.pairs_kept;
  dst->normalize_cache_hits += s.normalize_cache_hits;
  dst->normalize_cache_misses += s.normalize_cache_misses;
}

/// One histogram per pipeline stage, labelled `ms_synth_stage_us{stage=...}`.
/// `stage` must be a string literal; call sites cache the pointer in a
/// function-local static so the hot path never touches the registry mutex.
obs::Histogram* StageHistogram(const char* stage) {
  return obs::MetricsRegistry::Global().GetHistogram("ms_synth_stage_us",
                                                     {{"stage", stage}});
}

void FillBlockingStats(const BlockingStats& bstats, size_t num_pairs,
                       double seconds, PipelineStats* stats) {
  stats->blocking_seconds = seconds;
  stats->candidate_pairs = num_pairs;
  stats->blocking_map_shuffle_seconds = bstats.map_shuffle_seconds;
  stats->blocking_count_seconds = bstats.count_seconds;
  stats->blocking_reduce_seconds = bstats.reduce_seconds;
  stats->blocking_keys = bstats.keys;
  stats->blocking_dropped_postings = bstats.dropped_postings;
  stats->blocking_tainted_candidates = bstats.tainted_candidates;
}

}  // namespace

CompatibilityGraph BuildCompatibilityGraph(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const BlockingOptions& blocking, const CompatibilityOptions& compat,
    ThreadPool* pool_threads, PipelineStats* stats) {
  Timer timer;
  BlockingStats bstats;
  auto pairs =
      GenerateCandidatePairs(candidates, blocking, pool_threads, &bstats);
  if (stats) {
    FillBlockingStats(bstats, pairs.size(), timer.ElapsedSeconds(), stats);
  }

  timer.Restart();
  ScoringStats scoring;
  CompatibilityGraph graph = ScorePairsCore(candidates, pool, pairs, compat,
                                            pool_threads, nullptr, &scoring);
  if (stats) {
    stats->scoring.Add(scoring);
    stats->scoring_seconds = timer.ElapsedSeconds();
    stats->graph_edges = graph.num_edges();
  }
  return graph;
}

// ------------------------------------------------------------------ session

/// Per-worker persistent matchers: slot i belongs to pool worker i, the
/// extra last slot to the submitting thread (serial runs). Cache contents
/// never affect scores, so reuse across runs changes speed only.
struct SynthesisSession::MatcherSlots {
  const StringPool* pool = nullptr;
  double fractional = 0.0;
  size_t cap = 0;
  std::vector<std::unique_ptr<BatchApproxMatcher>> slots;
};

SynthesisSession::SynthesisSession(SynthesisOptions options)
    : options_(std::move(options)) {
  init_status_ = options_.Validate();
  if (init_status_.ok()) {
    threads_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

SynthesisSession::~SynthesisSession() = default;

Status SynthesisSession::UpdateOptions(SynthesisOptions options) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(options.Validate());
  const bool threads_changed =
      options.num_threads != options_.num_threads || threads_ == nullptr;
  if (options.compat.synonyms != options_.compat.synonyms) {
    snapshot_valid_ = false;
  }
  options_ = std::move(options);
  init_status_ = Status::OK();
  if (threads_changed) {
    matchers_.reset();  // slots are sized to the pool
    threads_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return Status::OK();
}

Status SynthesisSession::ReadyToRun() const {
  if (!init_status_.ok()) return init_status_;
  return Status::OK();
}

Status SynthesisSession::CheckSameSession(const char* stage,
                                          const void* session) const {
  if (session != this) {
    return Status::FailedPrecondition(
        std::string(stage) +
        ": artifact was produced by a different SynthesisSession");
  }
  return Status::OK();
}

Status SynthesisSession::CheckLineage(const char* stage, const void* session,
                                      uint64_t got_candidates_id,
                                      uint64_t want_candidates_id) const {
  MS_RETURN_IF_ERROR(CheckSameSession(stage, session));
  if (got_candidates_id != want_candidates_id) {
    return Status::FailedPrecondition(
        std::string(stage) +
        ": artifact lineage mismatch — the artifacts come from different "
        "candidate sets (ids " + std::to_string(got_candidates_id) + " vs " +
        std::to_string(want_candidates_id) + ")");
  }
  return Status::OK();
}

const SynonymSnapshot* SynthesisSession::RefreshSnapshot(
    const SynonymDictionary* dict) {
  const uint64_t v = dict->version();
  if (!snapshot_valid_ || synonym_snapshot_.source_version() != v) {
    synonym_snapshot_ = dict->Snapshot();
    snapshot_valid_ = true;
    ++session_stats_.snapshot_rebuilds;
  }
  return &synonym_snapshot_;
}

CompatibilityOptions SynthesisSession::EffectiveCompat() {
  CompatibilityOptions eff = options_.compat;
  if (eff.synonyms != nullptr && eff.synonym_snapshot == nullptr) {
    eff.synonym_snapshot = RefreshSnapshot(eff.synonyms);
  }
  return eff;
}

ConflictResolutionOptions SynthesisSession::EffectiveConflict() {
  ConflictResolutionOptions eff = options_.conflict;
  // Reuse the scoring snapshot when conflict resolution reads the same
  // dictionary (the common wiring); a different dictionary keeps the locked
  // path rather than risking a view of the wrong feed.
  if (eff.synonyms != nullptr && eff.synonym_snapshot == nullptr &&
      eff.synonyms == options_.compat.synonyms) {
    eff.synonym_snapshot = RefreshSnapshot(eff.synonyms);
  }
  return eff;
}

Result<CandidateSet> SynthesisSession::ExtractCandidates(
    const TableCorpus& corpus) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  static obs::Histogram* const stage_us = StageHistogram("extract");
  obs::TraceSpan span("synth.extract", stage_us);
  CandidateSet out;
  Timer step;
  // With the coherence filter disabled (threshold at/below the score
  // floor), ColumnPassesCoherence short-circuits and nothing reads the
  // index — skip the full-corpus build.
  ColumnInvertedIndex index;
  if (options_.extraction.coherence_threshold > -1.0) {
    index.Build(corpus, threads_.get());
  }
  out.stats.index_seconds = step.ElapsedSeconds();

  step.Restart();
  ExtractionResult extracted = ::ms::ExtractCandidates(
      corpus, index, options_.extraction, threads_.get());
  out.stats.extract_seconds = step.ElapsedSeconds();
  out.stats.extraction = extracted.stats;
  out.owned = std::move(extracted.candidates);
  out.stats.candidates = out.owned.size();
  out.pool = &corpus.pool();
  out.source_tables = corpus.size();
  out.kept_offsets = std::move(extracted.kept_offsets);
  out.kept_columns = std::move(extracted.kept_columns);
  out.margin_offsets = std::move(extracted.margin_offsets);
  out.margins = std::move(extracted.margins);
  if (options_.extraction.coherence_threshold > -1.0) {
    // Seed the maintained-index cache: the first incremental mutation on
    // this corpus patches these postings in place instead of paying a
    // full rebuild (cold extraction is generation 0 of the family).
    index_cache_ = std::move(index);
    index_corpus_ = &corpus;
    index_tables_ = corpus.size();
    index_columns_ = index_cache_.num_columns();
    index_generation_ = 0;
  }
  out.artifact_id = NextArtifactId();
  out.session = this;
  ++session_stats_.extract_runs;
  return out;
}

Result<CandidateSet> SynthesisSession::AdoptCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].id != static_cast<BinaryTableId>(i)) {
      return Status::InvalidArgument(
          "AdoptCandidates: candidate ids must be dense 0..n-1 (candidate " +
          std::to_string(i) + " has id " + std::to_string(candidates[i].id) +
          "); provenance and graph vertices index by id");
    }
  }
  CandidateSet out;
  out.borrowed = &candidates;
  out.pool = &pool;
  out.stats.candidates = candidates.size();
  out.artifact_id = NextArtifactId();
  out.session = this;
  ++session_stats_.adopt_runs;
  return out;
}

Result<BlockedPairs> SynthesisSession::BlockPairs(
    const CandidateSet& candidates) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("BlockPairs", candidates.session));
  static obs::Histogram* const stage_us = StageHistogram("block");
  obs::TraceSpan span("synth.block", stage_us);
  BlockedPairs out;
  Timer timer;
  out.pairs = GenerateCandidatePairs(candidates.tables(), options_.blocking,
                                     threads_.get(), &out.blocking);
  out.stats = candidates.stats;
  FillBlockingStats(out.blocking, out.pairs.size(), timer.ElapsedSeconds(),
                    &out.stats);
  out.artifact_id = NextArtifactId();
  out.candidates_id = candidates.artifact_id;
  out.session = this;
  ++session_stats_.blocking_runs;
  return out;
}

CompatibilityGraph SynthesisSession::ScoreThroughSessionMatchers(
    const std::vector<BinaryTable>& tables, const StringPool& pool,
    const std::vector<CandidateTablePair>& pairs, ScoringStats* scoring) {
  const CompatibilityOptions eff = EffectiveCompat();

  // (Re)build or re-point the per-worker matchers. Everything cached in a
  // matcher depends only on the pool contents and edit.fractional, so a
  // re-score under tweaked thresholds starts with every mask it ever built.
  const size_t num_slots = threads_->num_threads() + 1;
  const bool warm = matchers_ != nullptr && matchers_->pool == &pool &&
                    matchers_->slots.size() == num_slots &&
                    matchers_->fractional == eff.edit.fractional &&
                    matchers_->cap == options_.matcher_cache_cap;
  if (!warm) {
    matchers_ = std::make_unique<MatcherSlots>();
    matchers_->pool = &pool;
    matchers_->fractional = eff.edit.fractional;
    matchers_->cap = options_.matcher_cache_cap;
    matchers_->slots.resize(num_slots);
    for (auto& slot : matchers_->slots) {
      slot = std::make_unique<BatchApproxMatcher>(
          pool, eff.edit, eff.approximate_matching, eff.synonyms,
          eff.synonym_snapshot, options_.matcher_cache_cap);
    }
  } else {
    ++session_stats_.warm_scoring_runs;
    for (auto& slot : matchers_->slots) {
      slot->Reconfigure(eff.edit, eff.approximate_matching, eff.synonyms,
                        eff.synonym_snapshot);
    }
  }
  for (auto& slot : matchers_->slots) slot->ResetStats();

  auto worker_matcher = [this, num_slots]() -> BatchApproxMatcher* {
    size_t wi = ThreadPool::CurrentWorkerIndex();
    if (wi == ThreadPool::kNotAWorker || wi + 1 >= num_slots) {
      wi = num_slots - 1;
    }
    return matchers_->slots[wi].get();
  };

  CompatibilityGraph graph = ScorePairsCore(tables, pool, pairs, eff,
                                            threads_.get(), worker_matcher,
                                            scoring);
  for (const auto& slot : matchers_->slots) {
    scoring->matcher.Add(slot->stats());
  }
  return graph;
}

Result<ScoredGraph> SynthesisSession::ScorePairs(
    const CandidateSet& candidates, const BlockedPairs& blocked) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  // Both artifacts must come from this session — artifact ids are only
  // unique within one session's counter, so the id comparison below is
  // meaningless across sessions.
  MS_RETURN_IF_ERROR(CheckSameSession("ScorePairs", candidates.session));
  MS_RETURN_IF_ERROR(CheckLineage("ScorePairs", blocked.session,
                                  blocked.candidates_id,
                                  candidates.artifact_id));
  static obs::Histogram* const stage_us = StageHistogram("score");
  obs::TraceSpan span("synth.score", stage_us);
  ScoredGraph out;
  Timer timer;
  ScoringStats scoring;
  out.graph = ScoreThroughSessionMatchers(candidates.tables(),
                                          *candidates.pool, blocked.pairs,
                                          &scoring);
  out.stats = blocked.stats;  // blocking never fills scoring, so this run's
  out.stats.scoring.Add(scoring);  // counters land on a clean slate
  out.stats.scoring_seconds = timer.ElapsedSeconds();
  out.stats.graph_edges = out.graph.num_edges();
  out.artifact_id = NextArtifactId();
  out.candidates_id = candidates.artifact_id;
  out.session = this;
  ++session_stats_.scoring_runs;
  return out;
}

Result<Partitions> SynthesisSession::Partition(const ScoredGraph& sg) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("Partition", sg.session));
  static obs::Histogram* const stage_us = StageHistogram("partition");
  obs::TraceSpan span("synth.partition", stage_us);
  const CompatibilityGraph& graph = sg.graph;
  Partitions out;
  out.stats = sg.stats;

  // Algorithm 3, optionally per positive component (Appendix F
  // divide-and-conquer).
  Timer step;
  PartitionResult partition;
  if (options_.divide_and_conquer) {
    auto comp = ConnectedComponentsBfs(graph, options_.partitioner.theta_edge);
    auto groups = GroupByComponent(comp);
    out.stats.components = groups.size();

    // One global vertex -> component-local-index table, filled in a single
    // O(V) pass: component member lists are disjoint, so per-component
    // O(V) scratch vectors (the previous shape) would cost O(V·C) total.
    // Cross-component edges (positive weight below θ_edge) are filtered by
    // comparing component ids, which local_of alone can no longer express.
    std::vector<uint32_t> local_of(graph.num_vertices(), 0);
    for (const auto& members : groups) {
      for (uint32_t i = 0; i < members.size(); ++i) local_of[members[i]] = i;
    }

    partition.partition_of.assign(graph.num_vertices(), 0);
    std::atomic<uint32_t> next_partition{0};
    std::mutex mu;

    auto run_component = [&](size_t gi) {
      const auto& members = groups[gi];
      if (members.size() == 1) {
        uint32_t pid = next_partition.fetch_add(1);
        partition.partition_of[members[0]] = pid;
        return;
      }
      PartitionResult local = PartitionComponentSubgraph(
          graph, comp, local_of, members, options_.partitioner);
      uint32_t base = next_partition.fetch_add(
          static_cast<uint32_t>(local.num_partitions));
      for (uint32_t i = 0; i < members.size(); ++i) {
        partition.partition_of[members[i]] = base + local.partition_of[i];
      }
      std::lock_guard<std::mutex> lock(mu);
      partition.merges_performed += local.merges_performed;
    };
    threads_->ParallelFor(groups.size(), run_component);
    partition.num_partitions = next_partition.load();
  } else {
    partition = GreedyPartition(graph, options_.partitioner);
  }
  out.stats.partition_seconds = step.ElapsedSeconds();
  out.stats.partitions = partition.num_partitions;
  out.partition = std::move(partition);
  out.artifact_id = NextArtifactId();
  out.candidates_id = sg.candidates_id;
  out.graph_id = sg.artifact_id;
  out.session = this;
  ++session_stats_.partition_runs;
  return out;
}

Result<SynthesisResult> SynthesisSession::Resolve(
    const CandidateSet& candidates, const ScoredGraph& graph,
    const Partitions& partitions) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("Resolve", candidates.session));
  MS_RETURN_IF_ERROR(CheckLineage("Resolve", graph.session,
                                  graph.candidates_id,
                                  candidates.artifact_id));
  MS_RETURN_IF_ERROR(CheckLineage("Resolve", partitions.session,
                                  partitions.candidates_id,
                                  candidates.artifact_id));
  // The partitions must come from *this* graph, not just the same
  // candidate set: the same candidates scored under different options
  // yield different graphs, and mixing them would pair one graph's stats
  // with another's partitioning.
  if (partitions.graph_id != graph.artifact_id) {
    return Status::FailedPrecondition(
        "Resolve: partitions were computed from a different ScoredGraph "
        "(ids " + std::to_string(partitions.graph_id) + " vs " +
        std::to_string(graph.artifact_id) + ")");
  }
  static obs::Histogram* const stage_us = StageHistogram("resolve");
  obs::TraceSpan span("synth.resolve", stage_us);
  const std::vector<BinaryTable>& cands = candidates.tables();
  const ConflictResolutionOptions conflict = EffectiveConflict();

  SynthesisResult result;
  result.stats = partitions.stats;

  // Conflict resolution + mapping assembly.
  Timer step;
  auto groups = partitions.partition.Groups();
  std::vector<SynthesizedMapping> mappings =
      ResolveGroups(cands, groups, options_, conflict, threads_.get());
  result.stats.resolve_seconds = step.ElapsedSeconds();

  result.mappings = FilterByPopularity(std::move(mappings),
                                       options_.min_domains,
                                       options_.min_pairs);
  result.stats.mappings = result.mappings.size();
  result.stats.total_seconds =
      result.stats.index_seconds + result.stats.extract_seconds +
      result.stats.blocking_seconds + result.stats.scoring_seconds +
      result.stats.partition_seconds + result.stats.resolve_seconds;
  ++session_stats_.resolve_runs;
  MS_LOG(Info) << "synthesis: " << result.stats.candidates << " candidates, "
               << result.stats.graph_edges << " edges, "
               << result.stats.partitions << " partitions, "
               << result.stats.mappings << " mappings";
  return result;
}

// --------------------------------------------------------- incremental growth

Status SynthesisSession::ValidateAppendFamily(
    const CandidateSet& candidates, const BlockedPairs& blocked,
    const ScoredGraph& scored, const Partitions& partitions,
    const SynthesisResult& result) const {
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("AppendTables", candidates.session));
  MS_RETURN_IF_ERROR(CheckLineage("AppendTables", blocked.session,
                                  blocked.candidates_id,
                                  candidates.artifact_id));
  MS_RETURN_IF_ERROR(CheckLineage("AppendTables", scored.session,
                                  scored.candidates_id,
                                  candidates.artifact_id));
  MS_RETURN_IF_ERROR(CheckLineage("AppendTables", partitions.session,
                                  partitions.candidates_id,
                                  candidates.artifact_id));
  if (partitions.graph_id != scored.artifact_id) {
    return Status::FailedPrecondition(
        "AppendTables: partitions were computed from a different ScoredGraph "
        "(ids " + std::to_string(partitions.graph_id) + " vs " +
        std::to_string(scored.artifact_id) + ")");
  }
  if (candidates.kept_offsets.size() != candidates.source_tables + 1) {
    return Status::FailedPrecondition(
        "AppendTables: the candidate set carries no extraction signatures "
        "(adopted candidates or a pre-append-format snapshot) — incremental "
        "growth needs the per-table kept-column provenance ExtractCandidates "
        "records to re-check coherence under the grown corpus");
  }
  // SynthesisResult carries no lineage ids of its own; the member-table
  // bounds check catches a result from a different (larger) family before
  // the carry-over path would index component arrays with it.
  for (const SynthesizedMapping& m : result.mappings) {
    for (BinaryTableId id : m.member_tables) {
      if (id >= candidates.tables().size()) {
        return Status::FailedPrecondition(
            "AppendTables: result references candidate " +
            std::to_string(id) + " outside the candidate set (" +
            std::to_string(candidates.tables().size()) +
            " candidates) — it is not this artifact family's result");
      }
    }
  }
  return Status::OK();
}

Result<AppendedArtifacts> SynthesisSession::AppendTables(
    const TableCorpus& corpus, size_t first_new_table,
    const CandidateSet& candidates, const BlockedPairs& blocked,
    const ScoredGraph& scored, const Partitions& partitions,
    const SynthesisResult& result) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(
      ValidateAppendFamily(candidates, blocked, scored, partitions, result));
  if (first_new_table != candidates.source_tables) {
    return Status::InvalidArgument(
        "AppendTables: first_new_table (" + std::to_string(first_new_table) +
        ") must equal the table count the candidate set was extracted from (" +
        std::to_string(candidates.source_tables) +
        "); the corpus prefix must be exactly the synthesized tables");
  }
  if (corpus.size() < first_new_table) {
    return Status::InvalidArgument(
        "AppendTables: corpus has " + std::to_string(corpus.size()) +
        " tables but the artifacts were synthesized from " +
        std::to_string(first_new_table) + " — corpora only grow");
  }
  ++session_stats_.append_runs;
  return ApplyCorpusDeltaLocked(corpus, first_new_table, {}, {},
                                /*removed_columns=*/0, candidates, blocked,
                                scored, partitions, result);
}

const ColumnInvertedIndex& SynthesisSession::MaintainedIndexLocked(
    const TableCorpus& corpus, size_t first_new_table,
    const std::vector<uint32_t>& removed_tables, size_t removed_columns,
    uint32_t base_generation) {
  // Reconstruct the pre-mutation fingerprint: the corpus is already
  // mutated, so the pre-state is its current live columns minus the
  // appended tables' plus what the tombstoning cleared.
  size_t appended_columns = 0;
  for (size_t t = first_new_table; t < corpus.size(); ++t) {
    appended_columns += corpus.table(t).num_columns();
  }
  const size_t pre_columns =
      corpus.TotalColumns() - appended_columns + removed_columns;
  const bool patchable = index_corpus_ == &corpus &&
                         index_tables_ == first_new_table &&
                         index_columns_ == pre_columns &&
                         index_generation_ == base_generation;
  if (patchable) {
    if (!removed_tables.empty()) index_cache_.RemoveTables(removed_tables);
    if (corpus.size() > first_new_table) {
      index_cache_.AppendTables(corpus, first_new_table);
    }
  } else {
    index_cache_.Build(corpus, threads_.get());
  }
  index_corpus_ = &corpus;
  index_tables_ = corpus.size();
  index_columns_ = index_cache_.num_columns();
  index_generation_ = base_generation + 1;
  return index_cache_;
}

Result<AppendedArtifacts> SynthesisSession::ApplyCorpusDeltaLocked(
    const TableCorpus& corpus, size_t first_new_table,
    std::vector<uint32_t> removed_tables, std::vector<ValueId> removed_values,
    size_t removed_columns, const CandidateSet& candidates,
    const BlockedPairs& blocked, const ScoredGraph& scored,
    const Partitions& partitions, const SynthesisResult& result) {
  // The corpus pool may be a different object than the artifacts' pool
  // (restore-then-append: artifacts resolve against the mmap'd snapshot
  // pool, the corpus against a reopened store). Ids must agree wherever
  // both pools define them, or artifact ValueIds would silently change
  // meaning; verify the shared prefix outright.
  const StringPool* pool = &corpus.pool();
  if (candidates.pool == nullptr) {
    return Status::FailedPrecondition(
        "AppendTables: candidate set has no string pool");
  }
  if (candidates.pool != pool) {
    const size_t n = candidates.pool->size();
    if (pool->size() < n) {
      return Status::FailedPrecondition(
          "AppendTables: the corpus pool holds " +
          std::to_string(pool->size()) + " strings but the artifacts "
          "reference " + std::to_string(n) +
          " — persist the corpus store from the same pool state as the "
          "snapshot (after synthesis) so normalized values share ids");
    }
    for (size_t i = 0; i < n; ++i) {
      if (pool->Get(static_cast<ValueId>(i)) !=
          candidates.pool->Get(static_cast<ValueId>(i))) {
        return Status::FailedPrecondition(
            "AppendTables: the corpus pool diverges from the artifacts' "
            "pool at id " + std::to_string(i) +
            " — these artifacts were not synthesized from this corpus");
      }
    }
  }

  static obs::Histogram* const stage_us = StageHistogram("append");
  obs::TraceSpan span("synth.append", stage_us);
  static obs::Counter* const unstable_total =
      obs::MetricsRegistry::Global().GetCounter(
          "ms_synth_append_unstable_total");
  static obs::Counter* const full_rebuilds_total =
      obs::MetricsRegistry::Global().GetCounter(
          "ms_synth_append_full_rebuilds_total");
  static obs::Counter* const margin_skips_total =
      obs::MetricsRegistry::Global().GetCounter(
          "ms_synth_coherence_margin_skips_total");
  static obs::Counter* const margin_rechecks_total =
      obs::MetricsRegistry::Global().GetCounter(
          "ms_synth_coherence_margin_rechecks_total");
  Timer append_timer;
  AppendedArtifacts out;
  out.append.appended_tables = corpus.size() - first_new_table;
  out.append.removed_tables = removed_tables.size();

  const std::vector<BinaryTable>& base_tables = candidates.tables();
  const auto restamp = [&](uint32_t generation) {
    out.candidates.artifact_id = NextArtifactId();
    out.candidates.session = this;
    out.candidates.generation = generation;
    out.blocked.artifact_id = NextArtifactId();
    out.blocked.candidates_id = out.candidates.artifact_id;
    out.blocked.session = this;
    out.scored.artifact_id = NextArtifactId();
    out.scored.candidates_id = out.candidates.artifact_id;
    out.scored.session = this;
    out.partitions.artifact_id = NextArtifactId();
    out.partitions.candidates_id = out.candidates.artifact_id;
    out.partitions.graph_id = out.scored.artifact_id;
    out.partitions.session = this;
  };

  // Empty mutation: nothing can change — hand back copies of the inputs
  // under a fresh lineage generation.
  if (corpus.size() == first_new_table && removed_tables.empty()) {
    out.candidates = candidates;
    out.blocked = blocked;
    out.scored = scored;
    out.partitions = partitions;
    out.result = result;
    restamp(candidates.generation + 1);
    out.append.extraction_stable = true;
    out.append.carried_mappings = result.mappings.size();
    out.append.append_seconds = append_timer.ElapsedSeconds();
    return out;
  }

  // Candidates retired by the removal itself (flipped tables add theirs
  // after extraction below).
  std::vector<uint8_t> newly_dead(base_tables.size(), 0);
  size_t newly_dead_count = 0;
  for (size_t i = 0; !removed_tables.empty() && i < base_tables.size(); ++i) {
    if (candidates.is_dead(static_cast<BinaryTableId>(i))) continue;
    if (std::binary_search(removed_tables.begin(), removed_tables.end(),
                           base_tables[i].source_table)) {
      newly_dead[i] = 1;
      ++newly_dead_count;
    }
  }

  // --- Maintained index + incremental extraction. Re-checking every live
  // old table's coherence signature is the exactness tax: coherence is
  // corpus-global (p(u) = |C(u)|/N moves for every value when the corpus
  // changes) — but the maintained index patches postings in place instead
  // of rebuilding, the margin cache proves most verdicts stable without
  // touching a posting list, and the expensive half of extraction
  // (normalize + FD filter + candidate assembly) runs only over the
  // appended and flipped tables.
  Timer step;
  ColumnInvertedIndex no_index;
  const ColumnInvertedIndex& index =
      options_.extraction.coherence_threshold > -1.0
          ? MaintainedIndexLocked(corpus, first_new_table, removed_tables,
                                  removed_columns, candidates.generation)
          : no_index;
  const double index_s = step.ElapsedSeconds();

  step.Restart();
  const BinaryTableId first_new_id =
      static_cast<BinaryTableId>(base_tables.size());
  DeltaExtractionRequest request;
  request.first_new_table = first_new_table;
  request.first_new_id = first_new_id;
  request.base_kept_offsets = &candidates.kept_offsets;
  request.base_kept_columns = &candidates.kept_columns;
  if (candidates.margin_offsets.size() == first_new_table + 1) {
    request.base_margin_offsets = &candidates.margin_offsets;
    request.base_margins = &candidates.margins;
  }
  request.removed_tables = removed_tables;
  request.removed_values = std::move(removed_values);
  DeltaExtractionResult delta = ExtractCandidatesDelta(
      corpus, index, request, options_.extraction, threads_.get());
  const double extract_s = step.ElapsedSeconds();
  out.append.extraction_stable = delta.stable;
  out.append.unstable_tables = delta.unstable_tables;
  out.append.margin_skips = delta.margin_skips;
  out.append.margin_rechecks = delta.margin_rechecks;
  out.append.new_candidates = delta.new_candidates.size();
  unstable_total->Add(delta.unstable_tables);
  margin_skips_total->Add(delta.margin_skips);
  margin_rechecks_total->Add(delta.margin_rechecks);

  const size_t live_old_tables = first_new_table -
                                 candidates.tombstoned_tables.size() -
                                 removed_tables.size();
  const auto full_rebuild =
      [&](const std::string& why) -> Result<AppendedArtifacts> {
    ++session_stats_.append_full_rebuilds;
    full_rebuilds_total->Increment();
    out.append.full_rebuild = true;
    Result<CandidateSet> c = ExtractCandidates(corpus);
    if (!c.ok()) return c.status();
    Result<BlockedPairs> b = BlockPairs(c.value());
    if (!b.ok()) return b.status();
    Result<ScoredGraph> g = ScorePairs(c.value(), b.value());
    if (!g.ok()) return g.status();
    Result<Partitions> p = Partition(g.value());
    if (!p.ok()) return p.status();
    Result<SynthesisResult> r = Resolve(c.value(), g.value(), p.value());
    if (!r.ok()) return r.status();
    out.candidates = std::move(c).value();
    out.candidates.generation = candidates.generation + 1;
    // The internal cold extraction reseeded the index cache at generation
    // 0; the family continues at the next generation.
    index_generation_ = candidates.generation + 1;
    // The corpus slots stay shells; record them so observers (and the
    // snapshot) keep the provenance even though the fresh extraction has
    // no dead candidates to carry.
    out.candidates.tombstoned_tables = candidates.tombstoned_tables;
    out.candidates.tombstoned_tables.insert(
        out.candidates.tombstoned_tables.end(), removed_tables.begin(),
        removed_tables.end());
    std::sort(out.candidates.tombstoned_tables.begin(),
              out.candidates.tombstoned_tables.end());
    out.blocked = std::move(b).value();
    out.scored = std::move(g).value();
    out.partitions = std::move(p).value();
    out.result = std::move(r).value();
    out.append.removed_candidates = newly_dead_count;
    out.append.new_candidates =
        out.candidates.owned.size() -
        std::min(out.candidates.owned.size(), base_tables.size());
    out.append.append_seconds = append_timer.ElapsedSeconds();
    MS_LOG(Info) << "append: " << why << "; fell back to a full rebuild ("
                 << out.candidates.owned.size() << " candidates)";
    return out;
  };
  if (!delta.stable && delta.unstable_tables * 2 > live_old_tables) {
    // A majority of the surviving tables flipped their coherence verdict:
    // partial re-extraction would churn most candidate ids anyway, so an
    // internal cold re-run is both cheaper and re-densifies ids (results
    // are still exact — exactness is never traded for speed).
    return full_rebuild(std::to_string(delta.unstable_tables) + "/" +
                        std::to_string(live_old_tables) +
                        " coherence verdicts shifted");
  }
  // Flipped tables: their base candidates are superseded by the
  // re-extractions riding along in delta.new_candidates.
  for (size_t i = 0;
       !delta.flipped_tables.empty() && i < base_tables.size(); ++i) {
    if (newly_dead[i] || candidates.is_dead(static_cast<BinaryTableId>(i))) {
      continue;
    }
    if (std::binary_search(delta.flipped_tables.begin(),
                           delta.flipped_tables.end(),
                           base_tables[i].source_table)) {
      newly_dead[i] = 1;
      ++newly_dead_count;
    }
  }
  out.append.removed_candidates = newly_dead_count;
  const bool have_dead = newly_dead_count > 0;

  // --- Merge candidates: base ids are untouched, new candidates (appended
  // tables' and flipped tables' re-extractions) take the next dense ids in
  // table order. Retired candidates keep their id and provenance but lose
  // their pairs — downstream they have the footprint of a candidate that
  // was never extracted.
  out.candidates.owned = base_tables;
  out.candidates.owned.reserve(base_tables.size() +
                               delta.new_candidates.size());
  for (auto& c : delta.new_candidates) {
    out.candidates.owned.push_back(std::move(c));
  }
  if (have_dead) {
    for (size_t i = 0; i < newly_dead.size(); ++i) {
      if (!newly_dead[i]) continue;
      BinaryTable& t = out.candidates.owned[i];
      BinaryTable cleared = BinaryTable::FromPairs({});
      cleared.id = t.id;
      cleared.source_table = t.source_table;
      cleared.domain = std::move(t.domain);
      cleared.source = t.source;
      cleared.left_name = std::move(t.left_name);
      cleared.right_name = std::move(t.right_name);
      t = std::move(cleared);
    }
  }
  out.candidates.dead = candidates.dead;
  if (have_dead || !out.candidates.dead.empty()) {
    out.candidates.dead.resize(out.candidates.owned.size(), 0);
    for (size_t i = 0; i < newly_dead.size(); ++i) {
      if (newly_dead[i]) out.candidates.dead[i] = 1;
    }
  }
  out.candidates.tombstoned_tables = candidates.tombstoned_tables;
  if (!removed_tables.empty()) {
    out.candidates.tombstoned_tables.insert(
        out.candidates.tombstoned_tables.end(), removed_tables.begin(),
        removed_tables.end());
    std::sort(out.candidates.tombstoned_tables.begin(),
              out.candidates.tombstoned_tables.end());
  }
  const size_t total_dead = out.candidates.num_dead();
  out.candidates.pool = pool;
  out.candidates.source_tables = corpus.size();
  out.candidates.kept_offsets = std::move(delta.kept_offsets);
  out.candidates.kept_columns = std::move(delta.kept_columns);
  out.candidates.margin_offsets = std::move(delta.margin_offsets);
  out.candidates.margins = std::move(delta.margins);
  out.candidates.stats = candidates.stats;
  out.candidates.stats.index_seconds += index_s;
  out.candidates.stats.extract_seconds += extract_s;
  AddExtractionStats(&out.candidates.stats.extraction, delta.stats);
  out.candidates.stats.candidates = out.candidates.owned.size() - total_dead;

  // Appends and removals only ever *relabel* live candidate ids — they
  // never reorder them, so the live sequence stays sorted by source table
  // exactly like a cold run's dense assignment. A flipped table's
  // re-extraction is the one mutation that can break this (it takes tail
  // ids where a cold run would slot it in table order), and the break
  // persists across later mutations until the table is removed or a
  // rebuild re-densifies ids. Every downstream step that is
  // id-ORDER-dependent — posting-list truncation keeps the lowest ids, the
  // global greedy partition tie-breaks on vertex ids — is cold-exact iff
  // this ordering holds, so the order, not the presence of flips, is what
  // gates the shortcuts below.
  bool order_ok = true;
  {
    uint32_t prev_table = 0;
    for (size_t i = 0; i < out.candidates.owned.size(); ++i) {
      if (i < out.candidates.dead.size() && out.candidates.dead[i]) continue;
      const uint32_t t = out.candidates.owned[i].source_table;
      if (t < prev_table) {
        order_ok = false;
        break;
      }
      prev_table = t;
    }
  }
  if (!order_ok && !options_.divide_and_conquer) {
    // Without divide-and-conquer the greedy partition runs over the whole
    // graph on raw vertex ids; its tie-breaks cannot be re-sorted into
    // cold order the way per-component subgraphs can, so a broken id
    // order forces a rebuild to keep the cold-oracle equivalence exact.
    return full_rebuild(std::to_string(delta.unstable_tables) +
                        " coherence verdicts shifted without "
                        "divide-and-conquer");
  }
  if (!order_ok && blocked.blocking.dropped_postings != 0) {
    // Posting-list truncation keeps the lowest candidate ids, so which
    // pairs survive a hot key depends on id order. The base run already
    // truncated, and this family's live ids are no longer in cold order:
    // only a rebuild keeps the cold-oracle equivalence exact.
    return full_rebuild(std::to_string(delta.unstable_tables) +
                        " coherence verdicts shifted with truncated "
                        "posting lists");
  }

  // --- Delta blocking. Appends: only keys the new candidates touch are
  // counted, only (new x all) pairs can emerge — old pairs' counts and
  // old-candidate taint are append-invariant (appended ids sort last, so
  // truncation keeps the identical old-id prefix of every posting list)
  // and merge verbatim. Removals additionally drop every base pair that
  // touches a retired candidate; that filter stays exact as long as the
  // base run never truncated a posting list (dropped_postings == 0 —
  // surviving pairs' key sets are untouched). When the base run DID
  // truncate, deleting ids can pull previously-dropped postings back under
  // the cap and resurrect pairs between old candidates, so blocking re-runs
  // from scratch — but scoring below still reuses every base edge whose
  // pair survived (edge weights depend only on the candidates' contents).
  step.Restart();
  std::vector<CandidateTablePair> delta_pairs;
  if (!have_dead || blocked.blocking.dropped_postings == 0) {
    std::vector<uint8_t> tainted = blocked.blocking.tainted;
    if (!tainted.empty()) tainted.resize(out.candidates.owned.size(), 0);
    DeltaBlockingStats dstats;
    if (first_new_id < out.candidates.owned.size()) {
      delta_pairs = GenerateDeltaCandidatePairs(
          out.candidates.owned, first_new_id, options_.blocking,
          threads_.get(), &tainted, &dstats);
    }
    if (!order_ok && dstats.dropped_postings != 0) {
      // The union posting lists truncated for the first time during this
      // mutation (possibly a pure append — the id-order break can stem
      // from a flip several generations back). Same reasoning as the
      // pre-blocking check: truncation keeps the lowest ids, and the live
      // ids are not in cold order, so only a rebuild preserves exact cold
      // equivalence.
      return full_rebuild(std::to_string(delta.unstable_tables) +
                          " coherence verdicts shifted and the delta "
                          "blocking pass truncated posting lists");
    }
    std::vector<CandidateTablePair> base_kept;
    const std::vector<CandidateTablePair>* base_src = &blocked.pairs;
    if (have_dead) {
      base_kept.reserve(blocked.pairs.size());
      for (const auto& p : blocked.pairs) {
        if (newly_dead[p.a] || newly_dead[p.b]) continue;
        base_kept.push_back(p);
      }
      base_src = &base_kept;
    }
    out.blocked.pairs.reserve(base_src->size() + delta_pairs.size());
    std::merge(base_src->begin(), base_src->end(), delta_pairs.begin(),
               delta_pairs.end(), std::back_inserter(out.blocked.pairs),
               [](const CandidateTablePair& x, const CandidateTablePair& y) {
                 return std::tie(x.a, x.b) < std::tie(y.a, y.b);
               });
    out.blocked.blocking = blocked.blocking;
    out.blocked.blocking.keys += dstats.new_keys;
    out.blocked.blocking.dropped_postings += dstats.dropped_postings;
    size_t num_tainted = 0;
    for (uint8_t t : tainted) num_tainted += t;
    out.blocked.blocking.tainted_candidates = num_tainted;
    out.blocked.blocking.exact_counts =
        out.blocked.blocking.dropped_postings == 0;
    out.blocked.blocking.tainted = std::move(tainted);
  } else {
    BlockingStats bstats;
    std::vector<CandidateTablePair> full_pairs = GenerateCandidatePairs(
        out.candidates.owned, options_.blocking, threads_.get(), &bstats);
    const auto less_ab = [](const CandidateTablePair& x,
                            const CandidateTablePair& y) {
      return std::tie(x.a, x.b) < std::tie(y.a, y.b);
    };
    // Pairs the base run never scored (new candidates' and resurrected
    // old-old pairs) are the only ones that need scoring.
    for (const auto& p : full_pairs) {
      if (!std::binary_search(blocked.pairs.begin(), blocked.pairs.end(), p,
                              less_ab)) {
        delta_pairs.push_back(p);
      }
    }
    out.blocked.pairs = std::move(full_pairs);
    out.blocked.blocking = std::move(bstats);
  }
  out.append.delta_pairs = delta_pairs.size();
  out.blocked.stats = out.candidates.stats;
  FillBlockingStats(out.blocked.blocking, out.blocked.pairs.size(),
                    blocked.stats.blocking_seconds + step.ElapsedSeconds(),
                    &out.blocked.stats);

  // --- Delta scoring through the warm per-worker matchers, then splice:
  // both edge lists are sorted by (u, v) — blocking emits pairs sorted and
  // scoring adds edges in pair order — so the merged list is exactly what
  // one cold scoring pass over the merged pairs would have built. Base
  // edges incident to a retired candidate vanish with it; every other base
  // edge is reused verbatim (weights depend only on the two candidates'
  // contents, which are unchanged).
  step.Restart();
  ScoringStats scoring;
  CompatibilityGraph delta_graph = ScoreThroughSessionMatchers(
      out.candidates.owned, *pool, delta_pairs, &scoring);
  out.append.delta_edges = delta_graph.num_edges();
  CompatibilityGraph merged(out.candidates.owned.size());
  {
    const auto& be = scored.graph.edges();
    const auto& de = delta_graph.edges();
    size_t bi = 0, di = 0;
    while (bi < be.size() || di < de.size()) {
      if (bi < be.size() && have_dead &&
          (newly_dead[be[bi].u] || newly_dead[be[bi].v])) {
        ++bi;
        continue;
      }
      const bool take_base =
          di >= de.size() ||
          (bi < be.size() &&
           std::tie(be[bi].u, be[bi].v) < std::tie(de[di].u, de[di].v));
      const CompatEdge& e = take_base ? be[bi++] : de[di++];
      merged.AddEdge(e.u, e.v, e.w_pos, e.w_neg);
    }
  }
  merged.Finalize();
  out.scored.graph = std::move(merged);
  out.scored.stats = out.blocked.stats;
  out.scored.stats.scoring = scored.stats.scoring;
  out.scored.stats.scoring.Add(scoring);
  out.scored.stats.scoring_seconds =
      scored.stats.scoring_seconds + step.ElapsedSeconds();
  out.scored.stats.graph_edges = out.scored.graph.num_edges();

  // --- Component-restricted partition: a component is re-partitioned only
  // when its induced subgraph could differ from the base run's — it holds
  // a new candidate (delta pairs all touch one on pure appends), a
  // candidate this mutation retired, a base-graph neighbor of a retired
  // candidate (it lost an incident edge), or an endpoint of a delta-scored
  // edge (covers old-old pairs resurfacing out of truncation). Every other
  // component's subgraph — and therefore its greedy partition — is
  // provably identical to the base run's; carry it. (If removal split a
  // base component, every resulting piece contains a former neighbor of a
  // retired vertex, so all pieces are re-partitioned — membership of clean
  // components is exactly their base membership.)
  step.Restart();
  PartitionResult partition;
  std::vector<std::vector<VertexId>> dirty_groups;
  std::vector<uint32_t> comp;
  std::vector<char> comp_dirty;
  size_t num_components = 0;
  const std::vector<uint8_t>& dead_bitmap = out.candidates.dead;
  const auto vertex_dead = [&](VertexId v) {
    return v < dead_bitmap.size() && dead_bitmap[v] != 0;
  };
  if (options_.divide_and_conquer) {
    comp = ConnectedComponentsBfs(out.scored.graph,
                                  options_.partitioner.theta_edge);
    auto groups = GroupByComponent(comp);
    num_components = groups.size();
    std::vector<uint8_t> dirty_vertex(out.scored.graph.num_vertices(), 0);
    for (size_t v = first_new_id; v < dirty_vertex.size(); ++v) {
      dirty_vertex[v] = 1;
    }
    if (have_dead) {
      for (size_t v = 0; v < newly_dead.size(); ++v) {
        if (newly_dead[v]) dirty_vertex[v] = 1;
      }
      for (const auto& e : scored.graph.edges()) {
        if (newly_dead[e.u] || newly_dead[e.v]) {
          dirty_vertex[e.u] = 1;
          dirty_vertex[e.v] = 1;
        }
      }
      for (const auto& e : delta_graph.edges()) {
        dirty_vertex[e.u] = 1;
        dirty_vertex[e.v] = 1;
      }
    }
    comp_dirty.assign(groups.size(), 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      for (VertexId v : groups[g]) {
        if (dirty_vertex[v]) {
          comp_dirty[g] = 1;
          break;
        }
      }
    }

    partition.partition_of.assign(out.scored.graph.num_vertices(), 0);
    // Clean components: carry the base partitioning, renumbered densely.
    uint32_t next_pid = 0;
    {
      std::unordered_map<uint32_t, uint32_t> remap;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (comp_dirty[g]) continue;
        for (VertexId v : groups[g]) {
          const uint32_t base_pid = partitions.partition.partition_of[v];
          auto [it, inserted] = remap.emplace(base_pid, next_pid);
          if (inserted) ++next_pid;
          partition.partition_of[v] = it->second;
        }
      }
    }

    std::vector<uint32_t> local_of(out.scored.graph.num_vertices(), 0);
    std::vector<size_t> dirty_idx;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (!comp_dirty[g]) continue;
      dirty_idx.push_back(g);
      // The greedy partitioner tie-breaks on vertex ids, so hand each
      // dirty component its members in the relative order a cold run's
      // dense ids would impose: by source table, then by id (within one
      // table, id order is extraction order for base candidates and
      // re-extractions alike). For append/removal-only families this is a
      // no-op — live ids are already table-ordered — but it makes the
      // local subgraph bit-identical to the cold run's even when a
      // flipped table's re-extraction sits at tail ids, and it feeds
      // conflict resolution its members in cold order too.
      std::sort(groups[g].begin(), groups[g].end(),
                [&](VertexId x, VertexId y) {
                  return std::tie(out.candidates.owned[x].source_table, x) <
                         std::tie(out.candidates.owned[y].source_table, y);
                });
      for (uint32_t i = 0; i < groups[g].size(); ++i) {
        local_of[groups[g][i]] = i;
      }
    }
    std::atomic<uint32_t> next_partition{next_pid};
    std::mutex mu;
    auto run_dirty = [&](size_t k) {
      const auto& members = groups[dirty_idx[k]];
      if (members.size() == 1) {
        partition.partition_of[members[0]] = next_partition.fetch_add(1);
        // Retired candidates are isolated singleton components: they keep
        // a partition slot (vertex ids stay stable) but resolve nothing.
        if (vertex_dead(members[0])) return;
        std::lock_guard<std::mutex> lock(mu);
        dirty_groups.push_back({members[0]});
        return;
      }
      PartitionResult local = PartitionComponentSubgraph(
          out.scored.graph, comp, local_of, members, options_.partitioner);
      const uint32_t base = next_partition.fetch_add(
          static_cast<uint32_t>(local.num_partitions));
      std::vector<std::vector<VertexId>> local_groups(local.num_partitions);
      for (uint32_t i = 0; i < members.size(); ++i) {
        partition.partition_of[members[i]] = base + local.partition_of[i];
        local_groups[local.partition_of[i]].push_back(members[i]);
      }
      std::lock_guard<std::mutex> lock(mu);
      // merges_performed covers only re-partitioned components: the base
      // artifact stores a whole-run total that cannot be decomposed per
      // clean component, so this informational counter intentionally
      // reports the append's own work, not the cold-equivalent total.
      partition.merges_performed += local.merges_performed;
      for (auto& gvec : local_groups) dirty_groups.push_back(std::move(gvec));
    };
    threads_->ParallelFor(dirty_idx.size(), run_dirty);
    partition.num_partitions = next_partition.load();
    out.append.dirty_components = dirty_idx.size();
    out.append.clean_components = num_components - dirty_idx.size();
  } else {
    // Without divide-and-conquer the greedy runs globally; no component
    // boundary protects any prior partition, so everything is re-run.
    partition = GreedyPartition(out.scored.graph, options_.partitioner);
    dirty_groups = partition.Groups();
    if (total_dead > 0) {
      std::erase_if(dirty_groups, [&](const std::vector<VertexId>& g) {
        return g.size() == 1 && vertex_dead(g[0]);
      });
    }
    out.append.dirty_components = dirty_groups.size();
  }
  out.partitions.partition = std::move(partition);
  out.partitions.stats = out.scored.stats;
  if (options_.divide_and_conquer) {
    // Retired candidates sit in singleton components holding a reserved
    // partition slot each; the reported counts cover live structure only,
    // matching what a cold rebuild over the surviving tables sees.
    out.partitions.stats.components = num_components - total_dead;
  }
  out.partitions.stats.partition_seconds =
      partitions.stats.partition_seconds + step.ElapsedSeconds();
  out.partitions.stats.partitions =
      out.partitions.partition.num_partitions - total_dead;

  // --- Resolve only the dirty groups; mappings of clean components carry
  // over verbatim (their partitions, members, and conflict sets are
  // untouched, and the curation filter is per-mapping).
  step.Restart();
  const ConflictResolutionOptions conflict = EffectiveConflict();
  std::vector<SynthesizedMapping> resolved = ResolveGroups(
      out.candidates.owned, dirty_groups, options_, conflict, threads_.get());
  std::vector<SynthesizedMapping> merged_mappings = FilterByPopularity(
      std::move(resolved), options_.min_domains, options_.min_pairs);
  size_t carried = 0;
  if (options_.divide_and_conquer) {
    for (const auto& m : result.mappings) {
      if (m.member_tables.empty()) continue;
      if (!comp_dirty[comp[m.member_tables[0]]]) {
        merged_mappings.push_back(m);
        ++carried;
      }
    }
  }
  std::sort(merged_mappings.begin(), merged_mappings.end(),
            PopularityGreater);
  out.append.carried_mappings = carried;
  out.result.mappings = std::move(merged_mappings);
  out.result.stats = out.partitions.stats;
  out.result.stats.resolve_seconds =
      result.stats.resolve_seconds + step.ElapsedSeconds();
  out.result.stats.mappings = out.result.mappings.size();
  out.result.stats.total_seconds =
      out.result.stats.index_seconds + out.result.stats.extract_seconds +
      out.result.stats.blocking_seconds + out.result.stats.scoring_seconds +
      out.result.stats.partition_seconds + out.result.stats.resolve_seconds;

  restamp(candidates.generation + 1);
  out.append.append_seconds = append_timer.ElapsedSeconds();
  MS_LOG(Info) << "append: +" << out.append.appended_tables << "/-"
               << out.append.removed_tables << " tables, +"
               << out.append.new_candidates << "/-"
               << out.append.removed_candidates << " candidates, "
               << out.append.delta_pairs << " delta pairs, "
               << out.append.margin_skips << " margin skips / "
               << out.append.margin_rechecks << " rechecks, "
               << out.append.dirty_components << "/" << num_components
               << " dirty components, " << out.append.carried_mappings
               << " mappings carried";
  return out;
}

Result<AppendedArtifacts> SynthesisSession::AppendCorpus(
    TableCorpus* corpus, const TableCorpus& delta,
    const CandidateSet& candidates, const BlockedPairs& blocked,
    const ScoredGraph& scored, const Partitions& partitions,
    const SynthesisResult& result) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  if (corpus == nullptr) {
    return Status::InvalidArgument("AppendCorpus: corpus is null");
  }
  // Validate BEFORE mutating: merging the delta and then failing a lineage
  // check would leave the corpus permanently grown past the artifacts, a
  // stuck state every retry would re-reject.
  MS_RETURN_IF_ERROR(
      ValidateAppendFamily(candidates, blocked, scored, partitions, result));
  if (corpus->size() != candidates.source_tables) {
    return Status::InvalidArgument(
        "AppendCorpus: the corpus already has " +
        std::to_string(corpus->size()) + " tables but the artifacts cover " +
        std::to_string(candidates.source_tables) +
        " — pass the un-grown corpus and let AppendCorpus merge the delta");
  }
  Result<size_t> first_new = corpus->AppendFrom(delta);
  if (!first_new.ok()) return first_new.status();
  return AppendTables(*corpus, first_new.value(), candidates, blocked,
                      scored, partitions, result);
}

namespace {

/// Shared removal-id validation for RemoveTables/ReplaceTables: sorts
/// `removed` in place, rejects duplicates and out-of-range ids with
/// InvalidArgument BEFORE any corpus mutation, then drops no-op entries
/// (tables already tombstoned, or degenerate zero-column tables — their
/// removal cannot change any artifact).
Status PrepareRemovalIds(const char* stage, const TableCorpus& corpus,
                         std::vector<uint32_t>* removed) {
  std::sort(removed->begin(), removed->end());
  for (size_t i = 0; i < removed->size(); ++i) {
    if ((*removed)[i] >= corpus.size()) {
      return Status::InvalidArgument(
          std::string(stage) + ": table id " +
          std::to_string((*removed)[i]) + " is out of range (corpus has " +
          std::to_string(corpus.size()) + " tables)");
    }
    if (i > 0 && (*removed)[i] == (*removed)[i - 1]) {
      return Status::InvalidArgument(
          std::string(stage) + ": duplicate table id " +
          std::to_string((*removed)[i]) + " in the removal set");
    }
  }
  std::erase_if(*removed, [&](uint32_t id) {
    return corpus.table(id).num_columns() == 0;
  });
  return Status::OK();
}

/// Captures the removal footprint (distinct cell values + column count)
/// and tombstones each table, returning the moved-out columns so a failed
/// mutation can restore them.
struct RemovalCapture {
  std::vector<ValueId> values;
  size_t columns = 0;
  std::vector<std::pair<uint32_t, std::vector<Column>>> saved;
};

RemovalCapture TombstoneAll(TableCorpus* corpus,
                            const std::vector<uint32_t>& removed) {
  RemovalCapture cap;
  cap.saved.reserve(removed.size());
  for (uint32_t id : removed) {
    const Table& t = corpus->table(id);
    cap.columns += t.num_columns();
    for (const Column& c : t.columns) {
      cap.values.insert(cap.values.end(), c.cells.begin(), c.cells.end());
    }
    cap.saved.emplace_back(id, corpus->Tombstone(id));
  }
  std::sort(cap.values.begin(), cap.values.end());
  cap.values.erase(std::unique(cap.values.begin(), cap.values.end()),
                   cap.values.end());
  return cap;
}

void RestoreAll(TableCorpus* corpus, RemovalCapture* cap) {
  for (auto& [id, cols] : cap->saved) {
    corpus->RestoreColumns(id, std::move(cols));
  }
}

}  // namespace

Result<AppendedArtifacts> SynthesisSession::RemoveTables(
    TableCorpus* corpus, std::vector<uint32_t> removed,
    const CandidateSet& candidates, const BlockedPairs& blocked,
    const ScoredGraph& scored, const Partitions& partitions,
    const SynthesisResult& result) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  if (corpus == nullptr) {
    return Status::InvalidArgument("RemoveTables: corpus is null");
  }
  // Validate BEFORE mutating — same discipline as AppendCorpus.
  MS_RETURN_IF_ERROR(
      ValidateAppendFamily(candidates, blocked, scored, partitions, result));
  if (corpus->size() != candidates.source_tables) {
    return Status::InvalidArgument(
        "RemoveTables: the corpus has " + std::to_string(corpus->size()) +
        " tables but the artifacts cover " +
        std::to_string(candidates.source_tables) +
        " — removals operate on the exact synthesized corpus");
  }
  MS_RETURN_IF_ERROR(PrepareRemovalIds("RemoveTables", *corpus, &removed));
  RemovalCapture cap = TombstoneAll(corpus, removed);
  Result<AppendedArtifacts> out = ApplyCorpusDeltaLocked(
      *corpus, corpus->size(), std::move(removed), std::move(cap.values),
      cap.columns, candidates, blocked, scored, partitions, result);
  if (!out.ok()) {
    RestoreAll(corpus, &cap);
    return out.status();
  }
  ++session_stats_.remove_runs;
  return out;
}

Result<AppendedArtifacts> SynthesisSession::ReplaceTables(
    TableCorpus* corpus, std::vector<uint32_t> removed,
    const TableCorpus& delta, const CandidateSet& candidates,
    const BlockedPairs& blocked, const ScoredGraph& scored,
    const Partitions& partitions, const SynthesisResult& result) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  if (corpus == nullptr) {
    return Status::InvalidArgument("ReplaceTables: corpus is null");
  }
  MS_RETURN_IF_ERROR(
      ValidateAppendFamily(candidates, blocked, scored, partitions, result));
  if (corpus->size() != candidates.source_tables) {
    return Status::InvalidArgument(
        "ReplaceTables: the corpus has " + std::to_string(corpus->size()) +
        " tables but the artifacts cover " +
        std::to_string(candidates.source_tables) +
        " — replacements operate on the exact synthesized corpus");
  }
  MS_RETURN_IF_ERROR(PrepareRemovalIds("ReplaceTables", *corpus, &removed));
  // One atomic remove + append: tombstone, merge the delta at the tail,
  // reconcile in a single maintenance pass. A failure at any point rolls
  // the corpus back — tables, columns, and pool tail.
  const size_t prev_pool_size = corpus->pool().size();
  RemovalCapture cap = TombstoneAll(corpus, removed);
  Result<size_t> first_new = corpus->AppendFrom(delta);
  if (!first_new.ok()) {
    RestoreAll(corpus, &cap);
    return first_new.status();
  }
  Result<AppendedArtifacts> out = ApplyCorpusDeltaLocked(
      *corpus, first_new.value(), std::move(removed), std::move(cap.values),
      cap.columns, candidates, blocked, scored, partitions, result);
  if (!out.ok()) {
    corpus->Truncate(first_new.value());
    corpus->pool().TruncateTo(prev_pool_size);
    RestoreAll(corpus, &cap);
    return out.status();
  }
  ++session_stats_.replace_runs;
  return out;
}

// --------------------------------------------------------------- persistence

Status SynthesisSession::SaveSnapshot(const std::string& path,
                                      const CandidateSet& candidates,
                                      const BlockedPairs* blocked,
                                      const ScoredGraph* scored,
                                      const SynthesisResult* result) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(CheckSameSession("SaveSnapshot", candidates.session));
  if (blocked != nullptr) {
    MS_RETURN_IF_ERROR(CheckLineage("SaveSnapshot", blocked->session,
                                    blocked->candidates_id,
                                    candidates.artifact_id));
  }
  if (scored != nullptr) {
    MS_RETURN_IF_ERROR(CheckLineage("SaveSnapshot", scored->session,
                                    scored->candidates_id,
                                    candidates.artifact_id));
  }
  static obs::Histogram* const save_us =
      obs::MetricsRegistry::Global().GetHistogram("ms_persist_save_us");
  obs::TraceSpan span("persist.save_snapshot", save_us);
  MS_RETURN_IF_ERROR(persist::SaveSessionSnapshot(
      path, OptionsFingerprint(options_), candidates, blocked, scored,
      result, env_));
  ++session_stats_.snapshot_saves;
  return Status::OK();
}

Result<SessionSnapshot> SynthesisSession::RestoreSnapshot(
    const std::string& path) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  MS_RETURN_IF_ERROR(ReadyToRun());
  static obs::Histogram* const restore_us =
      obs::MetricsRegistry::Global().GetHistogram("ms_persist_restore_us");
  obs::TraceSpan span("persist.restore_snapshot", restore_us);
  Result<SessionSnapshot> loaded =
      persist::LoadSessionSnapshot(path, OptionsFingerprint(options_), env_);
  if (!loaded.ok()) return loaded.status();
  SessionSnapshot snap = std::move(loaded).value();

  // Stamp the artifacts as this session's. Saved lineage ids are kept
  // verbatim (they round-trip) unless they would collide with ids this
  // session already issued — then the whole restored family is rebased by a
  // constant offset, preserving every internal candidates/graph link.
  uint64_t min_id = snap.candidates->artifact_id;
  uint64_t max_id = snap.candidates->artifact_id;
  auto track = [&](uint64_t id) {
    min_id = std::min(min_id, id);
    max_id = std::max(max_id, id);
  };
  if (snap.blocked) track(snap.blocked->artifact_id);
  if (snap.scored) track(snap.scored->artifact_id);
  const uint64_t shift = min_id < next_artifact_id_
                             ? next_artifact_id_ - min_id
                             : 0;
  snap.candidates->session = this;
  snap.candidates->artifact_id += shift;
  if (snap.blocked) {
    snap.blocked->session = this;
    snap.blocked->artifact_id += shift;
    snap.blocked->candidates_id += shift;
  }
  if (snap.scored) {
    snap.scored->session = this;
    snap.scored->artifact_id += shift;
    snap.scored->candidates_id += shift;
  }
  next_artifact_id_ = std::max(next_artifact_id_, max_id + shift + 1);
  ++session_stats_.snapshot_restores;
  return snap;
}

// ---------------------------------------------------------------- composites

Result<SynthesisResult> SynthesisSession::Run(const TableCorpus& corpus) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  obs::TraceSpan span("synth.run");
  Timer total;
  Result<CandidateSet> cands = ExtractCandidates(corpus);
  if (!cands.ok()) return cands.status();
  Result<SynthesisResult> r = FinishFromCandidates(cands.value());
  if (!r.ok()) return r.status();
  SynthesisResult out = std::move(r).value();
  out.stats.total_seconds = total.ElapsedSeconds();
  return out;
}

Result<SynthesisResult> SynthesisSession::RunOnCandidates(
    const std::vector<BinaryTable>& candidates, const StringPool& pool) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  Timer total;
  Result<CandidateSet> cands = AdoptCandidates(candidates, pool);
  if (!cands.ok()) return cands.status();
  Result<SynthesisResult> r = FinishFromCandidates(cands.value());
  if (!r.ok()) return r.status();
  SynthesisResult out = std::move(r).value();
  out.stats.total_seconds = total.ElapsedSeconds();
  return out;
}

Result<SynthesisResult> SynthesisSession::RunOnCorpusFile(
    const std::string& path, TableCorpus* corpus) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  if (corpus == nullptr) {
    return Status::InvalidArgument(
        "RunOnCorpusFile: corpus out-parameter is null (the caller owns the "
        "corpus because mappings reference its string pool)");
  }
  MS_RETURN_IF_ERROR(ReadyToRun());
  MS_RETURN_IF_ERROR(LoadCorpus(path, corpus));
  return Run(*corpus);
}

Result<SynthesisResult> SynthesisSession::FinishFromCandidates(
    const CandidateSet& candidates) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  Result<BlockedPairs> blocked = BlockPairs(candidates);
  if (!blocked.ok()) return blocked.status();
  return FinishFromBlocked(candidates, blocked.value());
}

Result<SynthesisResult> SynthesisSession::FinishFromBlocked(
    const CandidateSet& candidates, const BlockedPairs& blocked) {
  const std::lock_guard<std::recursive_mutex> lock(run_mu_);
  Result<ScoredGraph> graph = ScorePairs(candidates, blocked);
  if (!graph.ok()) return graph.status();
  Result<Partitions> parts = Partition(graph.value());
  if (!parts.ok()) return parts.status();
  return Resolve(candidates, graph.value(), parts.value());
}

}  // namespace ms
