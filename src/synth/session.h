// Staged synthesis session: the production entry point to the paper's
// pipeline (Figure 1), redesigned around explicit, individually-runnable
// stages with materialized artifacts:
//
//   ExtractCandidates() -> CandidateSet
//   BlockPairs()        -> BlockedPairs
//   ScorePairs()        -> ScoredGraph
//   Partition()         -> Partitions
//   Resolve()           -> SynthesisResult
//
// Each stage takes the previous stage's artifact, so callers that
// re-synthesize with tweaked thresholds only re-run the stages downstream
// of the change: new CompatibilityOptions re-score the *same* BlockedPairs
// verbatim; new PartitionerOptions re-partition the same ScoredGraph. The
// session owns the warm state worth keeping across runs — the ThreadPool,
// per-worker BatchApproxMatcher caches (pattern bitmasks survive re-scoring
// runs), and an immutable SynonymSnapshot refreshed only when the
// dictionary actually changed.
//
// All fallible entry points return Status / Result<T> (common/status.h):
// malformed options are rejected with InvalidArgument by
// SynthesisOptions::Validate() instead of silently misbehaving, artifacts
// fed to the wrong stage or the wrong session fail with FailedPrecondition
// instead of undefined behavior, and corpus-loading failures propagate.
//
// The legacy SynthesisPipeline (synth/pipeline.h) is a thin wrapper over a
// session; staged and monolithic runs produce byte-identical mappings.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "extract/candidate_extraction.h"
#include "graph/weighted_graph.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "synth/conflict_resolution.h"
#include "synth/mapping.h"
#include "synth/partitioner.h"
#include "table/corpus.h"

namespace ms {

struct SynthesisOptions {
  ExtractionOptions extraction;
  BlockingOptions blocking;
  CompatibilityOptions compat;
  PartitionerOptions partitioner;
  ConflictResolutionOptions conflict;

  /// Run Algorithm 4 after partitioning (Section 5.6 ablates this).
  bool resolve_conflicts = true;
  /// Use majority voting instead of Algorithm 4 (Section 5.6 comparison).
  bool use_majority_voting = false;
  /// Split the graph into positively-connected components first and
  /// partition each independently (Appendix F). Off = one global run.
  bool divide_and_conquer = true;

  /// Curation filter (Section 4.3: the paper keeps mappings from >= 8
  /// independent domains; defaults here suit laptop-scale corpora).
  size_t min_domains = 2;
  size_t min_pairs = 4;

  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;

  /// Per-worker cap on the session matchers' value caches (0 = unbounded).
  /// Long-lived sessions re-score many corpora; the cap bounds mask-table
  /// memory at a whole-cache flush per overflow (cache contents never
  /// affect results).
  size_t matcher_cache_cap = 1 << 20;

  /// Rejects configurations that would silently misbehave — min_pairs == 0,
  /// thresholds outside their domain, num_threads overflow — with
  /// InvalidArgument, composing every sub-option's Validate().
  Status Validate() const;
};

/// Wall-clock and cardinality accounting for each pipeline step; feeds the
/// runtime/scalability figures. Stage artifacts carry the cumulative stats
/// of their ancestry, so a staged run reports exactly what a monolithic one
/// does.
struct PipelineStats {
  double index_seconds = 0.0;
  double extract_seconds = 0.0;
  double blocking_seconds = 0.0;
  double scoring_seconds = 0.0;
  double partition_seconds = 0.0;
  double resolve_seconds = 0.0;
  double total_seconds = 0.0;

  /// Blocking-internal phase breakdown (sums to ~blocking_seconds); makes
  /// the sharded-blocking speedup observable per phase.
  double blocking_map_shuffle_seconds = 0.0;  ///< map + hash partition
  double blocking_count_seconds = 0.0;        ///< sort-group + shard counting
  double blocking_reduce_seconds = 0.0;       ///< shard merge + threshold

  /// Scoring-stage breakdown: bit-parallel kernel mix (Myers64 vs blocked
  /// vs scalar fallback), pattern-mask cache effectiveness, and how many
  /// pair merges / conflict scans the blocking-count reuse eliminated.
  ScoringStats scoring;

  size_t candidates = 0;
  size_t candidate_pairs = 0;  ///< pairs surviving blocking
  size_t blocking_keys = 0;    ///< distinct blocking keys
  /// Postings dropped by BlockingOptions::max_posting truncation; non-zero
  /// means high-id candidates silently lost potential pairs.
  size_t blocking_dropped_postings = 0;
  /// Candidates touched by truncation (only their pairs lose count reuse).
  size_t blocking_tainted_candidates = 0;
  size_t graph_edges = 0;      ///< pairs with non-zero w+ or w-
  size_t components = 0;
  size_t partitions = 0;
  size_t mappings = 0;         ///< after curation filter
  ExtractionStats extraction;  ///< includes normalize-cache hit/miss counts
};

struct SynthesisResult {
  std::vector<SynthesizedMapping> mappings;
  PipelineStats stats;
};

/// Stage 1 artifact: extracted (or adopted) candidate binary tables plus
/// the pool their ValueIds resolve against. The pool and any borrowed
/// candidate vector must outlive the artifact.
struct CandidateSet {
  const std::vector<BinaryTable>& tables() const {
    return borrowed ? *borrowed : owned;
  }
  const StringPool* pool = nullptr;
  PipelineStats stats;  ///< cumulative: index + extraction

  std::vector<BinaryTable> owned;              ///< ExtractCandidates fills
  const std::vector<BinaryTable>* borrowed = nullptr;  ///< AdoptCandidates

  uint64_t artifact_id = 0;   ///< session-unique; stages verify lineage
  const void* session = nullptr;

  /// Append generation: 0 for a cold extraction, +1 per AppendTables merge.
  /// Persists through snapshots, so lineage records how a restored artifact
  /// family was grown.
  uint32_t generation = 0;
  /// Number of corpus tables this candidate set was extracted from; the
  /// required `first_new_table` of the next append.
  uint64_t source_tables = 0;
  /// Per-table kept-column signatures from extraction (see
  /// ExtractionResult); empty for adopted candidate sets, which therefore
  /// cannot be appended to. Incremental mutations re-check these under the
  /// mutated corpus index — coherence is corpus-global — re-extracting
  /// just the tables whose verdict flipped.
  std::vector<uint32_t> kept_offsets;
  std::vector<uint32_t> kept_columns;
  /// Margin cache mirroring ExtractionResult::margins: one profile per
  /// column of each width-passed source table, CSR over table index. Lets
  /// the next mutation skip coherence re-checks whose verdict provably
  /// cannot flip. Empty when the filter is disabled or the set was adopted
  /// or restored from a pre-v3 snapshot.
  std::vector<uint32_t> margin_offsets;
  std::vector<CoherenceProfile> margins;
  /// Corpus table ids tombstoned by RemoveTables/ReplaceTables, sorted.
  /// Tombstoned tables keep their corpus slots (ids stay stable); their
  /// candidates are marked dead below.
  std::vector<uint32_t> tombstoned_tables;
  /// Per-candidate tombstone bitmap; empty means all live. Dead candidates
  /// keep their ids (graph-vertex stability) but their pair contents are
  /// cleared, so every downstream stage sees them as empty vertices with
  /// no pairs, no blocking keys, and no edges — exactly the footprint of a
  /// candidate that was never extracted.
  std::vector<uint8_t> dead;

  bool is_dead(BinaryTableId id) const {
    return id < dead.size() && dead[id] != 0;
  }
  size_t num_dead() const {
    size_t n = 0;
    for (uint8_t d : dead) n += d;
    return n;
  }
  size_t num_live() const { return tables().size() - num_dead(); }
};

/// Stage 2 artifact: the candidate pairs that survived blocking, with
/// per-pair count-exactness for the scoring fast path.
struct BlockedPairs {
  std::vector<CandidateTablePair> pairs;
  BlockingStats blocking;
  PipelineStats stats;  ///< cumulative through blocking

  uint64_t artifact_id = 0;
  uint64_t candidates_id = 0;  ///< the CandidateSet this was blocked from
  const void* session = nullptr;
};

/// Stage 3 artifact: the exact w+/w- compatibility graph.
struct ScoredGraph {
  CompatibilityGraph graph;
  PipelineStats stats;  ///< cumulative through scoring

  uint64_t artifact_id = 0;
  uint64_t candidates_id = 0;
  const void* session = nullptr;
};

/// Stage 4 artifact: the greedy partitioning (Algorithm 3).
struct Partitions {
  PartitionResult partition;
  PipelineStats stats;  ///< cumulative through partitioning

  uint64_t artifact_id = 0;
  uint64_t candidates_id = 0;
  uint64_t graph_id = 0;  ///< the ScoredGraph this was partitioned from
  const void* session = nullptr;
};

/// What one incremental mutation (AppendTables / RemoveTables /
/// ReplaceTables) did, for observability and tests. The contract is
/// equivalence with a cold rebuild over the mutated corpus — byte-level
/// when no coherence verdict flips, mapping-level (same mappings, stable
/// candidate ids, dead slots ignored) otherwise; these counters expose how
/// much work the delta restriction actually saved.
struct AppendStats {
  size_t appended_tables = 0;
  size_t removed_tables = 0;
  size_t new_candidates = 0;
  /// Candidates tombstoned by this mutation (removed tables' plus flipped
  /// tables' superseded extractions).
  size_t removed_candidates = 0;
  /// Blocked pairs created by the append (every one touches a new
  /// candidate); the only pairs that were scored.
  size_t delta_pairs = 0;
  /// Graph edges spliced in from the delta pairs.
  size_t delta_edges = 0;
  /// Positive components containing at least one new candidate — the only
  /// ones re-partitioned and re-resolved (divide-and-conquer mode).
  size_t dirty_components = 0;
  size_t clean_components = 0;
  /// Mappings carried over verbatim from the previous result (their
  /// components have no new candidate and no delta edge, so their greedy
  /// partition and conflict resolution are provably unchanged).
  size_t carried_mappings = 0;
  /// False iff some pre-existing table's coherence verdict flipped under
  /// the mutated corpus statistics.
  bool extraction_stable = false;
  /// How many old tables flipped (0 when extraction_stable). Flipped
  /// tables are re-extracted in place (their old candidates tombstoned,
  /// fresh ones appended); only a majority flip degrades to a full
  /// rebuild. Thresholds sitting on a score's decision boundary drive
  /// this up.
  size_t unstable_tables = 0;
  /// Margin-cache effectiveness for this mutation: coherence verdicts
  /// settled by the cached monotonicity bound vs exact re-checks paid.
  size_t margin_skips = 0;
  size_t margin_rechecks = 0;
  /// True when instability spanned most of the corpus and an internal cold
  /// re-run was cheaper than partial re-extraction (results are still
  /// exact; ids re-densify and tombstones compact away).
  bool full_rebuild = false;
  double append_seconds = 0.0;
};

/// The merged artifact family one AppendTables call produces: a complete,
/// self-consistent replacement for the inputs, byte-equivalent to running
/// the full chain cold over the grown corpus.
struct AppendedArtifacts {
  CandidateSet candidates;
  BlockedPairs blocked;
  ScoredGraph scored;
  Partitions partitions;
  SynthesisResult result;
  AppendStats append;
};

/// Stable 64-bit fingerprint of every option that affects artifact
/// *contents* (extraction, blocking, scoring, partitioning, conflict and
/// curation knobs, plus the synonym dictionary version when one is wired
/// in). Pure-speed knobs — num_threads, matcher_cache_cap, the bit-parallel
/// gate, blocking-count reuse — are excluded: results are identical across
/// them by construction, so a snapshot saved under one machine's tuning
/// restores under another's. Snapshots embed this fingerprint and
/// RestoreSnapshot refuses (FailedPrecondition) when it does not match the
/// restoring session's options.
uint64_t OptionsFingerprint(const SynthesisOptions& options);

/// A process-restart image restored from a snapshot file: the stage
/// artifacts (and, when saved, the final result) of a previous session,
/// rebuilt without re-running extraction, blocking, or scoring. The pool is
/// zero-copy — its strings are string_views into the mmap'd snapshot, which
/// the pool itself keeps alive (StringPool::RetainBacking) — so the
/// snapshot holder can hand `pool` to long-lived consumers (MappingStore)
/// and drop the rest. Artifacts reference `pool` and must not outlive it.
struct SessionSnapshot {
  std::shared_ptr<StringPool> pool;
  std::unique_ptr<CandidateSet> candidates;
  std::unique_ptr<BlockedPairs> blocked;  ///< null when not saved
  std::unique_ptr<ScoredGraph> scored;    ///< null when not saved
  bool has_result = false;
  SynthesisResult result;
};

/// Builds the full compatibility graph for a candidate set: blocking, then
/// exact w+/w- scoring of every surviving pair (parallel). Exposed so the
/// SchemaCC / Correlation baselines run on the identical graph; the session
/// stages decompose the same computation.
CompatibilityGraph BuildCompatibilityGraph(
    const std::vector<BinaryTable>& candidates, const StringPool& pool,
    const BlockingOptions& blocking, const CompatibilityOptions& compat,
    ThreadPool* pool_threads = nullptr, PipelineStats* stats = nullptr);

class SynthesisSession {
 public:
  /// Validates `options` into status(); every stage refuses to run while
  /// status() is not OK, so a misconfigured session fails loudly instead
  /// of synthesizing garbage.
  explicit SynthesisSession(SynthesisOptions options = {});
  ~SynthesisSession();

  SynthesisSession(const SynthesisSession&) = delete;
  SynthesisSession& operator=(const SynthesisSession&) = delete;

  /// Construction-time (or last UpdateOptions) validation verdict.
  Status status() const { return init_status_; }

  /// Validates and swaps in a new configuration. Warm state survives where
  /// validity allows (matcher caches keep their masks unless
  /// edit.fractional changed; the thread pool is rebuilt only when
  /// num_threads changed). Existing artifacts stay usable — feed them to
  /// the stages downstream of what the new options changed.
  Status UpdateOptions(SynthesisOptions options);

  const SynthesisOptions& options() const { return options_; }
  ThreadPool* threads() { return threads_.get(); }

  /// The IO environment Save/RestoreSnapshot route through. Defaults to
  /// Env::Default() (real syscalls); tests install a FaultInjectionEnv to
  /// exercise the failure paths deterministically. Not part of the options
  /// fingerprint — the env changes how bytes reach disk, never the bytes.
  void set_env(Env* env) { env_ = env != nullptr ? env : Env::Default(); }
  Env* env() const { return env_; }

  /// Stage 1: inverted-index build + candidate extraction (Algorithm 1).
  /// The corpus (and its pool) must outlive the returned artifact.
  Result<CandidateSet> ExtractCandidates(const TableCorpus& corpus);

  /// Stage 1 alternative: adopt pre-extracted candidates (ids must be dense
  /// 0..n-1). Borrows `candidates`; both it and `pool` must outlive the
  /// artifact.
  Result<CandidateSet> AdoptCandidates(
      const std::vector<BinaryTable>& candidates, const StringPool& pool);

  /// Stage 2: inverted-index blocking (Section 4.1 "Efficiency").
  Result<BlockedPairs> BlockPairs(const CandidateSet& candidates);

  /// Stage 3: exact w+/w- scoring of every blocked pair through the
  /// session's warm per-worker matchers. Re-running after a
  /// CompatibilityOptions change reuses the BlockedPairs verbatim and every
  /// still-valid cached pattern mask.
  Result<ScoredGraph> ScorePairs(const CandidateSet& candidates,
                                 const BlockedPairs& blocked);

  /// Stage 4: greedy partitioning (Algorithm 3), divide-and-conquer per
  /// positive component when options().divide_and_conquer.
  Result<Partitions> Partition(const ScoredGraph& graph);

  /// Stage 5: conflict resolution (Algorithm 4) + mapping assembly +
  /// curation filter. `graph` is only consulted for stats lineage.
  Result<SynthesisResult> Resolve(const CandidateSet& candidates,
                                  const ScoredGraph& graph,
                                  const Partitions& partitions);

  // ------------------------------------------------------------ composites

  /// Full chain from a raw corpus (what SynthesisPipeline::Run wraps).
  Result<SynthesisResult> Run(const TableCorpus& corpus);

  /// Full chain from pre-extracted candidates.
  Result<SynthesisResult> RunOnCandidates(
      const std::vector<BinaryTable>& candidates, const StringPool& pool);

  /// Loads a TSV corpus into `*corpus` (caller-owned: mappings reference
  /// its pool) and runs the full chain. IO and parse failures propagate —
  /// previously a corrupt dump synthesized zero mappings indistinguishably
  /// from an empty corpus.
  Result<SynthesisResult> RunOnCorpusFile(const std::string& path,
                                          TableCorpus* corpus);

  /// Blocking onward from an existing candidate artifact (warm re-run after
  /// extraction-irrelevant option changes).
  Result<SynthesisResult> FinishFromCandidates(const CandidateSet& candidates);

  /// Scoring onward from existing artifacts: the warm re-score path.
  Result<SynthesisResult> FinishFromBlocked(const CandidateSet& candidates,
                                            const BlockedPairs& blocked);

  // ------------------------------------------------------- incremental growth

  /// Incremental corpus growth: `corpus` is the *grown* corpus — the same
  /// tables the input artifacts were synthesized from at indices
  /// [0, first_new_table) plus the appended tables after them — and the
  /// returned artifact family is byte-equivalent to a cold full run over
  /// it, at delta cost:
  ///   - the inverted index is rebuilt and every old table's kept-column
  ///     signature re-checked (coherence is corpus-global; this is the
  ///     exactness tax), but extraction's normalize + FD work runs only
  ///     over the appended tables;
  ///   - blocking counts only keys the new candidates touch and emits only
  ///     (new x all) pairs — old-pair counts and taint provably cannot
  ///     change under appends;
  ///   - only the delta pairs are scored (through the warm per-worker
  ///     matchers) and spliced into the existing graph;
  ///   - only components containing a new candidate are re-partitioned and
  ///     re-resolved; untouched components' mappings carry over verbatim
  ///     (divide-and-conquer mode).
  /// If a coherence verdict flipped, falls back to a full internal re-run
  /// (AppendStats::full_rebuild) — exactness is never traded for speed.
  ///
  /// `first_new_table` must equal candidates.source_tables. All artifacts
  /// must share lineage. `candidates` must carry extraction signatures
  /// (adopted candidate sets fail with FailedPrecondition). The corpus pool
  /// may be a different object than the artifacts' pool (the
  /// restore-then-append path) as long as it is id-compatible — verified.
  Result<AppendedArtifacts> AppendTables(const TableCorpus& corpus,
                                         size_t first_new_table,
                                         const CandidateSet& candidates,
                                         const BlockedPairs& blocked,
                                         const ScoredGraph& scored,
                                         const Partitions& partitions,
                                         const SynthesisResult& result);

  /// Convenience: merges `delta`'s tables into `*corpus` (re-interning into
  /// its pool) and appends them. The ingestion shape of a serving fleet:
  /// batches arrive as independently-loaded corpora.
  Result<AppendedArtifacts> AppendCorpus(TableCorpus* corpus,
                                         const TableCorpus& delta,
                                         const CandidateSet& candidates,
                                         const BlockedPairs& blocked,
                                         const ScoredGraph& scored,
                                         const Partitions& partitions,
                                         const SynthesisResult& result);

  /// Incremental removal: tombstones `removed` tables in `*corpus` (their
  /// columns are cleared in place — slots and ids stay stable, which is
  /// what keeps every retained candidate id, mapping member list, and
  /// snapshot reference valid) and returns an artifact family whose
  /// mappings match a cold rebuild over the surviving tables. Costs scale
  /// with the removed tables' footprint: their postings are deleted from
  /// the maintained index in place, their candidates tombstoned, and only
  /// graph components that lost a candidate (or sat next to one) are
  /// re-partitioned and re-resolved — clean components carry their
  /// mappings verbatim. Coherence re-checks of surviving tables go
  /// through the margin cache like appends. Duplicate or out-of-range ids
  /// in `removed` fail with InvalidArgument before any mutation; removing
  /// an already tombstoned table is a no-op contribution.
  Result<AppendedArtifacts> RemoveTables(TableCorpus* corpus,
                                         std::vector<uint32_t> removed,
                                         const CandidateSet& candidates,
                                         const BlockedPairs& blocked,
                                         const ScoredGraph& scored,
                                         const Partitions& partitions,
                                         const SynthesisResult& result);

  /// Incremental replace: one atomic remove + append — tombstones
  /// `removed` in `*corpus`, merges `delta`'s tables at the tail
  /// (re-interning into the corpus pool), and reconciles the artifact
  /// family in a single maintenance pass (one index patch, one coherence
  /// re-check sweep, one dirty-component resolve). Equivalent to
  /// RemoveTables followed by AppendCorpus but at single-mutation cost.
  Result<AppendedArtifacts> ReplaceTables(TableCorpus* corpus,
                                          std::vector<uint32_t> removed,
                                          const TableCorpus& delta,
                                          const CandidateSet& candidates,
                                          const BlockedPairs& blocked,
                                          const ScoredGraph& scored,
                                          const Partitions& partitions,
                                          const SynthesisResult& result);

  // ------------------------------------------------------------ persistence

  /// Writes a versioned, checksummed snapshot (persist/snapshot.h) of the
  /// given artifacts — and the string pool they resolve against — to
  /// `path`. `candidates` is mandatory (every other artifact references
  /// it); `blocked`/`scored`/`result` are optional and round-trip when
  /// present. Artifacts must carry this session's lineage (same
  /// FailedPrecondition discipline as the stages). The snapshot embeds
  /// OptionsFingerprint(options()).
  Status SaveSnapshot(const std::string& path, const CandidateSet& candidates,
                      const BlockedPairs* blocked = nullptr,
                      const ScoredGraph* scored = nullptr,
                      const SynthesisResult* result = nullptr);

  /// Restores a snapshot into this session: artifacts come back with their
  /// saved lineage ids and cumulative PipelineStats, stamped as this
  /// session's own (the artifact-id counter advances past them), ready to
  /// feed straight into the downstream stages — RestoreSnapshot then
  /// Partition+Resolve is the warm-restart path. Fails with
  /// FailedPrecondition when the snapshot's options fingerprint does not
  /// match OptionsFingerprint(options()) — call UpdateOptions with the
  /// saving configuration first — and with DataLoss on a truncated or
  /// corrupted file.
  Result<SessionSnapshot> RestoreSnapshot(const std::string& path);

  /// Per-stage run counters: lets callers (and tests) assert which stages a
  /// warm re-run actually executed.
  struct SessionStats {
    size_t extract_runs = 0;
    size_t adopt_runs = 0;
    size_t blocking_runs = 0;
    size_t scoring_runs = 0;
    size_t partition_runs = 0;
    size_t resolve_runs = 0;
    /// Scoring runs whose per-worker matchers started warm (caches kept).
    size_t warm_scoring_runs = 0;
    /// Synonym snapshots (re)built because the dictionary version moved.
    size_t snapshot_rebuilds = 0;
    /// Persistence round trips through Save/RestoreSnapshot.
    size_t snapshot_saves = 0;
    size_t snapshot_restores = 0;
    /// Incremental corpus growth: AppendTables calls, and how many
    /// incremental mutations lost the delta fast path to a majority
    /// coherence-verdict flip (the internal cold re-run).
    size_t append_runs = 0;
    size_t append_full_rebuilds = 0;
    /// Incremental shrink/churn: RemoveTables / ReplaceTables calls.
    size_t remove_runs = 0;
    size_t replace_runs = 0;
  };
  const SessionStats& session_stats() const { return session_stats_; }

 private:
  struct MatcherSlots;

  Status ReadyToRun() const;
  /// Re-takes the session snapshot iff `dict`'s version moved; returns it.
  const SynonymSnapshot* RefreshSnapshot(const SynonymDictionary* dict);
  /// Effective per-run options with the session snapshot wired in.
  CompatibilityOptions EffectiveCompat();
  ConflictResolutionOptions EffectiveConflict();
  uint64_t NextArtifactId() { return next_artifact_id_++; }
  /// Scores `pairs` over `tables` through the session's persistent
  /// per-worker matchers (building/warming them as needed); shared by
  /// ScorePairs and the append delta-scoring path.
  CompatibilityGraph ScoreThroughSessionMatchers(
      const std::vector<BinaryTable>& tables, const StringPool& pool,
      const std::vector<CandidateTablePair>& pairs, ScoringStats* scoring);
  Status CheckSameSession(const char* stage, const void* session) const;
  Status CheckLineage(const char* stage, const void* session,
                      uint64_t got_candidates_id,
                      uint64_t want_candidates_id) const;
  /// All artifact-side preconditions of an append (lineage, extraction
  /// signatures, result consistency) — everything that can be checked
  /// before touching a corpus, so AppendCorpus validates BEFORE mutating.
  Status ValidateAppendFamily(const CandidateSet& candidates,
                              const BlockedPairs& blocked,
                              const ScoredGraph& scored,
                              const Partitions& partitions,
                              const SynthesisResult& result) const;
  /// The unified incremental-maintenance core behind AppendTables,
  /// RemoveTables, and ReplaceTables: `corpus` is already mutated (removed
  /// tables tombstoned, appended tables merged at the tail);
  /// `removed_tables` (sorted), `removed_values`, and `removed_columns`
  /// describe the tombstoned footprint. Caller holds run_mu_.
  Result<AppendedArtifacts> ApplyCorpusDeltaLocked(
      const TableCorpus& corpus, size_t first_new_table,
      std::vector<uint32_t> removed_tables,
      std::vector<ValueId> removed_values, size_t removed_columns,
      const CandidateSet& candidates, const BlockedPairs& blocked,
      const ScoredGraph& scored, const Partitions& partitions,
      const SynthesisResult& result);
  /// Returns the maintained corpus index, patched in place (posting
  /// deletes for `removed_tables`, appends for tables past
  /// `first_new_table`) when the cache matches the pre-mutation corpus
  /// state — object identity, table/column counts, and the input family's
  /// generation — rebuilt from scratch otherwise. Caller holds run_mu_.
  const ColumnInvertedIndex& MaintainedIndexLocked(
      const TableCorpus& corpus, size_t first_new_table,
      const std::vector<uint32_t>& removed_tables, size_t removed_columns,
      uint32_t base_generation);

  /// Writer-side mutual exclusion: every public stage/composite/persistence
  /// entry point locks this, so two threads driving the same session
  /// serialize instead of corrupting the warm state (matcher caches,
  /// synonym snapshot, artifact-id counter, stage counters). Recursive
  /// because composites (Run, AppendCorpus, …) re-enter the stage entry
  /// points. This makes concurrent *writes* safe, not cheap — the serving
  /// tier (MappingService) keeps reads off the session entirely via
  /// immutable ServingSnapshots; see docs/serving.md.
  mutable std::recursive_mutex run_mu_;

  SynthesisOptions options_;
  Status init_status_;
  std::unique_ptr<ThreadPool> threads_;
  std::unique_ptr<MatcherSlots> matchers_;
  SynonymSnapshot synonym_snapshot_;
  bool snapshot_valid_ = false;
  uint64_t next_artifact_id_ = 1;
  SessionStats session_stats_;
  Env* env_ = Env::Default();

  /// Cached maintained inverted index for incremental mutations. Valid
  /// only while the identified corpus object mutates exclusively through
  /// this session's append/remove/replace entry points; the fingerprint
  /// (object identity + table count + live column count) catches every
  /// legal staleness and any mismatch falls back to a full rebuild.
  ColumnInvertedIndex index_cache_;
  const TableCorpus* index_corpus_ = nullptr;
  size_t index_tables_ = 0;
  size_t index_columns_ = 0;
  /// Artifact generation the cache corresponds to: a mutation may patch
  /// only when its input family's generation matches (a cold extraction
  /// seeds the cache at the family's generation), so a recycled corpus
  /// address with coincidentally matching counts cannot alias.
  uint32_t index_generation_ = 0;
};

}  // namespace ms
