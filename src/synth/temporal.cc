#include "synth/temporal.h"

#include <algorithm>

#include "graph/union_find.h"

namespace ms {
namespace {

/// Shared-left statistics between two merged relations.
struct LeftOverlap {
  size_t shared = 0;      ///< left values present in both
  size_t conflicting = 0; ///< shared lefts with non-matching rights
};

LeftOverlap ComputeLeftOverlap(const BinaryTable& a, const BinaryTable& b,
                               const StringPool& pool,
                               const CompatibilityOptions& compat) {
  LeftOverlap out;
  const auto& pa = a.pairs();
  const auto& pb = b.pairs();
  size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i].left < pb[j].left) {
      ++i;
    } else if (pb[j].left < pa[i].left) {
      ++j;
    } else {
      const ValueId l = pa[i].left;
      size_t ie = i, je = j;
      while (ie < pa.size() && pa[ie].left == l) ++ie;
      while (je < pb.size() && pb[je].left == l) ++je;
      ++out.shared;
      bool conflict = false;
      for (size_t x = i; x < ie && !conflict; ++x) {
        for (size_t y = j; y < je; ++y) {
          if (!ValuesMatch(pa[x].right, pb[y].right, pool, compat)) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) ++out.conflicting;
      i = ie;
      j = je;
    }
  }
  return out;
}

}  // namespace

TemporalDetectionResult DetectTemporalMappings(
    const std::vector<SynthesizedMapping>& mappings, const StringPool& pool,
    const TemporalDetectionOptions& options) {
  TemporalDetectionResult result;
  const size_t n = mappings.size();
  result.is_temporal.assign(n, false);
  if (n == 0) return result;

  UnionFind uf(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    const size_t li = mappings[i].NumLeftValues();
    if (li < options.min_cluster_size) continue;
    for (size_t j = i + 1; j < n; ++j) {
      const size_t lj = mappings[j].NumLeftValues();
      if (lj < options.min_cluster_size) continue;
      LeftOverlap ov = ComputeLeftOverlap(mappings[i].merged,
                                          mappings[j].merged, pool,
                                          options.compat);
      if (ov.shared < options.min_shared_lefts) continue;
      const double containment =
          static_cast<double>(ov.shared) /
          static_cast<double>(std::min(li, lj));
      if (containment < options.min_left_containment) continue;
      const double conflict_fraction =
          static_cast<double>(ov.conflicting) /
          static_cast<double>(ov.shared);
      if (conflict_fraction < options.min_conflict_fraction) continue;
      uf.Union(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }

  result.groups = [&] {
    std::vector<std::vector<size_t>> groups;
    auto comps = uf.Components();
    for (auto& c : comps) {
      if (c.size() < 2) continue;  // singletons are not snapshot groups
      groups.emplace_back(c.begin(), c.end());
    }
    return groups;
  }();

  for (const auto& group : result.groups) {
    if (group.size() < options.min_group_size) continue;
    for (size_t idx : group) {
      if (!result.is_temporal[idx]) {
        result.is_temporal[idx] = true;
        ++result.flagged;
      }
    }
  }
  return result;
}

}  // namespace ms
