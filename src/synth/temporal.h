// Temporal-mapping detection — the paper's Appendix J future-work item:
// temporal relationships (driver → team, club → points) manifest as *many*
// mutually-conflicting synthesized clusters over the same left entities
// (one per season/snapshot), whereas static relationships produce either a
// single cluster or a small, fixed set of conflicting siblings (ISO vs IOC
// vs FIFA codes). "Additional reasoning of conflicts between synthesized
// clusters can potentially identify such temporal mappings."
//
// The detector groups clusters that share left entities but conflict on
// rights, and flags groups whose cardinality exceeds what code-system
// families exhibit.
#pragma once

#include <vector>

#include "synth/compatibility.h"
#include "synth/mapping.h"

namespace ms {

struct TemporalDetectionOptions {
  /// Two clusters are "snapshot-related" when this fraction of the smaller
  /// cluster's left values also appears in the other...
  double min_left_containment = 0.5;
  /// ...and at least this fraction of those shared lefts have conflicting
  /// rights (temporal snapshots re-map most entities; code systems only a
  /// minority).
  double min_conflict_fraction = 0.4;
  /// Groups with at least this many snapshot-related clusters are flagged
  /// temporal (ISO/IOC/FIFA-style families have 2-3 siblings).
  size_t min_group_size = 4;
  /// Clusters smaller than this never participate: synthesis fragments
  /// (2-3 pairs) trivially reach high containment and would chain
  /// unrelated clusters into giant spurious snapshot groups.
  size_t min_cluster_size = 5;
  /// At least this many shared left entities are required per pair.
  size_t min_shared_lefts = 4;
  CompatibilityOptions compat;
};

struct TemporalDetectionResult {
  /// Per input mapping: true when it belongs to a flagged temporal group.
  std::vector<bool> is_temporal;
  /// Snapshot groups found (indices into the input vector), flagged or not.
  std::vector<std::vector<size_t>> groups;
  size_t flagged = 0;
};

TemporalDetectionResult DetectTemporalMappings(
    const std::vector<SynthesizedMapping>& mappings, const StringPool& pool,
    const TemporalDetectionOptions& options = {});

}  // namespace ms
