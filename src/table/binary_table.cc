#include "table/binary_table.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace ms {

BinaryTable BinaryTable::FromColumns(const Table& table, size_t left_col,
                                     size_t right_col) {
  assert(left_col < table.columns.size());
  assert(right_col < table.columns.size());
  assert(left_col != right_col);
  const Column& lc = table.columns[left_col];
  const Column& rc = table.columns[right_col];
  const size_t n = std::min(lc.size(), rc.size());

  BinaryTable b;
  b.source_table = table.id;
  b.domain = table.domain;
  b.source = table.source;
  b.left_name = lc.name;
  b.right_name = rc.name;
  b.pairs_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.pairs_.push_back({lc.cells[i], rc.cells[i]});
  }
  b.Canonicalize();
  return b;
}

BinaryTable BinaryTable::FromPairs(std::vector<ValuePair> pairs) {
  BinaryTable b;
  b.pairs_ = std::move(pairs);
  b.Canonicalize();
  return b;
}

void BinaryTable::Canonicalize() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool BinaryTable::ContainsPair(const ValuePair& p) const {
  return std::binary_search(pairs_.begin(), pairs_.end(), p);
}

std::vector<ValueId> BinaryTable::LeftValues() const {
  std::vector<ValueId> out;
  out.reserve(pairs_.size());
  for (const auto& p : pairs_) {
    if (out.empty() || out.back() != p.left) out.push_back(p.left);
  }
  return out;  // pairs_ sorted by (left, right) => lefts already sorted
}

std::vector<ValueId> BinaryTable::RightValues() const {
  std::vector<ValueId> out;
  out.reserve(pairs_.size());
  for (const auto& p : pairs_) out.push_back(p.right);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double BinaryTable::FdHoldRatio() const {
  if (pairs_.empty()) return 1.0;
  // pairs_ sorted by left: walk runs of equal left values. Each distinct
  // (left,right) pair appears once, so within a run every right is distinct;
  // the plurality right value for that left can only be justified by raw row
  // multiplicity, which dedup removed. We therefore count, per left value,
  // one kept pair out of the k distinct rights it maps to.
  size_t kept = 0;
  size_t i = 0;
  while (i < pairs_.size()) {
    size_t j = i;
    while (j < pairs_.size() && pairs_[j].left == pairs_[i].left) ++j;
    kept += 1;  // keep exactly one right value per left value
    i = j;
  }
  return static_cast<double>(kept) / static_cast<double>(pairs_.size());
}

size_t BinaryTable::IntersectSize(const BinaryTable& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  const auto& a = pairs_;
  const auto& b = other.pairs_;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::vector<ValueId> BinaryTable::ConflictSet(const BinaryTable& other) const {
  std::vector<ValueId> out;
  size_t i = 0, j = 0;
  const auto& a = pairs_;
  const auto& b = other.pairs_;
  // Walk runs of equal left value in both tables; a conflict exists when the
  // two runs' right-value sets are not identical... the paper's definition is
  // l ∈ F iff ∃ (l,r) ∈ B, (l,r') ∈ B' with r ≠ r'.
  while (i < a.size() && j < b.size()) {
    if (a[i].left < b[j].left) {
      ++i;
    } else if (b[j].left < a[i].left) {
      ++j;
    } else {
      const ValueId l = a[i].left;
      size_t ie = i, je = j;
      while (ie < a.size() && a[ie].left == l) ++ie;
      while (je < b.size() && b[je].left == l) ++je;
      bool conflict = false;
      for (size_t x = i; x < ie && !conflict; ++x) {
        for (size_t y = j; y < je; ++y) {
          if (a[x].right != b[y].right) {
            conflict = true;
            break;
          }
        }
      }
      if (conflict) out.push_back(l);
      i = ie;
      j = je;
    }
  }
  return out;
}

}  // namespace ms
