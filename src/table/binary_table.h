// Two-column candidate tables ("binary tables", B in the paper). These are
// the unit of synthesis: Step 1 extracts them from corpus tables, Step 2
// groups compatible ones, Step 3 resolves conflicts inside each group.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "table/string_pool.h"
#include "table/table.h"

namespace ms {

/// One (left, right) value pair of a binary relation.
struct ValuePair {
  ValueId left = kInvalidValueId;
  ValueId right = kInvalidValueId;

  friend bool operator==(const ValuePair&, const ValuePair&) = default;
  friend auto operator<=>(const ValuePair&, const ValuePair&) = default;
};

using BinaryTableId = uint32_t;

/// An ordered two-column table B = {(l_i, r_i)} with provenance. Pairs are
/// stored sorted and de-duplicated, which makes intersection, containment
/// and conflict-set computations linear merges.
class BinaryTable {
 public:
  BinaryTable() = default;

  /// Builds from two row-aligned columns of `table` (ordered: `left_col` is
  /// the determining attribute). Duplicate pairs collapse.
  static BinaryTable FromColumns(const Table& table, size_t left_col,
                                 size_t right_col);

  /// Builds directly from pairs (sorted + deduped internally).
  static BinaryTable FromPairs(std::vector<ValuePair> pairs);

  BinaryTableId id = 0;
  TableId source_table = 0;
  std::string domain;
  TableSource source = TableSource::kWeb;
  std::string left_name;   ///< header of the determining column
  std::string right_name;  ///< header of the determined column

  const std::vector<ValuePair>& pairs() const { return pairs_; }
  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  bool ContainsPair(const ValuePair& p) const;

  /// Distinct left-hand-side values, sorted.
  std::vector<ValueId> LeftValues() const;

  /// Distinct right-hand-side values, sorted.
  std::vector<ValueId> RightValues() const;

  /// Fraction of pairs that survive in the largest FD-consistent subset:
  /// for each left value keep the plurality right value. Definition 2's
  /// θ-approximate mapping holds iff FdHoldRatio() >= θ.
  double FdHoldRatio() const;

  /// True when the relation X -> Y is a θ-approximate mapping.
  bool IsApproximateMapping(double theta) const {
    return !pairs_.empty() && FdHoldRatio() >= theta;
  }

  /// |this ∩ other| exact pair intersection size (merge on sorted pairs).
  size_t IntersectSize(const BinaryTable& other) const;

  /// Conflict set F(B, B') = {l | (l,r) ∈ B, (l,r') ∈ B', r ≠ r'} — the
  /// left values mapped inconsistently across the two tables. Returns
  /// distinct left values.
  std::vector<ValueId> ConflictSet(const BinaryTable& other) const;

 private:
  void Canonicalize();

  std::vector<ValuePair> pairs_;
};

}  // namespace ms
