#include "table/corpus.h"

#include <algorithm>
#include <cassert>

namespace ms {

TableId TableCorpus::Add(Table table) {
  table.id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(table));
  return tables_.back().id;
}

TableId TableCorpus::AddFromStrings(
    std::string domain, TableSource source,
    const std::vector<std::string>& column_names,
    const std::vector<std::vector<std::string>>& columns) {
  assert(column_names.size() == columns.size());
  Table t;
  t.domain = std::move(domain);
  t.source = source;
  t.columns.reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    Column col;
    col.name = column_names[c];
    col.cells.reserve(columns[c].size());
    for (const auto& cell : columns[c]) col.cells.push_back(pool_->Intern(cell));
    t.columns.push_back(std::move(col));
  }
  return Add(std::move(t));
}

Result<size_t> TableCorpus::AppendFrom(const TableCorpus& other) {
  const size_t first_new = tables_.size();
  const bool same_pool = other.pool_ == pool_;
  // Stage into a scratch list first: a mid-append failure (read-only pool
  // refusing an unseen string) must leave this corpus untouched.
  std::vector<Table> staged;
  staged.reserve(other.tables_.size());
  for (const Table& src : other.tables_) {
    Table t;
    t.domain = src.domain;
    t.source = src.source;
    t.columns.reserve(src.columns.size());
    for (const Column& sc : src.columns) {
      Column col;
      col.name = sc.name;
      col.cells.reserve(sc.cells.size());
      for (ValueId v : sc.cells) {
        const ValueId id =
            same_pool ? v : pool_->Intern(other.pool().Get(v));
        if (id == kInvalidValueId) {
          return Status::FailedPrecondition(
              "AppendFrom: this corpus's pool is read-only and the delta "
              "holds an unseen value — a frozen serving pool cannot absorb "
              "new tables");
        }
        col.cells.push_back(id);
      }
      t.columns.push_back(std::move(col));
    }
    staged.push_back(std::move(t));
  }
  for (Table& t : staged) Add(std::move(t));
  return first_new;
}

void TableCorpus::Truncate(size_t num_tables) {
  if (num_tables >= tables_.size()) return;
  tables_.resize(num_tables);
}

std::vector<Column> TableCorpus::Tombstone(TableId id) {
  assert(id < tables_.size());
  std::vector<Column> out = std::move(tables_[id].columns);
  tables_[id].columns.clear();
  return out;
}

void TableCorpus::RestoreColumns(TableId id, std::vector<Column> columns) {
  assert(id < tables_.size());
  tables_[id].columns = std::move(columns);
}

size_t TableCorpus::TotalColumns() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.num_columns();
  return n;
}

TableCorpus TableCorpus::Subset(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  TableCorpus out;
  out.pool_ = pool_;  // share interning
  const size_t keep = static_cast<size_t>(
      static_cast<double>(tables_.size()) * fraction);
  // One copy straight into place: ids are already dense 0..keep-1, so the
  // per-table Add() round-trip (copy into a temporary, move, re-assign the
  // id it already had) was pure overhead on corpusgen setup.
  out.tables_.assign(tables_.begin(), tables_.begin() + keep);
  return out;
}

}  // namespace ms
