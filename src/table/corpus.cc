#include "table/corpus.h"

#include <algorithm>
#include <cassert>

namespace ms {

TableId TableCorpus::Add(Table table) {
  table.id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(table));
  return tables_.back().id;
}

TableId TableCorpus::AddFromStrings(
    std::string domain, TableSource source,
    const std::vector<std::string>& column_names,
    const std::vector<std::vector<std::string>>& columns) {
  assert(column_names.size() == columns.size());
  Table t;
  t.domain = std::move(domain);
  t.source = source;
  t.columns.reserve(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    Column col;
    col.name = column_names[c];
    col.cells.reserve(columns[c].size());
    for (const auto& cell : columns[c]) col.cells.push_back(pool_->Intern(cell));
    t.columns.push_back(std::move(col));
  }
  return Add(std::move(t));
}

size_t TableCorpus::TotalColumns() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.num_columns();
  return n;
}

TableCorpus TableCorpus::Subset(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  TableCorpus out;
  out.pool_ = pool_;  // share interning
  const size_t keep = static_cast<size_t>(
      static_cast<double>(tables_.size()) * fraction);
  for (size_t i = 0; i < keep; ++i) {
    Table t = tables_[i];
    out.Add(std::move(t));
  }
  return out;
}

}  // namespace ms
