// A table corpus T = {T}: the only input to the synthesis problem
// (Definition 3). Owns the interning pool shared by all contained tables.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "table/string_pool.h"
#include "table/table.h"

namespace ms {

/// Container for tables plus the shared string pool. Movable, not copyable
/// (a corpus can be large).
class TableCorpus {
 public:
  TableCorpus() : pool_(std::make_shared<StringPool>()) {}

  TableCorpus(const TableCorpus&) = delete;
  TableCorpus& operator=(const TableCorpus&) = delete;
  TableCorpus(TableCorpus&&) = default;
  TableCorpus& operator=(TableCorpus&&) = default;

  StringPool& pool() { return *pool_; }
  const StringPool& pool() const { return *pool_; }
  std::shared_ptr<StringPool> shared_pool() const { return pool_; }

  /// Adds a table, assigning it the next TableId. Returns the id.
  TableId Add(Table table);

  /// Convenience: builds a table from string cells (column-major), interning
  /// values into the pool.
  TableId AddFromStrings(std::string domain, TableSource source,
                         const std::vector<std::string>& column_names,
                         const std::vector<std::vector<std::string>>& columns);

  /// Appends copies of `other`'s tables, re-interning every cell value into
  /// this corpus's pool (the two corpora may use different pools). Returns
  /// the index of the first appended table — the `first_new_table` argument
  /// SynthesisSession::AppendTables expects. This is the ingestion path for
  /// incremental corpus growth: batches arrive as independently-loaded
  /// corpora and are merged into the live one. FailedPrecondition when this
  /// corpus's pool is read-only and `other` holds an unseen string (the
  /// corpus is left untouched): a frozen serving pool cannot absorb new
  /// values, and storing kInvalidValueId cells would silently corrupt every
  /// downstream extraction.
  Result<size_t> AppendFrom(const TableCorpus& other);

  /// Drops every table at index >= `num_tables` (no-op when the corpus is
  /// already that small or smaller). The rollback half of the append
  /// protocol: a failed append undoes its AppendFrom merge so retries see
  /// the exact pre-append corpus. Pool entries interned by the dropped
  /// tables remain — callers that must reclaim them (the serving rollback
  /// path) record pool().size() before the append and call
  /// StringPool::TruncateTo alongside this.
  void Truncate(size_t num_tables);

  /// Tombstones table `id` in place: its columns are moved out and
  /// returned, leaving an empty shell that keeps its slot, id, domain, and
  /// source. Table ids therefore stay stable across removals — the
  /// invariant incremental maintenance (SynthesisSession::RemoveTables)
  /// and snapshot provenance rely on. A cold rebuild over the mutated
  /// corpus sees the shell contribute zero columns, exactly as if the
  /// table had never existed. The returned columns let the caller restore
  /// the table on a failed mutation (RestoreColumns).
  std::vector<Column> Tombstone(TableId id);

  /// Puts back the columns Tombstone() moved out — the rollback half of a
  /// failed remove/replace.
  void RestoreColumns(TableId id, std::vector<Column> columns);

  const std::vector<Table>& tables() const { return tables_; }
  const Table& table(TableId id) const { return tables_[id]; }
  size_t size() const { return tables_.size(); }

  /// Total number of columns across all tables (the N in the PMI formula).
  size_t TotalColumns() const;

  /// Keeps only the first `fraction` (by insertion order after a seeded
  /// shuffle would be done by the caller) — used by the scalability sweep.
  /// Returns a new corpus sharing the same pool. Cell storage is still
  /// copied (tables hold their ValueId vectors by value; only the string
  /// bytes are shared through the pool), so this is O(kept cells) — see
  /// the bench_micro corpus/subset entry guarding that cost.
  TableCorpus Subset(double fraction) const;

 private:
  std::shared_ptr<StringPool> pool_;
  std::vector<Table> tables_;
};

}  // namespace ms
