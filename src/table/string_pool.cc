#include "table/string_pool.h"

#include <cassert>

namespace ms {

ValueId StringPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  ValueId id = static_cast<ValueId>(strings_.size() - 1);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

void StringPool::InternBatch(const std::vector<std::string>& strs,
                             std::vector<ValueId>* ids) {
  std::lock_guard<std::mutex> lock(mu_);
  ids->reserve(ids->size() + strs.size());
  for (const std::string& s : strs) {
    auto it = index_.find(s);
    if (it != index_.end()) {
      ids->push_back(it->second);
      continue;
    }
    strings_.emplace_back(s);
    ValueId id = static_cast<ValueId>(strings_.size() - 1);
    index_.emplace(std::string_view(strings_.back()), id);
    ids->push_back(id);
  }
}

ValueId StringPool::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidValueId : it->second;
}

std::string_view StringPool::Get(ValueId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < strings_.size());
  return strings_[id];
}

size_t StringPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strings_.size();
}

}  // namespace ms
