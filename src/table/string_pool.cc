#include "table/string_pool.h"

#include <cassert>

namespace ms {

void StringPool::EnsureIndexLocked() const {
  if (indexed_ == views_.size()) return;
  index_.reserve(views_.size());
  for (; indexed_ < views_.size(); ++indexed_) {
    // Keep-first on duplicates, matching Intern(): ids stay dense either
    // way, and persisted pools are deduplicated by construction.
    index_.emplace(views_[indexed_], static_cast<ValueId>(indexed_));
  }
}

ValueId StringPool::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureIndexLocked();
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  if (read_only_) return kInvalidValueId;
  owned_.emplace_back(s);
  views_.push_back(std::string_view(owned_.back()));
  ValueId id = static_cast<ValueId>(views_.size() - 1);
  index_.emplace(views_.back(), id);
  indexed_ = views_.size();
  return id;
}

void StringPool::InternBatch(const std::vector<std::string>& strs,
                             std::vector<ValueId>* ids) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureIndexLocked();
  ids->reserve(ids->size() + strs.size());
  for (const std::string& s : strs) {
    auto it = index_.find(s);
    if (it != index_.end()) {
      ids->push_back(it->second);
      continue;
    }
    if (read_only_) {
      ids->push_back(kInvalidValueId);
      continue;
    }
    owned_.emplace_back(s);
    views_.push_back(std::string_view(owned_.back()));
    ValueId id = static_cast<ValueId>(views_.size() - 1);
    index_.emplace(views_.back(), id);
    indexed_ = views_.size();
    ids->push_back(id);
  }
}

void StringPool::AdoptExternal(const std::vector<std::string_view>& views) {
  std::lock_guard<std::mutex> lock(mu_);
  if (read_only_) return;
  views_.reserve(views_.size() + views.size());
  // Deliberately no index_ update: the hash build is deferred until the
  // first string -> id lookup (EnsureIndexLocked), so id-only consumers
  // (serving from a restored snapshot) never pay it.
  for (std::string_view v : views) {
    views_.push_back(v);
  }
}

void StringPool::RetainBacking(std::shared_ptr<const void> backing) {
  std::lock_guard<std::mutex> lock(mu_);
  backings_.push_back(std::move(backing));
}

void StringPool::MarkReadOnly() {
  std::lock_guard<std::mutex> lock(mu_);
  read_only_ = true;
}

bool StringPool::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_only_;
}

void StringPool::TruncateTo(size_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (new_size >= views_.size()) return;
  for (size_t i = views_.size(); i-- > new_size;) {
    // Keep-first duplicate semantics: only drop the index entry if this id
    // owns it (a tail duplicate of an earlier string must not unmap it).
    auto it = index_.find(views_[i]);
    if (it != index_.end() && it->second == static_cast<ValueId>(i)) {
      index_.erase(it);
    }
    // Owned strings are appended to owned_ in id order, so the tail of
    // views_ that points into owned_ is exactly the tail of owned_.
    if (!owned_.empty() && views_[i].data() == owned_.back().data()) {
      owned_.pop_back();
    }
  }
  views_.resize(new_size);
  if (indexed_ > new_size) indexed_ = new_size;
}

ValueId StringPool::Find(std::string_view s) const {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureIndexLocked();
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidValueId : it->second;
}

std::string_view StringPool::Get(ValueId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < views_.size());
  return views_[id];
}

size_t StringPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

size_t StringPool::indexed_strings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexed_;
}

}  // namespace ms
