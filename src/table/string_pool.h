// Global string interning. Every distinct cell value in a corpus is stored
// once and referenced by a dense 32-bit ValueId everywhere else (tables,
// binary relations, inverted indexes, graphs). This keeps the quadratic
// compatibility computations id-based and cache-friendly.
//
// Two storage modes coexist in one pool:
//   - Intern()'d strings are copied into pool-owned storage (deque: stored
//     bytes never move), exactly as before.
//   - AdoptExternal() appends string_views over caller-owned memory without
//     copying — the zero-copy path the persistence layer uses to rebuild a
//     pool over an mmap'd snapshot/corpus-store region. The backing mapping
//     is pinned for the pool's lifetime with RetainBacking(), so views can
//     never outlive their bytes no matter where the pool handle travels.
//
// The string -> id hash over adopted views is built lazily: AdoptExternal()
// only appends the views, and the index over them is materialized on the
// first operation that needs it (Intern / InternBatch / Find). Serving
// paths that only resolve ids (Get) — a MappingStore answering lookups from
// a restored snapshot — never pay the hash build, which dominates the
// corpus-store open time. Laziness is invisible to callers: results are
// identical either way.
//
// MarkReadOnly() freezes the pool for serving-only deployments: lookups
// keep working, but interning an unseen string returns kInvalidValueId
// instead of mutating the pool.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ms {

using ValueId = uint32_t;

/// Sentinel for "no value".
inline constexpr ValueId kInvalidValueId = UINT32_MAX;

/// Append-only interning pool. Intern() is thread-safe; Get() is safe to
/// call concurrently with Intern() because stored bytes never move (deque
/// storage for owned strings, caller-pinned memory for adopted ones) and
/// ids are handed out only after the string is in place.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id for `s`, inserting it on first sight. On a read-only
  /// pool, unseen strings return kInvalidValueId instead of inserting.
  ValueId Intern(std::string_view s);

  /// Interns every string in `strs` under a single lock acquisition and
  /// appends the resulting ids to `ids` (same order). Batching matters on
  /// the extraction hot path: per-cell Intern() calls serialize every
  /// worker on this pool's mutex.
  void InternBatch(const std::vector<std::string>& strs,
                   std::vector<ValueId>* ids);

  /// Zero-copy bulk adoption: appends `views` verbatim as ids
  /// size()..size()+n-1 WITHOUT copying the bytes. The caller guarantees
  /// the backing memory outlives the pool — pin an mmap with
  /// RetainBacking(). The string -> id index over adopted views is built
  /// lazily on the first Find()/Intern(); id-based lookups (Get) never
  /// trigger it. Ignored on a read-only pool.
  void AdoptExternal(const std::vector<std::string_view>& views);

  /// Pins `backing` (e.g. a persist::MmapFile) until the pool is destroyed,
  /// making AdoptExternal()'d views safe wherever the pool handle is shared.
  void RetainBacking(std::shared_ptr<const void> backing);

  /// Freezes the pool: Find()/Get() keep working, Intern() of an already
  /// interned string still returns its id, but unseen strings return
  /// kInvalidValueId instead of inserting. Irreversible; used by
  /// serving-only deployments restored from snapshots.
  void MarkReadOnly();
  bool read_only() const;

  /// Removes every id >= `new_size`, releasing owned storage and index
  /// entries for the dropped tail. The unintern half of the append-rollback
  /// protocol: a failed corpus append truncates the pool back to its
  /// pre-append size so the strings the dead delta interned are neither
  /// Find-able nor held in memory. Only owned (Intern'd) strings may be in
  /// the dropped tail — adopted views are only ever created by restore
  /// paths that precede any append. No-op when new_size >= size().
  void TruncateTo(size_t new_size);

  /// Returns the id for `s` or kInvalidValueId if never interned. Builds
  /// the deferred index over adopted views if necessary.
  ValueId Find(std::string_view s) const;

  /// The interned string for a valid id.
  std::string_view Get(ValueId id) const;

  size_t size() const;

  /// Observability for the lazy index: how many strings are currently
  /// covered by the string -> id hash. Stays 0 after AdoptExternal() until
  /// a Find()/Intern() forces the build; tests and bench_micro use this to
  /// prove serving-only paths never pay it.
  size_t indexed_strings() const;

 private:
  /// Indexes views_[indexed_..views_.size()) into index_. Caller holds mu_.
  void EnsureIndexLocked() const;

  mutable std::mutex mu_;
  /// id -> bytes; views point into `owned_` or into retained backings.
  std::vector<std::string_view> views_;
  std::deque<std::string> owned_;
  /// Lazily covers views_[0..indexed_); adopted views are indexed on the
  /// first string -> id operation, never on adoption.
  mutable std::unordered_map<std::string_view, ValueId> index_;
  mutable size_t indexed_ = 0;
  std::vector<std::shared_ptr<const void>> backings_;
  bool read_only_ = false;
};

}  // namespace ms
