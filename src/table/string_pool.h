// Global string interning. Every distinct cell value in a corpus is stored
// once and referenced by a dense 32-bit ValueId everywhere else (tables,
// binary relations, inverted indexes, graphs). This keeps the quadratic
// compatibility computations id-based and cache-friendly.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ms {

using ValueId = uint32_t;

/// Sentinel for "no value".
inline constexpr ValueId kInvalidValueId = UINT32_MAX;

/// Append-only interning pool. Intern() is thread-safe; Get() is safe to
/// call concurrently with Intern() because stored strings never move (deque
/// storage) and ids are handed out only after the string is in place.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id for `s`, inserting it on first sight.
  ValueId Intern(std::string_view s);

  /// Interns every string in `strs` under a single lock acquisition and
  /// appends the resulting ids to `ids` (same order). Batching matters on
  /// the extraction hot path: per-cell Intern() calls serialize every
  /// worker on this pool's mutex.
  void InternBatch(const std::vector<std::string>& strs,
                   std::vector<ValueId>* ids);

  /// Returns the id for `s` or kInvalidValueId if never interned.
  ValueId Find(std::string_view s) const;

  /// The interned string for a valid id.
  std::string_view Get(ValueId id) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, ValueId> index_;
};

}  // namespace ms
