#include "table/table.h"

namespace ms {

const char* TableSourceName(TableSource s) {
  switch (s) {
    case TableSource::kWeb:
      return "web";
    case TableSource::kWiki:
      return "wiki";
    case TableSource::kEnterprise:
      return "enterprise";
    case TableSource::kTrusted:
      return "trusted";
  }
  return "?";
}

bool Table::IsRectangular() const {
  if (columns.empty()) return true;
  const size_t n = columns[0].size();
  for (const auto& c : columns) {
    if (c.size() != n) return false;
  }
  return true;
}

}  // namespace ms
