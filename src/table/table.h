// Core relational-table model: a Table is a set of named columns of interned
// values, annotated with provenance (web domain / source kind) used by the
// UnionDomain baseline and by curation-popularity statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "table/string_pool.h"

namespace ms {

using TableId = uint32_t;

/// Where a table came from; drives baseline eligibility (WikiTable only
/// looks at kWiki tables) and the trusted-source expansion step.
enum class TableSource {
  kWeb = 0,        ///< generic web-extracted HTML table
  kWiki,           ///< Wikipedia table (high quality, short)
  kEnterprise,     ///< intranet spreadsheet
  kTrusted,        ///< authoritative feed (data.gov-style), used for expansion
};

const char* TableSourceName(TableSource s);

/// One named column of interned cell values.
struct Column {
  std::string name;            ///< header, often undescriptive ("name","code")
  std::vector<ValueId> cells;  ///< row-aligned values

  size_t size() const { return cells.size(); }
};

/// A relational table extracted from a corpus.
struct Table {
  TableId id = 0;
  std::string domain;  ///< website domain (e.g. "sports.example.org")
  TableSource source = TableSource::kWeb;
  std::vector<Column> columns;

  size_t num_columns() const { return columns.size(); }
  size_t num_rows() const { return columns.empty() ? 0 : columns[0].size(); }

  /// True when all columns have the same number of cells.
  bool IsRectangular() const;
};

}  // namespace ms
