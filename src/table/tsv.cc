#include "table/tsv.h"

#include <ostream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace ms {
namespace {

TableSource ParseSource(std::string_view s) {
  if (s == "wiki") return TableSource::kWiki;
  if (s == "enterprise") return TableSource::kEnterprise;
  if (s == "trusted") return TableSource::kTrusted;
  return TableSource::kWeb;
}

}  // namespace

Status WriteCorpusTsv(const TableCorpus& corpus, std::ostream& out) {
  const StringPool& pool = corpus.pool();
  for (const auto& t : corpus.tables()) {
    out << "#table " << (t.domain.empty() ? "-" : t.domain) << ' '
        << TableSourceName(t.source) << '\n';
    for (size_t c = 0; c < t.columns.size(); ++c) {
      if (c) out << '\t';
      out << t.columns[c].name;
    }
    out << '\n';
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < t.columns.size(); ++c) {
        if (c) out << '\t';
        if (r < t.columns[c].size()) out << pool.Get(t.columns[c].cells[r]);
      }
      out << '\n';
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Status ReadCorpusTsv(std::istream& in, TableCorpus* corpus) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!StartsWith(line, "#table ")) {
      return Status::InvalidArgument("expected '#table' header, got: " + line);
    }
    auto header = Split(line.substr(7), ' ');
    if (header.size() < 2) {
      return Status::InvalidArgument("malformed table header: " + line);
    }
    std::string domain = header[0] == "-" ? "" : header[0];
    TableSource source = ParseSource(header[1]);

    if (!std::getline(in, line)) {
      return Status::InvalidArgument("missing column-name row");
    }
    auto names = Split(line, '\t');
    std::vector<std::vector<std::string>> cols(names.size());

    while (std::getline(in, line) && !line.empty()) {
      auto cells = Split(line, '\t');
      cells.resize(names.size());
      for (size_t c = 0; c < names.size(); ++c) {
        cols[c].push_back(std::move(cells[c]));
      }
    }
    corpus->AddFromStrings(std::move(domain), source, names, cols);
  }
  return Status::OK();
}

Status SaveCorpus(const TableCorpus& corpus, const std::string& path,
                  Env* env) {
  if (env == nullptr) env = Env::Default();
  // Serialize in memory, then write through the env: the stream API stays
  // path-agnostic while the file API gets retry absorption (short writes,
  // EINTR) and path+errno failure messages from the env layer.
  std::ostringstream out;
  MS_RETURN_IF_ERROR(WriteCorpusTsv(corpus, out));
  return WriteStringToFile(*env, path, out.str());
}

Status LoadCorpus(const std::string& path, TableCorpus* corpus, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> contents = env->ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(std::move(contents).value());
  return ReadCorpusTsv(in, corpus);
}

}  // namespace ms
