// Plain-text persistence for corpora and synthesized mappings. The format is
// line-oriented TSV with `#table` section headers so a corpus round-trips
// through a single file; this stands in for the paper's 200GB extraction
// dumps at laptop scale.
#pragma once

#include <iosfwd>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "table/corpus.h"

namespace ms {

/// Serializes the corpus to a stream.
/// Format per table:
///   #table <domain> <source>
///   name1<TAB>name2...
///   cell<TAB>cell...
///   (blank line terminates the table)
Status WriteCorpusTsv(const TableCorpus& corpus, std::ostream& out);

/// Parses a corpus from a stream in the format produced by WriteCorpusTsv.
Status ReadCorpusTsv(std::istream& in, TableCorpus* corpus);

/// File-path conveniences. IO goes through `env` (nullptr = Env::Default())
/// so failures are injectable; IOError messages carry the path and errno.
Status SaveCorpus(const TableCorpus& corpus, const std::string& path,
                  Env* env = nullptr);
Status LoadCorpus(const std::string& path, TableCorpus* corpus,
                  Env* env = nullptr);

}  // namespace ms
