#include "text/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "text/myers.h"

namespace ms {

Status EditDistanceOptions::Validate() const {
  if (!std::isfinite(fractional) || fractional < 0.0 || fractional >= 1.0) {
    return Status::InvalidArgument(
        "edit.fractional (f_ed) must be a finite value in [0, 1), got " +
        std::to_string(fractional));
  }
  if (cap > 1u << 20) {
    return Status::InvalidArgument(
        "edit.cap (k_ed) of " + std::to_string(cap) +
        " exceeds any plausible cell length; likely a config typo");
  }
  return Status::OK();
}

size_t EditDistanceFull(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t EditDistanceBanded(std::string_view a, std::string_view b,
                          size_t band) {
  // Ensure |a| <= |b| (Algorithm 2 line 1-2).
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size(), m = b.size();
  if (m - n > band) return band + 1;  // length gap alone exceeds the band
  if (n == 0) return m;

  constexpr size_t kInf = static_cast<size_t>(-1) / 2;
  // Row-by-row DP restricted to j in [i-band, i+band].
  std::vector<size_t> prev(m + 1, kInf), cur(m + 1, kInf);
  const size_t init_hi = std::min(m, band);
  for (size_t j = 0; j <= init_hi; ++j) prev[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = (i > band) ? i - band : 0;
    const size_t hi = std::min(m, i + band);
    size_t row_min = kInf;
    // Cells outside [lo,hi] stay kInf in cur.
    if (lo > 0) {
      cur[lo - 1] = kInf;
    }
    for (size_t j = lo; j <= hi; ++j) {
      size_t best = kInf;
      if (j == 0) {
        best = i;
      } else {
        if (prev[j] != kInf) best = std::min(best, prev[j] + 1);
        if (cur[j - 1] != kInf) best = std::min(best, cur[j - 1] + 1);
        if (prev[j - 1] != kInf) {
          best = std::min(best, prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1));
        }
      }
      cur[j] = best;
      row_min = std::min(row_min, best);
    }
    if (hi + 1 <= m) cur[hi + 1] = kInf;
    if (row_min > band) return band + 1;  // whole band exceeded: early out
    std::swap(prev, cur);
  }
  return std::min(prev[m], band + 1);
}

size_t FractionalThreshold(std::string_view a, std::string_view b,
                           const EditDistanceOptions& opts) {
  const size_t ta = static_cast<size_t>(
      std::floor(static_cast<double>(a.size()) * opts.fractional));
  const size_t tb = static_cast<size_t>(
      std::floor(static_cast<double>(b.size()) * opts.fractional));
  return std::min({ta, tb, opts.cap});
}

bool ApproxMatch(std::string_view a, std::string_view b,
                 const EditDistanceOptions& opts) {
  if (a == b) return true;
  const size_t band = FractionalThreshold(a, b, opts);
  if (band == 0) return false;  // short strings require exact equality
  if (opts.use_bit_parallel) {
    const size_t gap =
        a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    if (gap > band) return false;  // length gap alone exceeds the band
    // Pattern = shorter side (fewer words for the blocked kernel). The
    // thread_local pattern keeps the blocked Peq table's heap allocation
    // out of the per-call cost; the bounded kernel keeps the banded DP's
    // early-out property.
    const std::string_view pat = a.size() <= b.size() ? a : b;
    const std::string_view txt = a.size() <= b.size() ? b : a;
    static thread_local MyersPattern pattern;
    BuildMyersPattern(pat, &pattern);
    return MyersDistanceBounded(pattern, txt, band) <= band;
  }
  return EditDistanceBanded(a, b, band) <= band;
}

}  // namespace ms
