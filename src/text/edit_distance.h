// Approximate string matching (paper Section 4.1 + Appendix B).
//
// The match predicate uses a *fractional* edit-distance threshold
//   θ_ed(v1, v2) = min{ ⌊|v1|·f_ed⌋, ⌊|v2|·f_ed⌋, k_ed }
// so short codes ("USA" vs "RSA") require exact equality while longer names
// tolerate small variations. The distance itself is computed with a banded
// dynamic program (Ukkonen-style, Algorithm 2) that only fills a diagonal
// band of width θ_ed, giving O(θ_ed · min(|v1|,|v2|)) time.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/status.h"

namespace ms {

/// Paper defaults: f_ed = 0.2, k_ed = 10.
struct EditDistanceOptions {
  double fractional = 0.2;  ///< f_ed
  size_t cap = 10;          ///< k_ed safeguard
  /// Runtime feature gate for the bit-parallel Myers kernels (text/myers.h).
  /// Both paths compute the exact distance, so flipping this never changes
  /// results — only speed. Off = the scalar banded DP below, kept as the
  /// oracle and fallback.
  bool use_bit_parallel = true;

  /// InvalidArgument when f_ed is not a finite value in [0, 1) — f_ed >= 1
  /// would declare every pair of equal-length strings a match — or the cap
  /// is absurdly large (bands beyond any cell value length are a config
  /// typo, not a threshold).
  Status Validate() const;

  bool operator==(const EditDistanceOptions&) const = default;
};

/// Full-matrix Levenshtein distance. O(|a|·|b|); reference implementation
/// used by tests to validate the banded version.
size_t EditDistanceFull(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance if it is <= band,
/// otherwise any value > band (early-exits). band may be 0 (exact match).
size_t EditDistanceBanded(std::string_view a, std::string_view b, size_t band);

/// The dynamic threshold θ_ed(v1, v2).
size_t FractionalThreshold(std::string_view a, std::string_view b,
                           const EditDistanceOptions& opts = {});

/// True when a and b approximately match under the fractional threshold
/// (Example 8: "American Samoa" ~ "American Samoa (US)" after
/// normalization).
bool ApproxMatch(std::string_view a, std::string_view b,
                 const EditDistanceOptions& opts = {});

}  // namespace ms
