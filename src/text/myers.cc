#include "text/myers.h"

#include <algorithm>
#include <cmath>

namespace ms {
namespace {

/// Single-word Myers core over a Peq lookup (byte -> mask). `m` in [1, 64].
/// Returns the exact distance if it is <= band, otherwise any value > band:
/// a column abandons once score - (remaining text bytes) > band, since the
/// score can drop by at most 1 per remaining byte. Pass band = SIZE_MAX for
/// the unbounded (always exact) distance.
template <typename PeqFn>
size_t Myers64Core(PeqFn&& peq, size_t m, std::string_view text,
                   size_t band) {
  uint64_t pv = ~0ull;
  uint64_t mv = 0;
  size_t score = m;
  const uint64_t last = 1ull << (m - 1);
  const size_t n = text.size();
  for (size_t j = 0; j < n; ++j) {
    const uint64_t eq = peq(static_cast<uint8_t>(text[j]));
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    if (score > band && score - band > n - j - 1) return band + 1;
    // Shift the horizontal deltas up one row; the boundary row D[0][j] = j
    // always carries a +1 horizontal delta into the low bit.
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

/// Blocked Myers core (Hyyrö's AdvanceBlock) over a Peq row lookup
/// (byte -> `words` consecutive masks): blocks stack bottom-up over the
/// pattern, the horizontal delta `h` ∈ {-1, 0, +1} carries across block
/// boundaries, and the score is tracked at the pattern's true last row
/// (bit (length-1) mod 64 of the top block). Unused high bits of the top
/// block are harmless: the carry chain in Xh only propagates upward and
/// their Peq bits are zero.
template <typename RowFn>
size_t MyersBlockedCore(RowFn&& row, size_t m, size_t words,
                        std::string_view text, size_t band, uint64_t* pv,
                        uint64_t* mv) {
  for (size_t b = 0; b < words; ++b) {
    pv[b] = ~0ull;
    mv[b] = 0;
  }
  size_t score = m;
  const uint64_t top_mask = 1ull << ((m - 1) & 63);
  const size_t n = text.size();
  for (size_t j = 0; j < n; ++j) {
    const uint64_t* peq = row(static_cast<uint8_t>(text[j]));
    int h = 1;  // boundary row delta entering the bottom block
    for (size_t b = 0; b < words; ++b) {
      const uint64_t eq = peq[b];
      const uint64_t pvb = pv[b];
      const uint64_t mvb = mv[b];
      const uint64_t xv = eq | mvb;
      const uint64_t eq_in = eq | (h < 0 ? 1ull : 0ull);
      const uint64_t xh = (((eq_in & pvb) + pvb) ^ pvb) | eq_in;
      uint64_t ph = mvb | ~(xh | pvb);
      uint64_t mh = pvb & xh;
      const uint64_t mask = (b + 1 == words) ? top_mask : (1ull << 63);
      int hout = 0;
      if (ph & mask) {
        hout = 1;
      } else if (mh & mask) {
        hout = -1;
      }
      ph <<= 1;
      mh <<= 1;
      if (h < 0) {
        mh |= 1;
      } else if (h > 0) {
        ph |= 1;
      }
      pv[b] = mh | ~(xv | ph);
      mv[b] = ph & xv;
      h = hout;
    }
    score = static_cast<size_t>(static_cast<int64_t>(score) + h);
    if (score > band && score - band > n - j - 1) return band + 1;
  }
  return score;
}

constexpr size_t kStackWords = 8;  // patterns ≤ 512 bytes stay off the heap

}  // namespace

void BuildMyersPattern(std::string_view pattern, MyersPattern* out) {
  out->length = static_cast<uint32_t>(pattern.size());
  out->slot.fill(0);
  out->masks.clear();
  if (pattern.empty()) {
    out->words = 0;
    return;
  }
  out->words = static_cast<uint32_t>((pattern.size() + 63) / 64);
  const size_t words = out->words;
  // Row 0 is the shared all-zero row; every distinct pattern byte gets its
  // own row, assigned in first-sight order. At most min(|pattern|, 256)
  // rows, so uint16 row indices never overflow. Two passes so the mask
  // array is allocated exactly once at its final size.
  uint16_t next_row = 1;
  for (const char ch : pattern) {
    uint16_t& s = out->slot[static_cast<uint8_t>(ch)];
    if (s == 0) s = next_row++;
  }
  out->masks.assign(static_cast<size_t>(next_row) * words, 0);
  for (size_t i = 0; i < pattern.size(); ++i) {
    const uint8_t c = static_cast<uint8_t>(pattern[i]);
    out->masks[static_cast<size_t>(out->slot[c]) * words + i / 64] |=
        1ull << (i & 63);
  }
}

namespace {

size_t MyersDistanceImpl(const MyersPattern& pattern, std::string_view text,
                         size_t band) {
  if (pattern.length == 0) return text.size();
  if (text.empty()) return pattern.length;
  if (pattern.single_word()) {
    return Myers64Core([&](uint8_t c) { return pattern.Mask1(c); },
                       pattern.length, text, band);
  }
  auto row = [&](uint8_t c) { return pattern.Row(c); };
  uint64_t stack_pv[kStackWords], stack_mv[kStackWords];
  if (pattern.words <= kStackWords) {
    return MyersBlockedCore(row, pattern.length, pattern.words, text, band,
                            stack_pv, stack_mv);
  }
  std::vector<uint64_t> pv(pattern.words), mv(pattern.words);
  return MyersBlockedCore(row, pattern.length, pattern.words, text, band,
                          pv.data(), mv.data());
}

}  // namespace

size_t MyersDistance(const MyersPattern& pattern, std::string_view text) {
  return MyersDistanceImpl(pattern, text, static_cast<size_t>(-1));
}

size_t MyersDistanceBounded(const MyersPattern& pattern,
                            std::string_view text, size_t band) {
  const size_t m = pattern.length;
  const size_t n = text.size();
  const size_t gap = m > n ? m - n : n - m;
  if (gap > band) return band + 1;
  return MyersDistanceImpl(pattern, text, band);
}

size_t Myers64(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return text.size();
  if (text.empty()) return pattern.size();
  // One-shot path: a dense stack table beats building the sparse layout.
  std::array<uint64_t, 256> peq{};
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<uint8_t>(pattern[i])] |= 1ull << i;
  }
  return Myers64Core([&](uint8_t c) { return peq[c]; }, pattern.size(), text,
                     static_cast<size_t>(-1));
}

size_t MyersBlocked(std::string_view pattern, std::string_view text) {
  MyersPattern p;
  BuildMyersPattern(pattern, &p);
  return MyersDistance(p, text);
}

bool BatchApproxMatcher::Match(ValueId a, ValueId b) {
  ++stats_.match_calls;
  if (a == b) return true;
  if (AreSynonymsVia(snapshot_, synonyms_, a, b)) return true;
  if (!approximate_) return false;
  // Capacity check up front so a flush can never invalidate a ValueInfo
  // reference mid-pair (InfoFor itself never flushes).
  if (max_cached_values_ != 0 && infos_.size() + 2 > max_cached_values_) {
    FlushCache();
  }
  // Pattern side first so the MRU entry survives the text-side lookup.
  ValueInfo* ia;
  if (a == mru_pattern_id_) {
    ia = mru_pattern_;
  } else {
    ia = &InfoFor(a);
    mru_pattern_id_ = a;
    mru_pattern_ = ia;
  }
  ValueInfo& ib = InfoFor(b);
  // FractionalThreshold with the ⌊len · f_ed⌋ components precomputed.
  const size_t band = std::min({ia->frac_floor, ib.frac_floor, edit_.cap});
  if (band == 0) return false;  // interning: a != b implies texts differ
  const std::string_view sa = ia->text;
  const std::string_view sb = ib.text;
  const size_t gap =
      sa.size() > sb.size() ? sa.size() - sb.size() : sb.size() - sa.size();
  if (gap > band) return false;  // length gap alone exceeds the threshold
  if (!edit_.use_bit_parallel) {
    ++stats_.banded_calls;
    return EditDistanceBanded(sa, sb, band) <= band;
  }
  // Byte-class presence lower bound (see ValueInfo::char_mask): cheap
  // popcounts reject most non-matches before touching a kernel.
  const uint64_t only_a = ia->char_mask & ~ib.char_mask;
  const uint64_t only_b = ib.char_mask & ~ia->char_mask;
  const size_t lb = std::max(
      static_cast<size_t>(__builtin_popcountll(only_a)),
      static_cast<size_t>(__builtin_popcountll(only_b)));
  if (lb > band) {
    ++stats_.charmask_rejects;
    return false;
  }
  const MyersPattern& p = PatternFor(*ia);
  if (p.single_word()) {
    ++stats_.myers64_calls;
  } else {
    ++stats_.myers_blocked_calls;
  }
  return MyersDistanceBounded(p, sb, band) <= band;
}

void BatchApproxMatcher::Reconfigure(const EditDistanceOptions& edit,
                                     bool approximate_matching,
                                     const SynonymDictionary* synonyms,
                                     const SynonymSnapshot* synonym_snapshot) {
  // frac_floor is the only cached value-state derived from the
  // configuration; everything else (text views, charmasks, pattern masks)
  // depends solely on the pool contents, which are append-only.
  if (edit.fractional != edit_.fractional) FlushCache();
  edit_ = edit;
  approximate_ = approximate_matching;
  synonyms_ = synonyms;
  snapshot_ = synonym_snapshot;
}

void BatchApproxMatcher::FlushCache() {
  index_.Clear();
  infos_.clear();
  cache_bytes_ = 0;
  mru_pattern_id_ = kInvalidValueId;
  mru_pattern_ = nullptr;
  ++stats_.cache_flushes;
}

BatchApproxMatcher::ValueInfo& BatchApproxMatcher::InfoFor(ValueId id) {
  uint32_t& slot = index_[static_cast<uint64_t>(id) + 1];
  if (slot != 0) return infos_[slot - 1];
  infos_.emplace_back();
  ValueInfo& vi = infos_.back();
  vi.text = pool_.Get(id);
  vi.frac_floor = static_cast<size_t>(
      std::floor(static_cast<double>(vi.text.size()) * edit_.fractional));
  for (const char c : vi.text) {
    vi.char_mask |= 1ull << (static_cast<uint8_t>(c) & 63);
  }
  cache_bytes_ += sizeof(ValueInfo);
  slot = static_cast<uint32_t>(infos_.size());
  return vi;
}

const MyersPattern& BatchApproxMatcher::PatternFor(ValueInfo& info) {
  if (info.pattern) {
    ++stats_.pattern_cache_hits;
    return *info.pattern;
  }
  ++stats_.pattern_cache_misses;
  info.pattern = std::make_unique<MyersPattern>();
  BuildMyersPattern(info.text, info.pattern.get());
  cache_bytes_ += sizeof(MyersPattern) + info.pattern->MaskBytes();
  return *info.pattern;
}

}  // namespace ms
