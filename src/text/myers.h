// Bit-parallel approximate string matching (Myers 1999, Hyyrö 2003).
//
// The scalar banded DP in edit_distance.cc costs O(θ_ed · n) cell updates
// plus two heap allocations per call; on the pair-scoring hot path (the
// pipeline's dominant stage) that is the inner loop of the whole system.
// Myers' algorithm encodes a full DP column in two machine words (the
// positive/negative vertical delta bit vectors) and advances one text
// character with ~15 word operations, independent of the threshold:
//
//   - `Myers64` — single-word kernel for patterns ≤ 64 bytes (the
//     overwhelming corpus case after cell normalization).
//   - `MyersBlocked` — unbounded-length variant that stacks ⌈m/64⌉ words
//     and carries the horizontal delta across block boundaries
//     (Hyyrö's AdvanceBlock formulation).
//   - `MyersPattern` — the per-pattern bitmask table (Peq), precomputable
//     once and reused across every comparison against that pattern. Stored
//     sparsely: a pattern touches at most |pattern| distinct byte values,
//     so instead of a dense 256 × words mask table (2KB per cached single-
//     word pattern) it keeps one mask row per distinct byte plus a 256-entry
//     row index — ~4x smaller for typical short cell values, which is what
//     long-lived session matchers hoard.
//   - `BatchApproxMatcher` — the batch interface pair scoring uses: it
//     caches `MyersPattern`s per interned ValueId so scoring one left value
//     against many right values builds the mask table exactly once, and it
//     mirrors the `ValuesMatch` predicate (exact / synonym / approximate)
//     bit for bit.
//
// Both kernels return the exact Levenshtein distance (they are not
// band-limited approximations), so they agree with `EditDistanceFull`
// everywhere and with `EditDistanceBanded` whenever the distance fits the
// band — the property the differential tests in tests/text_test.cc enforce.
// The scalar banded DP remains the runtime fallback behind
// `EditDistanceOptions::use_bit_parallel`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "table/string_pool.h"
#include "text/edit_distance.h"
#include "text/synonyms.h"

namespace ms {

/// Precomputed pattern state: the Peq bitmask table keyed by byte value,
/// stored sparsely. `slot[c]` indexes the mask row for byte c; row 0 is a
/// shared all-zero row for bytes absent from the pattern, so lookups never
/// branch. Row r occupies masks[r * words .. r * words + words).
struct MyersPattern {
  uint32_t length = 0;
  uint32_t words = 0;  ///< ⌈length/64⌉ (0 for the empty pattern)
  std::array<uint16_t, 256> slot{};  ///< byte -> mask row (0 = absent)
  std::vector<uint64_t> masks;       ///< (1 + distinct bytes) × words rows

  bool single_word() const { return length <= 64; }

  /// Single-word mask for byte c (valid when words == 1).
  uint64_t Mask1(uint8_t c) const { return masks[slot[c]]; }

  /// Blocked mask row for byte c (`words` consecutive entries).
  const uint64_t* Row(uint8_t c) const {
    return masks.data() + static_cast<size_t>(slot[c]) * words;
  }

  /// Heap footprint of the mask table (the quantity the sparse layout
  /// shrinks versus the former dense 256-entry table).
  size_t MaskBytes() const { return masks.capacity() * sizeof(uint64_t); }
};

/// Builds (or rebuilds) the bitmask table for `pattern` into `*out`.
void BuildMyersPattern(std::string_view pattern, MyersPattern* out);

/// Exact Levenshtein distance between the prebuilt pattern and `text`.
/// O(⌈m/64⌉ · |text|) word operations, no heap allocation for m ≤ 512.
size_t MyersDistance(const MyersPattern& pattern, std::string_view text);

/// Band-limited variant with the same contract as EditDistanceBanded:
/// returns the exact distance when it is <= band, otherwise band + 1. The
/// kernel abandons a column early once even the best possible remaining
/// run of matches (one score decrement per leftover text byte) cannot pull
/// the score back under the band — the bit-parallel analogue of the banded
/// DP's row_min early-out.
size_t MyersDistanceBounded(const MyersPattern& pattern,
                            std::string_view text, size_t band);

/// One-shot single-word kernel. Requires pattern.size() <= 64.
size_t Myers64(std::string_view pattern, std::string_view text);

/// One-shot blocked kernel; any lengths (single-word internally when the
/// pattern fits one word, so Myers64 == MyersBlocked on shared inputs).
size_t MyersBlocked(std::string_view pattern, std::string_view text);

/// Counters for the batch matcher; aggregated per scoring chunk into
/// PipelineStats so the fast-path mix is observable.
struct MatcherStats {
  size_t match_calls = 0;          ///< Match() invocations
  size_t myers64_calls = 0;        ///< single-word kernel runs
  size_t myers_blocked_calls = 0;  ///< multi-word kernel runs
  size_t banded_calls = 0;         ///< scalar fallback runs (gate off)
  size_t pattern_cache_hits = 0;   ///< mask tables reused
  size_t pattern_cache_misses = 0; ///< mask tables built
  size_t charmask_rejects = 0;     ///< pairs rejected before any kernel run
  size_t cache_flushes = 0;        ///< value-cache resets (capacity cap hit)

  void Add(const MatcherStats& o) {
    match_calls += o.match_calls;
    myers64_calls += o.myers64_calls;
    myers_blocked_calls += o.myers_blocked_calls;
    banded_calls += o.banded_calls;
    pattern_cache_hits += o.pattern_cache_hits;
    pattern_cache_misses += o.pattern_cache_misses;
    charmask_rejects += o.charmask_rejects;
    cache_flushes += o.cache_flushes;
  }
};

/// Scores one pattern value against many candidate values without
/// recomputing its bitmasks: `Match(a, b)` treats `a` as the (cached)
/// pattern side and must return exactly what `ValuesMatch(a, b, pool, opts)`
/// returns for the configuration it was built from. One matcher serves one
/// scoring run; value strings repeat heavily across neighbouring tables, so
/// the per-id cache amortizes mask builds across the whole candidate loop.
///
/// Beyond the pattern masks, the matcher interns per-value state once per
/// first sight: the pool string_view (stable — StringPool stores strings in
/// a deque and never moves them — so this skips the pool's per-Get mutex)
/// and the precomputed ⌊len · f_ed⌋ threshold component. A Match call after
/// warm-up touches no locks and allocates nothing.
///
/// Long-lived matchers (SynthesisSession keeps one per worker across runs)
/// can bound the cache with `max_cached_values`: when the cap is exceeded
/// the whole cache is flushed (counted in MatcherStats::cache_flushes).
/// Cache contents never affect results, only speed, so flushing is always
/// safe.
class BatchApproxMatcher {
 public:
  BatchApproxMatcher(const StringPool& pool, const EditDistanceOptions& edit,
                     bool approximate_matching,
                     const SynonymDictionary* synonyms,
                     const SynonymSnapshot* synonym_snapshot = nullptr,
                     size_t max_cached_values = 0)
      : pool_(pool),
        edit_(edit),
        approximate_(approximate_matching),
        synonyms_(synonyms),
        snapshot_(synonym_snapshot),
        max_cached_values_(max_cached_values) {}

  BatchApproxMatcher(const BatchApproxMatcher&) = delete;
  BatchApproxMatcher& operator=(const BatchApproxMatcher&) = delete;

  /// The ValuesMatch predicate: exact id equality, then synonyms (through
  /// the snapshot when one is set — lock-free — otherwise the dictionary),
  /// then the fractional-threshold approximate match with `a` as the
  /// pattern side.
  bool Match(ValueId a, ValueId b);

  /// Re-points the matcher at a new matching configuration while keeping
  /// as much warm state as validity allows: the per-value cache (texts,
  /// charmasks, ⌊len·f_ed⌋ floors, pattern masks) survives whenever
  /// `edit.fractional` is unchanged — none of it depends on any other
  /// option — and is flushed otherwise. This is what lets a session re-run
  /// scoring under tweaked thresholds without rebuilding a single mask.
  void Reconfigure(const EditDistanceOptions& edit, bool approximate_matching,
                   const SynonymDictionary* synonyms,
                   const SynonymSnapshot* synonym_snapshot);

  const MatcherStats& stats() const { return stats_; }

  /// Clears the counters (not the cache); sessions call this per run so
  /// per-run stats stay attributable.
  void ResetStats() { stats_ = MatcherStats{}; }

  /// Heap footprint of the value cache (mask rows dominate).
  size_t cache_bytes() const { return cache_bytes_; }
  size_t cached_values() const { return infos_.size(); }

  /// The pool this matcher resolves ids against; callers handing the
  /// matcher around assert it matches theirs.
  const StringPool& pool() const { return pool_; }

 private:
  struct ValueInfo {
    std::string_view text;   ///< stable view into the pool
    size_t frac_floor = 0;   ///< ⌊|text| · f_ed⌋
    /// Presence bitmap of the text's bytes folded to 64 bits. For any two
    /// values, max over both directions of popcount(mine & ~theirs) lower-
    /// bounds the edit distance (every occurrence of a byte class present
    /// on one side only must be touched by an edit), so a popcount pair
    /// rejects most non-matching candidates before any kernel runs.
    /// Folding collisions only weaken the bound, never break it.
    uint64_t char_mask = 0;
    std::unique_ptr<MyersPattern> pattern;  ///< built on first pattern use
  };

  ValueInfo& InfoFor(ValueId id);
  const MyersPattern& PatternFor(ValueInfo& info);
  void FlushCache();

  const StringPool& pool_;
  EditDistanceOptions edit_;
  bool approximate_;
  const SynonymDictionary* synonyms_;
  const SynonymSnapshot* snapshot_;
  size_t max_cached_values_;
  FlatMap64<uint32_t> index_;  ///< id+1 -> infos_ slot + 1 (0 = absent)
  std::deque<ValueInfo> infos_;
  size_t cache_bytes_ = 0;
  /// One-entry MRU for the pattern side: inner scoring loops hold one left
  /// value against many right values, so this usually skips even the flat
  /// hash probe.
  ValueId mru_pattern_id_ = kInvalidValueId;
  ValueInfo* mru_pattern_ = nullptr;
  MatcherStats stats_;
};

}  // namespace ms
