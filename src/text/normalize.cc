#include "text/normalize.h"

#include <cctype>

namespace ms {
namespace {

bool IsPunct(char c) {
  switch (c) {
    case ',':
    case '.':
    case '(':
    case ')':
    case '\'':
    case '"':
    case '!':
    case '?':
    case ':':
    case ';':
    case '[':
    case ']':
    case '{':
    case '}':
      return true;
    default:
      return false;
  }
}

// Removes trailing footnote markers: "...Samoa[1]", "...Samoa (2)".
std::string StripFootnotes(std::string_view s) {
  std::string out(s);
  for (;;) {
    // trim trailing spaces first
    while (!out.empty() && out.back() == ' ') out.pop_back();
    if (out.size() >= 3 && out.back() == ']') {
      size_t open = out.rfind('[');
      if (open != std::string::npos && open + 1 < out.size() - 1) {
        bool digits = true;
        for (size_t i = open + 1; i + 1 < out.size(); ++i) {
          if (!std::isdigit(static_cast<unsigned char>(out[i]))) {
            digits = false;
            break;
          }
        }
        if (digits) {
          out.erase(open);
          continue;
        }
      }
    }
    break;
  }
  return out;
}

}  // namespace

std::string NormalizeCell(std::string_view raw, const NormalizeOptions& opts) {
  std::string s = opts.strip_footnote_marks ? StripFootnotes(raw)
                                            : std::string(raw);
  std::string out;
  out.reserve(s.size());
  bool last_space = true;  // also trims leading whitespace
  for (char c : s) {
    if (opts.strip_punctuation && IsPunct(c)) continue;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (opts.collapse_whitespace) {
        if (!last_space) {
          out.push_back(' ');
          last_space = true;
        }
      } else {
        out.push_back(c);
        last_space = true;
      }
      continue;
    }
    out.push_back(opts.lowercase
                      ? static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c)))
                      : c);
    last_space = false;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool LooksNumeric(std::string_view v) {
  if (v.empty()) return false;
  size_t digits = 0, other = 0;
  for (char c : v) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c == '.' || c == ',' || c == '-' || c == '+' || c == '%' ||
               c == '$' || c == ' ') {
      // numeric furniture
    } else {
      ++other;
    }
  }
  return digits > 0 && other == 0;
}

bool LooksTemporal(std::string_view v) {
  if (v.size() == 4) {
    // plain year 1000-2999
    bool all = true;
    for (char c : v) all = all && std::isdigit(static_cast<unsigned char>(c));
    if (all && (v[0] == '1' || v[0] == '2')) return true;
  }
  // date-ish: digits separated by - or /
  size_t digits = 0, seps = 0, other = 0;
  for (char c : v) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c == '-' || c == '/' || c == ':') {
      ++seps;
    } else {
      ++other;
    }
  }
  return digits >= 3 && seps >= 1 && other == 0;
}

}  // namespace ms
