// Cell-value normalization applied before matching. The paper notes real
// cells carry extraneous artifacts — footnote marks like "[1]", punctuation,
// case differences — that artificially reduce positive compatibility
// (Section 4.1, "Approximate String Matching"). Normalization strips the
// cheap-to-remove artifacts; the banded edit distance absorbs the rest.
#pragma once

#include <string>
#include <string_view>

namespace ms {

struct NormalizeOptions {
  bool lowercase = true;
  bool strip_punctuation = true;      ///< drop ,.()'"!?: etc (keeps &-/)
  bool collapse_whitespace = true;    ///< runs of spaces -> one space
  bool strip_footnote_marks = true;   ///< remove trailing "[12]" / "(1)" marks

  bool operator==(const NormalizeOptions&) const = default;
};

/// Returns the normalized form of a raw cell value.
std::string NormalizeCell(std::string_view raw,
                          const NormalizeOptions& opts = {});

/// True if the value looks numeric (integer/decimal/percent/currency-ish).
/// Used by curation filtering ("additional filtering can be performed to
/// further prune out numeric and temporal relationships", Section 4.3).
bool LooksNumeric(std::string_view v);

/// True if the value looks like a date/time or a year.
bool LooksTemporal(std::string_view v);

}  // namespace ms
