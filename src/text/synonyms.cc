#include "text/synonyms.h"

#include <unordered_set>

namespace ms {

ValueId SynonymDictionary::Find(ValueId v) const {
  auto it = parent_.find(v);
  if (it == parent_.end() || it->second == v) return v;  // root
  // Path compression.
  ValueId root = Find(it->second);
  if (root != it->second) parent_[v] = root;
  return root;
}

void SynonymDictionary::AddSynonym(std::string_view a, std::string_view b) {
  ValueId ia = pool_->Intern(a);
  ValueId ib = pool_->Intern(b);
  ValueId ra = Find(ia);
  ValueId rb = Find(ib);
  if (ra == rb) return;
  parent_[rb] = ra;
  // Ensure both leaves are present so ClassMembers can enumerate them.
  if (!parent_.count(ia)) parent_[ia] = ra;
  if (!parent_.count(ib)) parent_[ib] = ra;
  if (!parent_.count(ra)) parent_[ra] = ra;
}

bool SynonymDictionary::AreSynonyms(ValueId a, ValueId b) const {
  if (a == b) return true;
  return Find(a) == Find(b);
}

bool SynonymDictionary::AreSynonyms(std::string_view a,
                                    std::string_view b) const {
  if (a == b) return true;
  ValueId ia = pool_->Find(a);
  ValueId ib = pool_->Find(b);
  if (ia == kInvalidValueId || ib == kInvalidValueId) return false;
  return AreSynonyms(ia, ib);
}

ValueId SynonymDictionary::ClassOf(ValueId v) const { return Find(v); }

std::vector<ValueId> SynonymDictionary::ClassMembers(ValueId v) const {
  ValueId root = Find(v);
  std::vector<ValueId> out;
  for (const auto& [child, _] : parent_) {
    if (Find(child) == root) out.push_back(child);
  }
  if (out.empty()) out.push_back(v);
  return out;
}

size_t SynonymDictionary::num_classes_with_synonyms() const {
  std::unordered_set<ValueId> roots;
  for (const auto& [child, _] : parent_) roots.insert(Find(child));
  return roots.size();
}

}  // namespace ms
