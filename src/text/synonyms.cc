#include "text/synonyms.h"

#include <unordered_set>

namespace ms {

ValueId SynonymDictionary::FindLocked(ValueId v) const {
  auto it = parent_.find(v);
  if (it == parent_.end() || it->second == v) return v;  // root
  // Path compression.
  ValueId root = FindLocked(it->second);
  if (root != it->second) parent_[v] = root;
  return root;
}

void SynonymDictionary::AddSynonym(std::string_view a, std::string_view b) {
  ValueId ia = pool_->Intern(a);
  ValueId ib = pool_->Intern(b);
  std::lock_guard<std::mutex> lock(mu_);
  ValueId ra = FindLocked(ia);
  ValueId rb = FindLocked(ib);
  if (ra == rb) return;
  parent_[rb] = ra;
  // Ensure both leaves are present so ClassMembers can enumerate them.
  if (!parent_.count(ia)) parent_[ia] = ra;
  if (!parent_.count(ib)) parent_[ib] = ra;
  if (!parent_.count(ra)) parent_[ra] = ra;
  ++version_;
}

bool SynonymDictionary::AreSynonyms(ValueId a, ValueId b) const {
  if (a == b) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(a) == FindLocked(b);
}

bool SynonymDictionary::AreSynonyms(std::string_view a,
                                    std::string_view b) const {
  if (a == b) return true;
  ValueId ia = pool_->Find(a);
  ValueId ib = pool_->Find(b);
  if (ia == kInvalidValueId || ib == kInvalidValueId) return false;
  return AreSynonyms(ia, ib);
}

ValueId SynonymDictionary::ClassOf(ValueId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLocked(v);
}

std::vector<ValueId> SynonymDictionary::ClassMembers(ValueId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  ValueId root = FindLocked(v);
  std::vector<ValueId> out;
  for (const auto& [child, _] : parent_) {
    if (FindLocked(child) == root) out.push_back(child);
  }
  if (out.empty()) out.push_back(v);
  return out;
}

size_t SynonymDictionary::num_classes_with_synonyms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<ValueId> roots;
  for (const auto& [child, _] : parent_) roots.insert(FindLocked(child));
  return roots.size();
}

uint64_t SynonymDictionary::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

SynonymSnapshot SynonymDictionary::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SynonymSnapshot snap;
  snap.source_version_ = version_;
  snap.class_of_.Reserve(parent_.size());
  for (const auto& [child, _] : parent_) {
    snap.class_of_[static_cast<uint64_t>(child) + 1] = FindLocked(child);
  }
  return snap;
}

}  // namespace ms
