// Synonym dictionary (paper Section 4.1 "Synonyms" + Section 4.2 conflict
// definition). When an external feed declares two strings synonymous, they
// (a) count as a positive match when computing w+, and (b) are *not*
// treated as conflicting right-hand sides when computing w- / F(B,B').
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "table/string_pool.h"

namespace ms {

/// Union-find over interned values: synonymous values share a class id.
class SynonymDictionary {
 public:
  explicit SynonymDictionary(std::shared_ptr<StringPool> pool)
      : pool_(std::move(pool)) {}

  /// Declares a and b synonyms (strings are interned if new).
  void AddSynonym(std::string_view a, std::string_view b);

  /// True if the two values are known synonyms (or equal).
  bool AreSynonyms(ValueId a, ValueId b) const;
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Canonical class representative for a value (itself if no synonyms).
  ValueId ClassOf(ValueId v) const;

  /// All members of v's synonym class, including v.
  std::vector<ValueId> ClassMembers(ValueId v) const;

  size_t num_classes_with_synonyms() const;

 private:
  ValueId Find(ValueId v) const;

  std::shared_ptr<StringPool> pool_;
  // Parent pointers; values absent from the map are their own class.
  mutable std::unordered_map<ValueId, ValueId> parent_;
};

}  // namespace ms
