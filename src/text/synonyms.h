// Synonym dictionary (paper Section 4.1 "Synonyms" + Section 4.2 conflict
// definition). When an external feed declares two strings synonymous, they
// (a) count as a positive match when computing w+, and (b) are *not*
// treated as conflicting right-hand sides when computing w- / F(B,B').
//
// The dictionary is a mutable union-find guarded by a mutex (AddSynonym can
// race with lookups, and even const lookups path-compress). That makes
// every AreSynonyms call on the pair-scoring hot path a lock + hash probe.
// `SynonymSnapshot` is the scoring-time answer: an immutable, fully
// flattened value -> class-id view taken once per scoring run. Lookups are
// two lock-free flat-hash probes and the snapshot records the dictionary
// version it was taken at, so long-lived sessions know when to refresh.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.h"
#include "table/string_pool.h"

namespace ms {

class SynonymDictionary;

/// Immutable flattened view of a SynonymDictionary: every value that has a
/// synonym maps to its class root; values absent from the map are their own
/// class. Safe to share across threads without locking; results are
/// identical to the dictionary's as of the version it was taken at.
class SynonymSnapshot {
 public:
  /// Empty snapshot: AreSynonyms(a, b) == (a == b).
  SynonymSnapshot() = default;

  /// True if the two values were known synonyms (or are equal).
  bool AreSynonyms(ValueId a, ValueId b) const {
    if (a == b) return true;
    const ValueId* ra = class_of_.Find(static_cast<uint64_t>(a) + 1);
    if (ra == nullptr) return false;  // a is its own class, b != a
    const ValueId* rb = class_of_.Find(static_cast<uint64_t>(b) + 1);
    return rb != nullptr && *ra == *rb;
  }

  /// Number of values with at least one synonym.
  size_t size() const { return class_of_.size(); }

  /// Dictionary version this snapshot reflects (0 for the empty snapshot).
  uint64_t source_version() const { return source_version_; }

 private:
  friend class SynonymDictionary;

  FlatMap64<ValueId> class_of_;  ///< (value id + 1) -> class root
  uint64_t source_version_ = 0;
};

/// Union-find over interned values: synonymous values share a class id.
/// All methods are thread-safe (one mutex); hot paths should go through a
/// SynonymSnapshot instead.
class SynonymDictionary {
 public:
  explicit SynonymDictionary(std::shared_ptr<StringPool> pool)
      : pool_(std::move(pool)) {}

  /// Declares a and b synonyms (strings are interned if new).
  void AddSynonym(std::string_view a, std::string_view b);

  /// True if the two values are known synonyms (or equal).
  bool AreSynonyms(ValueId a, ValueId b) const;
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Canonical class representative for a value (itself if no synonyms).
  ValueId ClassOf(ValueId v) const;

  /// All members of v's synonym class, including v.
  std::vector<ValueId> ClassMembers(ValueId v) const;

  size_t num_classes_with_synonyms() const;

  /// Monotonic mutation counter: bumped by every AddSynonym that changes
  /// the dictionary. Snapshot holders compare against it to decide whether
  /// their snapshot is stale.
  uint64_t version() const;

  /// Takes an immutable flattened view of the current state.
  SynonymSnapshot Snapshot() const;

 private:
  ValueId FindLocked(ValueId v) const;

  std::shared_ptr<StringPool> pool_;
  mutable std::mutex mu_;
  // Parent pointers; values absent from the map are their own class.
  mutable std::unordered_map<ValueId, ValueId> parent_;
  uint64_t version_ = 0;
};

/// The synonym check every matching path shares: the snapshot (lock-free)
/// when one is wired in, otherwise the dictionary, otherwise no synonyms.
/// Centralized so precedence can never diverge between scoring, conflict
/// resolution, and the batch matcher.
inline bool AreSynonymsVia(const SynonymSnapshot* snapshot,
                           const SynonymDictionary* dict, ValueId a,
                           ValueId b) {
  if (snapshot != nullptr) return snapshot->AreSynonyms(a, b);
  return dict != nullptr && dict->AreSynonyms(a, b);
}

}  // namespace ms
