// Tests for the application layer: the indexed MappingStore and the three
// scenarios from the paper's introduction — auto-correct (Table 3),
// auto-fill (Table 4), auto-join (Table 5).
#include <memory>

#include <gtest/gtest.h>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "apps/mapping_store.h"

namespace ms {
namespace {

class AppsFixture : public ::testing::Test {
 protected:
  AppsFixture()
      : pool_(std::make_shared<StringPool>()), store_(pool_) {}

  SynthesizedMapping MakeMapping(
      const std::vector<std::pair<std::string, std::string>>& rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    SynthesizedMapping m;
    m.merged = BinaryTable::FromPairs(std::move(pairs));
    return m;
  }

  void SetUp() override {
    // state -> abbreviation (Table 1c).
    states_ = store_.Add(MakeMapping({{"california", "ca"},
                                      {"washington", "wa"},
                                      {"oregon", "or"},
                                      {"texas", "tx"},
                                      {"colorado", "co"}}),
                         "state_abbrev");
    // city -> state (Table 2b).
    cities_ = store_.Add(MakeMapping({{"san francisco", "california"},
                                      {"seattle", "washington"},
                                      {"los angeles", "california"},
                                      {"houston", "texas"},
                                      {"denver", "colorado"}}),
                         "city_state");
    // company -> ticker (Table 1b, both directions usable).
    tickers_ = store_.Add(MakeMapping({{"microsoft corp", "msft"},
                                       {"oracle", "orcl"},
                                       {"general electric", "ge"},
                                       {"walmart", "wmt"},
                                       {"at&t inc", "t"}}),
                          "company_ticker");
  }

  std::shared_ptr<StringPool> pool_;
  MappingStore store_;
  size_t states_ = 0, cities_ = 0, tickers_ = 0;
};

// ------------------------------------------------------------ MappingStore

TEST_F(AppsFixture, ProbeFindsSides) {
  EXPECT_EQ(store_.Probe(states_, "California"), ValueSide::kLeft);
  EXPECT_EQ(store_.Probe(states_, "CA"), ValueSide::kRight);
  EXPECT_EQ(store_.Probe(states_, "nonsense"), ValueSide::kNone);
}

TEST_F(AppsFixture, ProbeNormalizesInput) {
  EXPECT_EQ(store_.Probe(states_, "  California[1] "), ValueSide::kLeft);
}

TEST_F(AppsFixture, LookupBothDirections) {
  EXPECT_EQ(store_.LookupRight(states_, "Washington").value(), "wa");
  EXPECT_EQ(store_.LookupLeft(states_, "WA").value(), "washington");
  EXPECT_FALSE(store_.LookupRight(states_, "narnia").has_value());
}

TEST_F(AppsFixture, ContainmentRanksTheRightMapping) {
  std::vector<std::string> column = {"San Francisco", "Seattle", "Houston"};
  auto matches = store_.FindByContainment(column, 2);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].index, cities_);
  EXPECT_EQ(matches[0].left_hits, 3u);
}

TEST_F(AppsFixture, ContainmentMinHitsFilters) {
  std::vector<std::string> column = {"San Francisco", "unrelated"};
  EXPECT_TRUE(store_.FindByContainment(column, 2).empty());
  EXPECT_FALSE(store_.FindByContainment(column, 1).empty());
}

TEST_F(AppsFixture, StoreMetadataAccessors) {
  EXPECT_EQ(store_.size(), 3u);
  EXPECT_EQ(store_.name(states_), "state_abbrev");
  EXPECT_EQ(store_.mapping(states_).size(), 5u);
}

// ------------------------------------------------------------- AutoCorrect

TEST_F(AppsFixture, Table3AutoCorrection) {
  // The paper's Table 3: full state names mixed with abbreviations.
  std::vector<std::string> column = {"California", "Washington", "Oregon",
                                     "CA", "WA"};
  auto result = SuggestCorrections(store_, column);
  ASSERT_TRUE(result.inconsistency_detected);
  EXPECT_EQ(result.mapping_index, static_cast<int>(states_));
  ASSERT_EQ(result.suggestions.size(), 2u);
  EXPECT_EQ(result.suggestions[0].row, 3u);
  EXPECT_EQ(result.suggestions[0].original, "CA");
  EXPECT_EQ(result.suggestions[0].suggestion, "california");
  EXPECT_EQ(result.suggestions[1].suggestion, "washington");
}

TEST_F(AppsFixture, ConsistentColumnNeedsNoCorrection) {
  std::vector<std::string> column = {"California", "Washington", "Oregon"};
  auto result = SuggestCorrections(store_, column);
  EXPECT_FALSE(result.inconsistency_detected);
  EXPECT_TRUE(result.suggestions.empty());
}

TEST_F(AppsFixture, MinorityAbbrevColumnCorrectsToAbbrev) {
  // Majority abbreviations: the full names should be rewritten instead.
  std::vector<std::string> column = {"CA", "WA", "OR", "TX", "Colorado"};
  auto result = SuggestCorrections(store_, column);
  ASSERT_TRUE(result.inconsistency_detected);
  ASSERT_EQ(result.suggestions.size(), 1u);
  EXPECT_EQ(result.suggestions[0].suggestion, "co");
}

TEST_F(AppsFixture, UnknownColumnIsLeftAlone) {
  std::vector<std::string> column = {"aardvark", "zebra", "yak"};
  auto result = SuggestCorrections(store_, column);
  EXPECT_EQ(result.mapping_index, -1);
}

// ---------------------------------------------------------------- AutoFill

TEST_F(AppsFixture, Table4AutoFill) {
  // The paper's Table 4: one example (San Francisco -> California) reveals
  // the intent; the rest fills from the city->state mapping.
  std::vector<std::string> keys = {"San Francisco", "Seattle", "Los Angeles",
                                   "Houston", "Denver"};
  auto result = AutoFill(store_, keys, {{0, "California"}});
  ASSERT_EQ(result.mapping_index, static_cast<int>(cities_));
  EXPECT_EQ(result.num_filled, 4u);
  EXPECT_EQ(result.values[1], "washington");
  EXPECT_EQ(result.values[3], "texas");
  EXPECT_EQ(result.values[4], "colorado");
  EXPECT_FALSE(result.filled[0]);  // the user's own example
  EXPECT_TRUE(result.filled[2]);
}

TEST_F(AppsFixture, AutoFillRejectsInconsistentExamples) {
  std::vector<std::string> keys = {"San Francisco", "Seattle"};
  auto result = AutoFill(store_, keys, {{0, "Texas"}});  // wrong example
  EXPECT_EQ(result.mapping_index, -1);
}

TEST_F(AppsFixture, AutoFillLeavesUnknownKeysEmpty) {
  std::vector<std::string> keys = {"San Francisco", "Seattle", "Atlantis"};
  auto result = AutoFill(store_, keys, {{0, "California"}});
  ASSERT_GE(result.mapping_index, 0);
  EXPECT_EQ(result.values[2], "");
  EXPECT_FALSE(result.filled[2]);
}

TEST_F(AppsFixture, AutoFillEmptyInputs) {
  EXPECT_EQ(AutoFill(store_, {}, {{0, "x"}}).mapping_index, -1);
  EXPECT_EQ(AutoFill(store_, {"Seattle"}, {}).mapping_index, -1);
}

// ---------------------------------------------------------------- AutoJoin

TEST_F(AppsFixture, Table5AutoJoin) {
  // The paper's Table 5: tickers on the left table, company names on the
  // right table; the mapping bridges the three-way join.
  std::vector<std::string> left = {"GE", "WMT", "MSFT", "ORCL", "T"};
  std::vector<std::string> right = {"General Electric", "Walmart", "Oracle",
                                    "Microsoft Corp", "AT&T Inc"};
  auto result = AutoJoin(store_, left, right);
  ASSERT_EQ(result.mapping_index, static_cast<int>(tickers_));
  EXPECT_FALSE(result.left_keys_are_left_side);  // tickers are right side
  EXPECT_EQ(result.pairs.size(), 5u);
  // Spot-check a joined pair: GE (row 0) -> General Electric (row 0).
  bool ge = false;
  for (const auto& p : result.pairs) {
    if (p.left_row == 0) {
      EXPECT_EQ(p.right_row, 0u);
      ge = true;
    }
  }
  EXPECT_TRUE(ge);
}

TEST_F(AppsFixture, AutoJoinForwardDirection) {
  std::vector<std::string> left = {"Microsoft Corp", "Oracle"};
  std::vector<std::string> right = {"MSFT", "ORCL", "IBM"};
  auto result = AutoJoin(store_, left, right);
  ASSERT_GE(result.mapping_index, 0);
  EXPECT_TRUE(result.left_keys_are_left_side);
  EXPECT_EQ(result.pairs.size(), 2u);
}

TEST_F(AppsFixture, AutoJoinRespectsMinRate) {
  std::vector<std::string> left = {"GE", "unknown1", "unknown2", "unknown3"};
  std::vector<std::string> right = {"General Electric", "r1", "r2", "r3"};
  AutoJoinOptions strict;
  strict.min_join_rate = 0.8;
  auto result = AutoJoin(store_, left, right, strict);
  EXPECT_EQ(result.mapping_index, -1);
}

TEST_F(AppsFixture, AutoJoinNoBridgeFound) {
  std::vector<std::string> left = {"apple", "pear"};
  std::vector<std::string> right = {"red", "green"};
  auto result = AutoJoin(store_, left, right);
  EXPECT_EQ(result.mapping_index, -1);
  EXPECT_TRUE(result.pairs.empty());
}

}  // namespace
}  // namespace ms
