// Tests for the comparison methods of Figure 7: union baselines, schema-CC,
// correlation clustering, WiseIntegrator, single-table pickers and the
// knowledge-base surrogates.
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/correlation.h"
#include "baselines/knowledge_base.h"
#include "baselines/schema_cc.h"
#include "baselines/single_table.h"
#include "baselines/union_tables.h"
#include "baselines/wise_integrator.h"
#include "corpusgen/builtin_domains.h"

namespace ms {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows,
                   const std::string& lname, const std::string& rname,
                   const std::string& domain,
                   TableSource source = TableSource::kWeb) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.left_name = lname;
    b.right_name = rname;
    b.domain = domain;
    b.source = source;
    b.id = next_id_++;
    return b;
  }

  std::shared_ptr<StringPool> pool_;
  BinaryTableId next_id_ = 0;
};

// ------------------------------------------------------------- Union [30]

TEST_F(BaselineFixture, UnionDomainGroupsWithinDomainOnly) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "name", "code", "d1.com"));
  cands.push_back(Make({{"b", "2"}}, "name", "code", "d1.com"));
  cands.push_back(Make({{"c", "3"}}, "name", "code", "d2.com"));
  auto rels = UnionDomainRelations(cands);
  EXPECT_EQ(rels.size(), 2u);
  size_t sizes = 0;
  for (const auto& r : rels) sizes += r.size();
  EXPECT_EQ(sizes, 3u);
}

TEST_F(BaselineFixture, UnionWebGroupsAcrossDomains) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "name", "code", "d1.com"));
  cands.push_back(Make({{"b", "2"}}, "name", "code", "d2.com"));
  auto rels = UnionWebRelations(cands);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].size(), 2u);
}

TEST_F(BaselineFixture, UnionWebOverGroupsGenericHeaders) {
  // Two semantically different relations with identical generic headers
  // end up in one union table — the paper's core criticism of [30].
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"france", "fra"}}, "name", "code", "d1.com"));
  cands.push_back(Make({{"hydrogen", "h"}}, "name", "code", "d2.com"));
  auto rels = UnionWebRelations(cands);
  EXPECT_EQ(rels.size(), 1u);  // over-grouped
}

TEST_F(BaselineFixture, UnionHeaderMatchingIsCaseInsensitive) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "Name", "Code", "d.com"));
  cands.push_back(Make({{"b", "2"}}, "name", "code", "d.com"));
  EXPECT_EQ(UnionDomainRelations(cands).size(), 1u);
}

// ---------------------------------------------------------------- SchemaCC

TEST_F(BaselineFixture, SchemaCcMergesAboveThreshold) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}, "x", "y", "d1"));
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}, "x", "y", "d2"));
  cands.push_back(Make({{"z", "9"}}, "x", "y", "d3"));
  CompatibilityGraph g(3);
  g.AddEdge(0, 1, 1.0, 0.0);
  g.Finalize();
  SchemaCcOptions opts;
  opts.threshold = 0.5;
  auto rels = SchemaCcRelations(g, cands, opts);
  EXPECT_EQ(rels.size(), 2u);
}

TEST_F(BaselineFixture, SchemaCcNegativeSignalsLowerScore) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"algeria", "dza"}}, "x", "y", "d1"));
  cands.push_back(Make({{"algeria", "alg"}}, "x", "y", "d2"));
  CompatibilityGraph g(2);
  g.AddEdge(0, 1, 0.6, -0.4);  // combined 0.2 < 0.5 threshold
  g.Finalize();
  SchemaCcOptions with_neg;
  with_neg.threshold = 0.5;
  with_neg.use_negative_signals = true;
  EXPECT_EQ(SchemaCcRelations(g, cands, with_neg).size(), 2u);
  SchemaCcOptions pos_only = with_neg;
  pos_only.use_negative_signals = false;  // 0.6 >= 0.5: merges
  EXPECT_EQ(SchemaCcRelations(g, cands, pos_only).size(), 1u);
}

TEST_F(BaselineFixture, SchemaCcTransitivityOverGroups) {
  // A-B and B-C match, A-C conflicts: CC still lumps all three (the
  // aggregation flaw Synthesis avoids).
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "x", "y", "d1"));
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}, "x", "y", "d2"));
  cands.push_back(Make({{"b", "2"}}, "x", "y", "d3"));
  CompatibilityGraph g(3);
  g.AddEdge(0, 1, 0.9, 0.0);
  g.AddEdge(1, 2, 0.9, 0.0);
  g.AddEdge(0, 2, 0.0, -1.0);
  g.Finalize();
  SchemaCcOptions opts;
  opts.threshold = 0.5;
  EXPECT_EQ(SchemaCcRelations(g, cands, opts).size(), 1u);
}

TEST_F(BaselineFixture, SchemaCcThresholdSweepSizes) {
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 3; ++i) {
    cands.push_back(Make({{"v" + std::to_string(i), "1"}}, "x", "y", "d"));
  }
  CompatibilityGraph g(3);
  g.AddEdge(0, 1, 0.3, 0.0);
  g.AddEdge(1, 2, 0.7, 0.0);
  g.Finalize();
  auto sweep = SchemaCcThresholdSweep(g, cands, {0.2, 0.5, 0.9}, false);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_EQ(sweep[0].size(), 1u);  // everything merges at 0.2
  EXPECT_EQ(sweep[1].size(), 2u);  // only the 0.7 edge at 0.5
  EXPECT_EQ(sweep[2].size(), 3u);  // nothing at 0.9
}

// ------------------------------------------------------------- Correlation

TEST_F(BaselineFixture, CorrelationClustersPositiveCliques) {
  CompatibilityGraph g(6);
  // Two positive triangles, negative across.
  for (auto [u, v] : {std::pair{0, 1}, {1, 2}, {0, 2}}) {
    g.AddEdge(u, v, 0.9, 0.0);
  }
  for (auto [u, v] : {std::pair{3, 4}, {4, 5}, {3, 5}}) {
    g.AddEdge(u, v, 0.9, 0.0);
  }
  g.AddEdge(2, 3, 0.1, -0.8);
  g.Finalize();
  CorrelationOptions opts;
  opts.positive_threshold = 0.5;
  auto r = ParallelPivotClustering(g, opts);
  EXPECT_EQ(r.cluster_of[0], r.cluster_of[1]);
  EXPECT_EQ(r.cluster_of[1], r.cluster_of[2]);
  EXPECT_EQ(r.cluster_of[3], r.cluster_of[4]);
  EXPECT_NE(r.cluster_of[2], r.cluster_of[3]);
  EXPECT_GE(r.rounds, 1u);
}

TEST_F(BaselineFixture, CorrelationTerminatesAndCoversAll) {
  Rng rng(3);
  const size_t n = 50;
  CompatibilityGraph g(n);
  for (int e = 0; e < 150; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u != v) g.AddEdge(u, v, rng.UniformDouble(), 0.0);
  }
  g.Finalize();
  auto r = ParallelPivotClustering(g, {});
  EXPECT_EQ(r.cluster_of.size(), n);
  for (uint32_t c : r.cluster_of) EXPECT_LT(c, r.num_clusters);
}

TEST_F(BaselineFixture, CorrelationOneHopLimitFragmentsChains) {
  // A long positive chain: parallel pivot (one-hop assignment) must produce
  // more than one cluster — the recall weakness the paper describes.
  const size_t n = 20;
  CompatibilityGraph g(n);
  for (uint32_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, 0.9, 0.0);
  g.Finalize();
  CorrelationOptions opts;
  opts.seed = 5;
  auto r = ParallelPivotClustering(g, opts);
  EXPECT_GT(r.num_clusters, 1u);
}

TEST_F(BaselineFixture, CorrelationRelationsUnionClusters) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "x", "y", "d1"));
  cands.push_back(Make({{"b", "2"}}, "x", "y", "d2"));
  CompatibilityGraph g(2);
  g.AddEdge(0, 1, 0.9, 0.0);
  g.Finalize();
  CorrelationOptions opts;
  opts.positive_threshold = 0.5;
  auto rels = CorrelationRelations(g, cands, opts);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0].size(), 2u);
}

// --------------------------------------------------------- WiseIntegrator

TEST_F(BaselineFixture, HeaderSimilarityBehaves) {
  EXPECT_DOUBLE_EQ(HeaderSimilarity("Country", "country"), 1.0);
  EXPECT_GT(HeaderSimilarity("country name", "country code"), 0.0);
  EXPECT_DOUBLE_EQ(HeaderSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(HeaderSimilarity("", "x"), 0.0);
}

TEST_F(BaselineFixture, ProfileSimilarityRange) {
  BinaryTable codes = Make({{"france", "FRA"}, {"spain", "ESP"}}, "c", "k",
                           "d");
  BinaryTable nums = Make({{"a", "123456"}, {"b", "987654"}}, "c", "k", "d");
  auto pc = ProfileRightColumn(codes, *pool_);
  auto pn = ProfileRightColumn(nums, *pool_);
  EXPECT_GT(pc.upper_fraction, 0.9);
  EXPECT_GT(pn.digit_fraction, 0.9);
  double sim = ProfileSimilarity(pc, pn);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_GT(ProfileSimilarity(pc, pc), 0.99);
}

TEST_F(BaselineFixture, WiseIntegratorClustersByHeadersNotValues) {
  std::vector<BinaryTable> cands;
  // Same headers + same value shape: clusters together even though the
  // instances are disjoint relations (its known blind spot).
  cands.push_back(Make({{"france", "FRA"}}, "Country", "Code", "d1"));
  cands.push_back(Make({{"algeria", "ALG"}}, "Country", "Code", "d2"));
  cands.push_back(Make({{"9912", "551"}}, "Account", "Balance", "d3"));
  auto rels = WiseIntegratorRelations(cands, *pool_);
  EXPECT_EQ(rels.size(), 2u);
}

TEST_F(BaselineFixture, WiseIntegratorThresholdControlsGranularity) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "X1"}}, "name", "code", "d1"));
  cands.push_back(Make({{"b", "Y2"}}, "title", "id", "d2"));
  WiseIntegratorOptions strict;
  strict.join_threshold = 0.95;
  EXPECT_EQ(WiseIntegratorRelations(cands, *pool_, strict).size(), 2u);
  WiseIntegratorOptions loose;
  loose.join_threshold = 0.1;
  EXPECT_EQ(WiseIntegratorRelations(cands, *pool_, loose).size(), 1u);
}

// ------------------------------------------------------------ SingleTable

TEST_F(BaselineFixture, SingleTableFiltersBySource) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}}, "x", "y", "wiki", TableSource::kWiki));
  cands.push_back(Make({{"b", "2"}}, "x", "y", "web", TableSource::kWeb));
  EXPECT_EQ(SingleTableRelations(cands, TableSource::kWiki).size(), 1u);
  EXPECT_EQ(SingleTableRelations(cands, std::nullopt).size(), 2u);
  EXPECT_EQ(SingleTableRelations(cands, TableSource::kEnterprise).size(),
            0u);
}

// ---------------------------------------------------------- KnowledgeBase

TEST_F(BaselineFixture, KnowledgeBaseCoversOnlyFlaggedRelations) {
  auto specs = BuiltinWebRelationships();
  StringPool pool;
  KnowledgeBaseOptions opts;
  opts.entity_coverage = 1.0;
  auto fb = KnowledgeBaseRelations(specs, KbKind::kFreebase, &pool, opts);
  auto yago = KnowledgeBaseRelations(specs, KbKind::kYago, &pool, opts);
  EXPECT_GT(fb.size(), 0u);
  EXPECT_GT(yago.size(), 0u);
  // YAGO covers strictly fewer relations than Freebase in the builtin set.
  EXPECT_LT(yago.size(), fb.size());
}

TEST_F(BaselineFixture, KnowledgeBaseHasNoSynonyms) {
  auto specs = BuiltinWebRelationships();
  StringPool pool;
  KnowledgeBaseOptions opts;
  opts.entity_coverage = 1.0;
  auto fb = KnowledgeBaseRelations(specs, KbKind::kFreebase, &pool, opts);
  // Find the country_iso3 relation and confirm one mention per country:
  // left count == right count for a 1:1 relation without synonyms.
  bool checked = false;
  for (const auto& rel : fb) {
    if (rel.left_name == "Country" && rel.right_name == "ISO") {
      EXPECT_EQ(rel.LeftValues().size(), rel.RightValues().size());
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST_F(BaselineFixture, KnowledgeBaseCoverageParameter) {
  auto specs = BuiltinWebRelationships();
  StringPool pool;
  KnowledgeBaseOptions full, half;
  full.entity_coverage = 1.0;
  half.entity_coverage = 0.5;
  auto rel_full = KnowledgeBaseRelations(specs, KbKind::kFreebase, &pool,
                                         full);
  auto rel_half = KnowledgeBaseRelations(specs, KbKind::kFreebase, &pool,
                                         half);
  size_t pairs_full = 0, pairs_half = 0;
  for (const auto& r : rel_full) pairs_full += r.size();
  for (const auto& r : rel_half) pairs_half += r.size();
  EXPECT_LT(pairs_half, pairs_full);
}

TEST_F(BaselineFixture, KnowledgeBaseAddsFunctionalReverseDirection) {
  std::vector<RelationshipSpec> specs(1);
  specs[0].name = "test";
  specs[0].left_header = "L";
  specs[0].right_header = "R";
  specs[0].in_freebase = true;
  specs[0].entities = {{{"alpha"}, "x1"}, {{"beta"}, "x2"}};
  StringPool pool;
  KnowledgeBaseOptions opts;
  opts.entity_coverage = 1.0;
  auto rels = KnowledgeBaseRelations(specs, KbKind::kFreebase, &pool, opts);
  // 1:1 relation: both directions emitted.
  EXPECT_EQ(rels.size(), 2u);
}

}  // namespace
}  // namespace ms
