// Tests for inverted-index blocking (Section 4.1 "Efficiency"): only table
// pairs sharing >= θ_overlap value pairs (for w+) or left values (for w-)
// are emitted for exact scoring.
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synth/blocking.h"
#include "table/string_pool.h"

namespace ms {
namespace {

class BlockingFixture : public ::testing::Test {
 protected:
  BlockingFixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.id = next_id_++;
    return b;
  }

  const CandidateTablePair* FindPair(
      const std::vector<CandidateTablePair>& pairs, uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    for (const auto& p : pairs) {
      if (p.a == a && p.b == b) return &p;
    }
    return nullptr;
  }

  std::shared_ptr<StringPool> pool_;
  uint32_t next_id_ = 0;
};

TEST_F(BlockingFixture, SharedPairsAreCounted) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}, {"b", "2"}, {"c", "3"}}));
  cands.push_back(Make({{"a", "1"}, {"b", "2"}, {"d", "4"}}));
  BlockingOptions opts;
  opts.theta_overlap = 2;
  auto pairs = GenerateCandidatePairs(cands, opts);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].shared_pairs, 2u);
  EXPECT_EQ(pairs[0].shared_lefts, 2u);
}

TEST_F(BlockingFixture, BelowThresholdIsPruned) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}));
  cands.push_back(Make({{"a", "1"}, {"c", "3"}}));  // 1 shared pair/left
  BlockingOptions opts;
  opts.theta_overlap = 2;
  EXPECT_TRUE(GenerateCandidatePairs(cands, opts).empty());
  opts.theta_overlap = 1;
  EXPECT_EQ(GenerateCandidatePairs(cands, opts).size(), 1u);
}

TEST_F(BlockingFixture, DisjointTablesNeverPair) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}));
  cands.push_back(Make({{"x", "9"}, {"y", "8"}}));
  BlockingOptions opts;
  opts.theta_overlap = 1;
  EXPECT_TRUE(GenerateCandidatePairs(cands, opts).empty());
}

TEST_F(BlockingFixture, SharedLeftsAloneTriggerPairing) {
  // Same lefts, conflicting rights: zero shared pairs but shared lefts must
  // still pair them so w- can be computed (ISO-vs-IOC case).
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"algeria", "dza"}, {"albania", "alb"}}));
  cands.push_back(Make({{"algeria", "alg"}, {"albania", "axx"}}));
  BlockingOptions opts;
  opts.theta_overlap = 2;
  auto pairs = GenerateCandidatePairs(cands, opts);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].shared_pairs, 0u);
  EXPECT_EQ(pairs[0].shared_lefts, 2u);
}

TEST_F(BlockingFixture, TransitiveGroupsEmitAllPairs) {
  std::vector<BinaryTable> cands;
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}));
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}));
  cands.push_back(Make({{"a", "1"}, {"b", "2"}}));
  BlockingOptions opts;
  opts.theta_overlap = 2;
  auto pairs = GenerateCandidatePairs(cands, opts);
  EXPECT_EQ(pairs.size(), 3u);  // all C(3,2) pairs
  EXPECT_NE(FindPair(pairs, 0, 1), nullptr);
  EXPECT_NE(FindPair(pairs, 0, 2), nullptr);
  EXPECT_NE(FindPair(pairs, 1, 2), nullptr);
}

TEST_F(BlockingFixture, DeterministicOrdering) {
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 6; ++i) {
    cands.push_back(Make({{"shared", "val"}, {"also", "shared"},
                          {"u" + std::to_string(i), "v"}}));
  }
  BlockingOptions opts;
  opts.theta_overlap = 2;
  auto a = GenerateCandidatePairs(cands, opts);
  auto b = GenerateCandidatePairs(cands, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }
  // Sorted by (a, b).
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_TRUE(std::tie(a[i - 1].a, a[i - 1].b) < std::tie(a[i].a, a[i].b));
  }
}

TEST_F(BlockingFixture, ParallelMatchesSerial) {
  std::vector<BinaryTable> cands;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (int r = 0; r < 8; ++r) {
      rows.push_back({"k" + std::to_string(rng.Uniform(30)),
                      "v" + std::to_string(rng.Uniform(10))});
    }
    cands.push_back(Make(rows));
  }
  ThreadPool pool(4);
  auto serial = GenerateCandidatePairs(cands, {}, nullptr);
  auto parallel = GenerateCandidatePairs(cands, {}, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].a, parallel[i].a);
    EXPECT_EQ(serial[i].b, parallel[i].b);
    EXPECT_EQ(serial[i].shared_pairs, parallel[i].shared_pairs);
    EXPECT_EQ(serial[i].shared_lefts, parallel[i].shared_lefts);
  }
}

TEST_F(BlockingFixture, HotKeyCapBoundsPairExplosion) {
  // 20 tables share one hot value pair; with max_posting = 4 the hot key
  // contributes at most C(4,2) = 6 id pairs.
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 20; ++i) {
    cands.push_back(Make({{"hot", "key"}, {"hot2", "key2"},
                          {"u" + std::to_string(i), "v"}}));
  }
  BlockingOptions opts;
  opts.theta_overlap = 1;
  opts.max_posting = 4;
  auto pairs = GenerateCandidatePairs(cands, opts);
  EXPECT_LE(pairs.size(), 12u);  // two hot keys (pair + left spaces) ≈ 6+6
  opts.max_posting = 256;
  EXPECT_EQ(GenerateCandidatePairs(cands, opts).size(), 190u);  // C(20,2)
}

TEST_F(BlockingFixture, EmptyCandidateSet) {
  EXPECT_TRUE(GenerateCandidatePairs({}, {}).empty());
}

// ------------------------------------------------- sharded-vs-seed oracle

void ExpectSamePairs(const std::vector<CandidateTablePair>& got,
                     const std::vector<CandidateTablePair>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a) << "at " << i;
    EXPECT_EQ(got[i].b, want[i].b) << "at " << i;
    EXPECT_EQ(got[i].shared_pairs, want[i].shared_pairs) << "at " << i;
    EXPECT_EQ(got[i].shared_lefts, want[i].shared_lefts) << "at " << i;
  }
}

TEST_F(BlockingFixture, ShardedMatchesReferenceOnRandomCorpora) {
  // The sharded streaming implementation must emit the exact same
  // CandidateTablePair set (values included) as the seed emit-then-count
  // algorithm, across seeds, overlap thresholds, and truncation caps.
  for (uint64_t seed : {7u, 19u, 101u}) {
    Rng rng(seed);
    std::vector<BinaryTable> cands;
    const size_t n = 30 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::pair<std::string, std::string>> rows;
      const size_t n_rows = 3 + rng.Uniform(12);
      for (size_t r = 0; r < n_rows; ++r) {
        // Zipf-ish key skew so some posting lists are long.
        rows.push_back({"k" + std::to_string(rng.Zipf(60)),
                        "v" + std::to_string(rng.Uniform(12))});
      }
      cands.push_back(Make(rows));
    }
    for (size_t theta : {1u, 2u, 3u}) {
      for (size_t cap : {4u, 256u}) {
        BlockingOptions opts;
        opts.theta_overlap = theta;
        opts.max_posting = cap;
        auto reference = GenerateCandidatePairsReference(cands, opts);
        ExpectSamePairs(GenerateCandidatePairs(cands, opts), reference);
        ThreadPool pool(4);
        ExpectSamePairs(GenerateCandidatePairs(cands, opts, &pool), reference);
      }
    }
  }
}

TEST_F(BlockingFixture, DroppedPostingsAreCounted) {
  // 20 tables share the pair keys (hot,key) and (hot2,key2) and the left
  // keys hot/hot2; with max_posting = 4 each of those four posting lists
  // drops 16 entries. The per-table (u_i, v) rows add unique keys that drop
  // nothing.
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 20; ++i) {
    cands.push_back(Make({{"hot", "key"}, {"hot2", "key2"},
                          {"u" + std::to_string(i), "v"}}));
  }
  BlockingOptions opts;
  opts.theta_overlap = 1;
  opts.max_posting = 4;
  BlockingStats stats;
  GenerateCandidatePairs(cands, opts, nullptr, &stats);
  EXPECT_EQ(stats.dropped_postings, 4u * 16u);
  // Keys: pair space {hot->key, hot2->key2, 20 x u_i->v}; left space
  // {hot, hot2, 20 x u_i}.
  EXPECT_EQ(stats.keys, 44u);

  // No truncation => nothing dropped, and timing fields are populated.
  opts.max_posting = 256;
  BlockingStats full;
  GenerateCandidatePairs(cands, opts, nullptr, &full);
  EXPECT_EQ(full.dropped_postings, 0u);
  EXPECT_EQ(full.keys, 44u);
  EXPECT_GE(full.map_shuffle_seconds, 0.0);
  EXPECT_GE(full.count_seconds, 0.0);
  EXPECT_GE(full.reduce_seconds, 0.0);
}

TEST_F(BlockingFixture, TruncationIsDeterministicAcrossThreadCounts) {
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 30; ++i) {
    cands.push_back(Make({{"hot", "key"},
                          {"x" + std::to_string(i % 7), "y"}}));
  }
  BlockingOptions opts;
  opts.theta_overlap = 1;
  opts.max_posting = 5;
  auto serial = GenerateCandidatePairs(cands, opts);
  ThreadPool pool(8);
  BlockingStats stats_par;
  auto parallel = GenerateCandidatePairs(cands, opts, &pool, &stats_par);
  ExpectSamePairs(parallel, serial);
  BlockingStats stats_ser;
  GenerateCandidatePairs(cands, opts, nullptr, &stats_ser);
  EXPECT_EQ(stats_ser.dropped_postings, stats_par.dropped_postings);
}

}  // namespace
}  // namespace ms
