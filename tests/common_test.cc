// Unit tests for the common substrate: Status/Result, string helpers,
// hashing, bloom filter, RNG, and thread pool.
#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bloom_filter.h"
#include "common/hashing.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace ms {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad threshold");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad threshold");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad threshold");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::IOError("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ------------------------------------------------------------ string_util

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleToken) {
  auto parts = Split("abc", '\t');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> v = {"x", "y", "z"};
  EXPECT_EQ(Join(v, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("#table foo", "#table "));
  EXPECT_FALSE(StartsWith("#t", "#table "));
  EXPECT_TRUE(EndsWith("file.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", "file.tsv"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

// ---------------------------------------------------------------- hashing

TEST(HashingTest, Fnv1aIsStable) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

TEST(HashingTest, Mix64Bijective) {
  // Sanity: distinct inputs stay distinct for a sample.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(Mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(HashingTest, HashIdPairOrderSensitive) {
  EXPECT_NE(HashIdPair(1, 2), HashIdPair(2, 1));
}

// ------------------------------------------------------------ BloomFilter

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(1000, 0.01);
  for (int i = 0; i < 1000; ++i) bf.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.MayContain("key" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  BloomFilter bf(2000, 0.01);
  for (int i = 0; i < 2000; ++i) bf.Add("in" + std::to_string(i));
  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bf.MayContain("out" + std::to_string(i))) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.05);  // target 1%, generous bound
  EXPECT_GT(bf.EstimatedFpRate(), 0.0);
  EXPECT_LT(bf.EstimatedFpRate(), 0.05);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter bf(10);
  EXPECT_FALSE(bf.MayContain("anything"));
  EXPECT_EQ(bf.inserted_count(), 0u);
}

TEST(BloomFilterTest, HandlesDegenerateSizing) {
  BloomFilter bf(0, 2.0);  // clamped internally
  bf.Add("x");
  EXPECT_TRUE(bf.MayContain("x"));
  EXPECT_GE(bf.hash_count(), 1);
  EXPECT_GE(bf.bit_count(), 64u);
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(6);
  auto s = rng.SampleIndices(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : s) EXPECT_LT(i, 50u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(7);
  auto s = rng.SampleIndices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(8);
  size_t lo = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++lo;
  }
  // Top-10 of 100 ranks should absorb well over 10% of the mass.
  EXPECT_GT(static_cast<double>(lo) / total, 0.3);
}

TEST(RngTest, ZipfWithinBounds) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.Zipf(7, 0.8), 7u);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { ++count; });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPoolTest, WaitIdleOnFreshPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  t.Restart();
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace ms
