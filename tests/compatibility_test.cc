// Tests for pair-wise compatibility scores (Section 4.1): positive
// max-containment w+ (Equation 3, Examples 7-8) and negative conflict score
// w- (Equation 4, Example 9), with approximate matching and synonyms — and
// differential coverage holding the batched Myers fast path byte-identical
// to the seed scalar implementation (ComputeCompatibilityReference).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synth/blocking.h"
#include "synth/compatibility.h"
#include "table/string_pool.h"

namespace ms {
namespace {

/// Table 8 of the paper (values pre-normalized as the pipeline would).
class Table8Fixture : public ::testing::Test {
 protected:
  Table8Fixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    return BinaryTable::FromPairs(std::move(pairs));
  }

  void SetUp() override {
    b1_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "alg"},
                {"american samoa", "asa"},
                {"south korea", "kor"},
                {"us virgin islands", "isv"}});
    b2_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "alg"},
                {"american samoa us", "asa"},
                {"korea republic of south", "kor"},
                {"united states virgin islands", "isv"}});
    b3_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "dza"},
                {"american samoa", "asm"},
                {"south korea", "kor"},
                {"us virgin islands", "vir"}});
  }

  std::shared_ptr<StringPool> pool_;
  BinaryTable b1_, b2_, b3_;
};

TEST_F(Table8Fixture, Example7ExactPositiveCompatibility) {
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  // First three rows match exactly: w+ = max(3/6, 3/6) = 0.5.
  EXPECT_EQ(s.overlap, 3u);
  EXPECT_DOUBLE_EQ(s.w_pos, 0.5);
}

TEST_F(Table8Fixture, Example8ApproximateMatchingBoostsOverlap) {
  // The paper computes d("American Samoa", "American Samoa (US)") = 2
  // "ignoring punctuations"; after our normalization the residue is " us"
  // (3 edits), so the default f_ed = 0.2 threshold of 2 does not fire and a
  // slightly looser fraction is needed to reproduce the example's 0.67.
  CompatibilityOptions opts;
  opts.approximate_matching = true;
  opts.edit.fractional = 0.25;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.overlap, 4u);
  EXPECT_NEAR(s.w_pos, 0.67, 0.01);
}

TEST_F(Table8Fixture, Example9NegativeIncompatibility) {
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  PairScores s = ComputeCompatibility(b1_, b3_, *pool_, opts);
  // Rows 3, 4, 6 conflict (ALG/DZA, ASA/ASM, ISV/VIR): w- = -3/6.
  EXPECT_EQ(s.conflicts, 3u);
  EXPECT_DOUBLE_EQ(s.w_neg, -0.5);
  // And the positive overlap is also 0.5 (rows 1, 2, 5) — the trap that
  // makes positive-only methods merge IOC with ISO.
  EXPECT_DOUBLE_EQ(s.w_pos, 0.5);
}

TEST_F(Table8Fixture, SameRelationHasNoConflicts) {
  CompatibilityOptions opts;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.conflicts, 0u);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, ScoresAreSymmetric) {
  for (const auto* a : {&b1_, &b2_, &b3_}) {
    for (const auto* b : {&b1_, &b2_, &b3_}) {
      PairScores ab = ComputeCompatibility(*a, *b, *pool_);
      PairScores ba = ComputeCompatibility(*b, *a, *pool_);
      EXPECT_DOUBLE_EQ(ab.w_pos, ba.w_pos);
      EXPECT_DOUBLE_EQ(ab.w_neg, ba.w_neg);
    }
  }
}

TEST_F(Table8Fixture, ScoresAreBounded) {
  PairScores s = ComputeCompatibility(b1_, b3_, *pool_);
  EXPECT_GE(s.w_pos, 0.0);
  EXPECT_LE(s.w_pos, 1.0);
  EXPECT_GE(s.w_neg, -1.0);
  EXPECT_LE(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, SelfCompatibilityIsPerfect) {
  PairScores s = ComputeCompatibility(b1_, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 1.0);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, ContainmentFavorsSubsets) {
  // A 2-row subset of b1 is fully contained: w+ = max(2/2, 2/6) = 1.
  BinaryTable small = Make({{"afghanistan", "afg"}, {"albania", "alb"}});
  PairScores s = ComputeCompatibility(small, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 1.0);
}

TEST_F(Table8Fixture, EmptyTablesScoreZero) {
  BinaryTable empty;
  PairScores s = ComputeCompatibility(empty, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 0.0);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, SynonymsCountAsPositiveMatches) {
  SynonymDictionary dict(pool_);
  dict.AddSynonym("us virgin islands", "united states virgin islands");
  dict.AddSynonym("south korea", "korea republic of south");
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  opts.synonyms = &dict;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.overlap, 5u);  // 3 exact + 2 synonym-bridged
}

TEST_F(Table8Fixture, SynonymousRightsDoNotConflict) {
  BinaryTable x = Make({{"germany", "deu"}});
  BinaryTable y = Make({{"germany", "ger"}});
  EXPECT_EQ(ComputeCompatibility(x, y, *pool_).conflicts, 1u);

  SynonymDictionary dict(pool_);
  dict.AddSynonym("deu", "ger");
  CompatibilityOptions opts;
  opts.synonyms = &dict;
  PairScores s = ComputeCompatibility(x, y, *pool_, opts);
  EXPECT_EQ(s.conflicts, 0u);
  EXPECT_EQ(s.overlap, 1u);  // synonym rights now also match positively
}

TEST_F(Table8Fixture, ValuesMatchPredicate) {
  CompatibilityOptions exact;
  exact.approximate_matching = false;
  ValueId a = pool_->Intern("value one");
  ValueId b = pool_->Intern("value one x");
  EXPECT_TRUE(ValuesMatch(a, a, *pool_, exact));
  EXPECT_FALSE(ValuesMatch(a, b, *pool_, exact));
  CompatibilityOptions approx;
  approx.edit.fractional = 0.3;
  EXPECT_TRUE(ValuesMatch(a, b, *pool_, approx));
}

TEST_F(Table8Fixture, ShortCodesNeverApproxMatch) {
  // "usa" vs "rsa" stay distinct under approximate matching (fractional
  // threshold floors to 0 for 3-char strings) — the paper's safeguard.
  BinaryTable x = Make({{"united states", "usa"}});
  BinaryTable y = Make({{"united states", "rsa"}});
  CompatibilityOptions opts;
  PairScores s = ComputeCompatibility(x, y, *pool_, opts);
  EXPECT_EQ(s.overlap, 0u);
  EXPECT_EQ(s.conflicts, 1u);
}

TEST_F(Table8Fixture, GreedyResidueMatchingIsOneToOne) {
  // Two near-identical pairs in a must not both match the single pair in b.
  BinaryTable a = Make({{"entityx one", "cc1"}, {"entityx onee", "cc1"}});
  BinaryTable b = Make({{"entityx one!", "cc1"}});
  CompatibilityOptions opts;
  opts.edit.fractional = 0.3;
  PairScores s = ComputeCompatibility(a, b, *pool_, opts);
  EXPECT_EQ(s.overlap, 1u);
}

// ----------------------------------------------------- fast-path equivalence

/// Random value universe with realistic shape: shared country-like names,
/// typo'd variants (exercising the approximate matcher), short codes, and a
/// sprinkle of long multi-word strings (exercising the blocked kernel).
class FastPathFixture : public ::testing::Test {
 protected:
  FastPathFixture() : pool_(std::make_shared<StringPool>()) {}

  std::vector<ValueId> MakeUniverse(Rng& rng, size_t n) {
    std::vector<ValueId> ids;
    for (size_t i = 0; i < n; ++i) {
      std::string s = "entity " + std::to_string(rng.Uniform(n / 2 + 1));
      const double r = rng.UniformDouble();
      if (r < 0.25) {  // typo variant
        s += std::string(1, static_cast<char>('a' + rng.Uniform(26)));
      } else if (r < 0.35) {  // short code
        s = s.substr(s.size() - 3);
      } else if (r < 0.45) {  // long string (> 64 bytes)
        while (s.size() <= 70) s += " of the united provinces";
      }
      ids.push_back(pool_->Intern(s));
    }
    return ids;
  }

  BinaryTable RandomTable(Rng& rng, const std::vector<ValueId>& lefts,
                          const std::vector<ValueId>& rights) {
    std::vector<ValuePair> pairs;
    const size_t rows = 2 + rng.Uniform(12);
    for (size_t r = 0; r < rows; ++r) {
      pairs.push_back({rng.Pick(lefts), rng.Pick(rights)});
    }
    return BinaryTable::FromPairs(std::move(pairs));
  }

  static void ExpectSameScores(const PairScores& x, const PairScores& y,
                               const std::string& ctx) {
    EXPECT_EQ(x.overlap, y.overlap) << ctx;
    EXPECT_EQ(x.conflicts, y.conflicts) << ctx;
    EXPECT_EQ(x.w_pos, y.w_pos) << ctx;    // bitwise: same integer inputs
    EXPECT_EQ(x.w_neg, y.w_neg) << ctx;
  }

  std::shared_ptr<StringPool> pool_;
};

TEST_F(FastPathFixture, BatchMatcherAgreesWithValuesMatch) {
  Rng rng(71);
  auto ids = MakeUniverse(rng, 160);
  SynonymDictionary dict(pool_);
  dict.AddSynonym("entity 0", "entity 1");
  for (const bool approx : {true, false}) {
    for (const bool gate : {true, false}) {
      const SynonymDictionary* configs[] = {nullptr, &dict};
      for (const SynonymDictionary* syn : configs) {
        CompatibilityOptions opts;
        opts.approximate_matching = approx;
        opts.edit.use_bit_parallel = gate;
        opts.synonyms = syn;
        BatchApproxMatcher matcher(*pool_, opts.edit, approx, syn);
        for (int i = 0; i < 4000; ++i) {
          const ValueId a = rng.Pick(ids);
          const ValueId b = rng.Pick(ids);
          ASSERT_EQ(matcher.Match(a, b), ValuesMatch(a, b, *pool_, opts))
              << pool_->Get(a) << " vs " << pool_->Get(b) << " approx="
              << approx << " gate=" << gate << " syn=" << (syn != nullptr);
        }
        EXPECT_EQ(matcher.stats().match_calls, 4000u);
        if (approx && gate) {
          EXPECT_GT(matcher.stats().pattern_cache_hits, 0u);
        }
      }
    }
  }
}

TEST_F(FastPathFixture, FastPathMatchesReferenceOnRandomTables) {
  Rng rng(72);
  auto lefts = MakeUniverse(rng, 80);
  auto rights = MakeUniverse(rng, 40);
  SynonymDictionary dict(pool_);
  dict.AddSynonym("entity 2", "entity 3");
  for (int round = 0; round < 120; ++round) {
    BinaryTable a = RandomTable(rng, lefts, rights);
    BinaryTable b = RandomTable(rng, lefts, rights);
    for (const bool approx : {true, false}) {
      for (const bool gate : {true, false}) {
        CompatibilityOptions opts;
        opts.approximate_matching = approx;
        opts.edit.use_bit_parallel = gate;
        if (round % 3 == 0) opts.synonyms = &dict;
        const PairScores ref = ComputeCompatibilityReference(a, b, *pool_,
                                                             opts);
        const PairScores fast = ComputeCompatibility(a, b, *pool_, opts);
        ExpectSameScores(fast, ref,
                         "round " + std::to_string(round) + " approx=" +
                             std::to_string(approx) + " gate=" +
                             std::to_string(gate));
      }
    }
  }
}

TEST_F(FastPathFixture, BlockingHintReuseIsExact) {
  // Score every blocking survivor of a random candidate set twice — with
  // the hint-driven fast path and with the reference — under exact-only
  // matching, where the hint replaces the pair-list merge outright.
  Rng rng(73);
  auto lefts = MakeUniverse(rng, 60);
  auto rights = MakeUniverse(rng, 30);
  std::vector<BinaryTable> candidates;
  for (int t = 0; t < 120; ++t) {
    candidates.push_back(RandomTable(rng, lefts, rights));
    candidates.back().id = static_cast<BinaryTableId>(t);
  }
  BlockingOptions bopts;
  BlockingStats bstats;
  auto pairs = GenerateCandidatePairs(candidates, bopts, nullptr, &bstats);
  ASSERT_FALSE(pairs.empty());
  ASSERT_TRUE(bstats.exact_counts);

  CompatibilityOptions opts;
  opts.approximate_matching = false;
  ASSERT_TRUE(opts.reuse_blocking_counts);
  BatchApproxMatcher matcher(*pool_, opts.edit, false, nullptr);
  ScoringStats sstats;
  for (const auto& p : pairs) {
    const BlockingHint hint{p.shared_pairs, p.shared_lefts, true};
    const PairScores fast =
        ComputeCompatibility(candidates[p.a], candidates[p.b], *pool_, opts,
                             &matcher, &hint, &sstats);
    const PairScores ref = ComputeCompatibilityReference(
        candidates[p.a], candidates[p.b], *pool_, opts);
    ExpectSameScores(fast, ref, "pair " + std::to_string(p.a) + "," +
                                    std::to_string(p.b));
    // The hint is threaded through to the scores.
    EXPECT_EQ(fast.shared_pairs, p.shared_pairs);
    EXPECT_EQ(fast.shared_lefts, p.shared_lefts);
  }
  // Every overlap merge was replaced by the blocking count.
  EXPECT_EQ(sstats.overlap_merges_skipped, pairs.size());
}

TEST_F(FastPathFixture, InexactHintsAreIgnored) {
  Rng rng(74);
  BinaryTable a = RandomTable(rng, MakeUniverse(rng, 20),
                              MakeUniverse(rng, 10));
  // A wildly wrong hint marked inexact must not corrupt the scores.
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  BatchApproxMatcher matcher(*pool_, opts.edit, false, nullptr);
  const BlockingHint bogus{9999, 9999, /*exact=*/false};
  const PairScores with_hint =
      ComputeCompatibility(a, a, *pool_, opts, &matcher, &bogus, nullptr);
  const PairScores ref = ComputeCompatibilityReference(a, a, *pool_, opts);
  EXPECT_EQ(with_hint.overlap, ref.overlap);
  EXPECT_EQ(with_hint.conflicts, ref.conflicts);
  EXPECT_EQ(with_hint.shared_pairs, 9999u);  // recorded, not trusted
}

}  // namespace
}  // namespace ms
