// Tests for pair-wise compatibility scores (Section 4.1): positive
// max-containment w+ (Equation 3, Examples 7-8) and negative conflict score
// w- (Equation 4, Example 9), with approximate matching and synonyms.
#include <memory>

#include <gtest/gtest.h>

#include "synth/compatibility.h"
#include "table/string_pool.h"

namespace ms {
namespace {

/// Table 8 of the paper (values pre-normalized as the pipeline would).
class Table8Fixture : public ::testing::Test {
 protected:
  Table8Fixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    return BinaryTable::FromPairs(std::move(pairs));
  }

  void SetUp() override {
    b1_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "alg"},
                {"american samoa", "asa"},
                {"south korea", "kor"},
                {"us virgin islands", "isv"}});
    b2_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "alg"},
                {"american samoa us", "asa"},
                {"korea republic of south", "kor"},
                {"united states virgin islands", "isv"}});
    b3_ = Make({{"afghanistan", "afg"},
                {"albania", "alb"},
                {"algeria", "dza"},
                {"american samoa", "asm"},
                {"south korea", "kor"},
                {"us virgin islands", "vir"}});
  }

  std::shared_ptr<StringPool> pool_;
  BinaryTable b1_, b2_, b3_;
};

TEST_F(Table8Fixture, Example7ExactPositiveCompatibility) {
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  // First three rows match exactly: w+ = max(3/6, 3/6) = 0.5.
  EXPECT_EQ(s.overlap, 3u);
  EXPECT_DOUBLE_EQ(s.w_pos, 0.5);
}

TEST_F(Table8Fixture, Example8ApproximateMatchingBoostsOverlap) {
  // The paper computes d("American Samoa", "American Samoa (US)") = 2
  // "ignoring punctuations"; after our normalization the residue is " us"
  // (3 edits), so the default f_ed = 0.2 threshold of 2 does not fire and a
  // slightly looser fraction is needed to reproduce the example's 0.67.
  CompatibilityOptions opts;
  opts.approximate_matching = true;
  opts.edit.fractional = 0.25;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.overlap, 4u);
  EXPECT_NEAR(s.w_pos, 0.67, 0.01);
}

TEST_F(Table8Fixture, Example9NegativeIncompatibility) {
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  PairScores s = ComputeCompatibility(b1_, b3_, *pool_, opts);
  // Rows 3, 4, 6 conflict (ALG/DZA, ASA/ASM, ISV/VIR): w- = -3/6.
  EXPECT_EQ(s.conflicts, 3u);
  EXPECT_DOUBLE_EQ(s.w_neg, -0.5);
  // And the positive overlap is also 0.5 (rows 1, 2, 5) — the trap that
  // makes positive-only methods merge IOC with ISO.
  EXPECT_DOUBLE_EQ(s.w_pos, 0.5);
}

TEST_F(Table8Fixture, SameRelationHasNoConflicts) {
  CompatibilityOptions opts;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.conflicts, 0u);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, ScoresAreSymmetric) {
  for (const auto* a : {&b1_, &b2_, &b3_}) {
    for (const auto* b : {&b1_, &b2_, &b3_}) {
      PairScores ab = ComputeCompatibility(*a, *b, *pool_);
      PairScores ba = ComputeCompatibility(*b, *a, *pool_);
      EXPECT_DOUBLE_EQ(ab.w_pos, ba.w_pos);
      EXPECT_DOUBLE_EQ(ab.w_neg, ba.w_neg);
    }
  }
}

TEST_F(Table8Fixture, ScoresAreBounded) {
  PairScores s = ComputeCompatibility(b1_, b3_, *pool_);
  EXPECT_GE(s.w_pos, 0.0);
  EXPECT_LE(s.w_pos, 1.0);
  EXPECT_GE(s.w_neg, -1.0);
  EXPECT_LE(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, SelfCompatibilityIsPerfect) {
  PairScores s = ComputeCompatibility(b1_, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 1.0);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, ContainmentFavorsSubsets) {
  // A 2-row subset of b1 is fully contained: w+ = max(2/2, 2/6) = 1.
  BinaryTable small = Make({{"afghanistan", "afg"}, {"albania", "alb"}});
  PairScores s = ComputeCompatibility(small, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 1.0);
}

TEST_F(Table8Fixture, EmptyTablesScoreZero) {
  BinaryTable empty;
  PairScores s = ComputeCompatibility(empty, b1_, *pool_);
  EXPECT_DOUBLE_EQ(s.w_pos, 0.0);
  EXPECT_DOUBLE_EQ(s.w_neg, 0.0);
}

TEST_F(Table8Fixture, SynonymsCountAsPositiveMatches) {
  SynonymDictionary dict(pool_);
  dict.AddSynonym("us virgin islands", "united states virgin islands");
  dict.AddSynonym("south korea", "korea republic of south");
  CompatibilityOptions opts;
  opts.approximate_matching = false;
  opts.synonyms = &dict;
  PairScores s = ComputeCompatibility(b1_, b2_, *pool_, opts);
  EXPECT_EQ(s.overlap, 5u);  // 3 exact + 2 synonym-bridged
}

TEST_F(Table8Fixture, SynonymousRightsDoNotConflict) {
  BinaryTable x = Make({{"germany", "deu"}});
  BinaryTable y = Make({{"germany", "ger"}});
  EXPECT_EQ(ComputeCompatibility(x, y, *pool_).conflicts, 1u);

  SynonymDictionary dict(pool_);
  dict.AddSynonym("deu", "ger");
  CompatibilityOptions opts;
  opts.synonyms = &dict;
  PairScores s = ComputeCompatibility(x, y, *pool_, opts);
  EXPECT_EQ(s.conflicts, 0u);
  EXPECT_EQ(s.overlap, 1u);  // synonym rights now also match positively
}

TEST_F(Table8Fixture, ValuesMatchPredicate) {
  CompatibilityOptions exact;
  exact.approximate_matching = false;
  ValueId a = pool_->Intern("value one");
  ValueId b = pool_->Intern("value one x");
  EXPECT_TRUE(ValuesMatch(a, a, *pool_, exact));
  EXPECT_FALSE(ValuesMatch(a, b, *pool_, exact));
  CompatibilityOptions approx;
  approx.edit.fractional = 0.3;
  EXPECT_TRUE(ValuesMatch(a, b, *pool_, approx));
}

TEST_F(Table8Fixture, ShortCodesNeverApproxMatch) {
  // "usa" vs "rsa" stay distinct under approximate matching (fractional
  // threshold floors to 0 for 3-char strings) — the paper's safeguard.
  BinaryTable x = Make({{"united states", "usa"}});
  BinaryTable y = Make({{"united states", "rsa"}});
  CompatibilityOptions opts;
  PairScores s = ComputeCompatibility(x, y, *pool_, opts);
  EXPECT_EQ(s.overlap, 0u);
  EXPECT_EQ(s.conflicts, 1u);
}

TEST_F(Table8Fixture, GreedyResidueMatchingIsOneToOne) {
  // Two near-identical pairs in a must not both match the single pair in b.
  BinaryTable a = Make({{"entityx one", "cc1"}, {"entityx onee", "cc1"}});
  BinaryTable b = Make({{"entityx one!", "cc1"}});
  CompatibilityOptions opts;
  opts.edit.fractional = 0.3;
  PairScores s = ComputeCompatibility(a, b, *pool_, opts);
  EXPECT_EQ(s.overlap, 1u);
}

}  // namespace
}  // namespace ms
