// Tests for Step 3 conflict resolution (Problem 17 / Algorithm 4) and the
// majority-voting alternative of Section 5.6, including the paper's
// Figure 4 dirty-chemical-symbols scenario.
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synth/conflict_resolution.h"
#include "table/string_pool.h"

namespace ms {
namespace {

class ConflictFixture : public ::testing::Test {
 protected:
  ConflictFixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    return BinaryTable::FromPairs(std::move(pairs));
  }

  std::vector<const BinaryTable*> Ptrs() {
    std::vector<const BinaryTable*> out;
    for (const auto& t : tables_) out.push_back(&t);
    return out;
  }

  std::shared_ptr<StringPool> pool_;
  std::vector<BinaryTable> tables_;
};

TEST_F(ConflictFixture, CleanPartitionKeepsEverything) {
  tables_.push_back(Make({{"hydrogen", "h"}, {"helium", "he"}}));
  tables_.push_back(Make({{"helium", "he"}, {"lithium", "li"}}));
  auto r = ResolveConflicts(Ptrs());
  EXPECT_EQ(r.kept.size(), 2u);
  EXPECT_EQ(r.tables_removed, 0u);
  EXPECT_TRUE(IsConflictFree(Ptrs(), r.kept));
}

TEST_F(ConflictFixture, Figure4DirtyTableIsRemoved) {
  // Three clean periodic-table fragments and one dirty table that swaps the
  // symbols of Tellurium and Iodine (the paper's Figure 4).
  tables_.push_back(Make({{"tellurium", "te"}, {"iodine", "i"},
                          {"xenon", "xe"}}));
  tables_.push_back(Make({{"tellurium", "te"}, {"iodine", "i"},
                          {"cesium", "cs"}}));
  tables_.push_back(Make({{"iodine", "i"}, {"xenon", "xe"},
                          {"cesium", "cs"}}));
  tables_.push_back(Make({{"tellurium", "i"}, {"iodine", "te"},
                          {"xenon", "xe"}}));  // dirty
  auto r = ResolveConflicts(Ptrs());
  EXPECT_EQ(r.tables_removed, 1u);
  ASSERT_EQ(r.kept.size(), 3u);
  for (size_t k : r.kept) EXPECT_NE(k, 3u);  // the dirty table is gone
  EXPECT_TRUE(IsConflictFree(Ptrs(), r.kept));
}

TEST_F(ConflictFixture, MajorityStaysWhenMinorityConflicts) {
  // state -> capital (majority) vs state -> largest-city (one stray table):
  // the Section 5.6 Washington/Olympia-vs-Seattle confusion.
  tables_.push_back(Make({{"washington", "olympia"}, {"oregon", "salem"}}));
  tables_.push_back(Make({{"washington", "olympia"}, {"idaho", "boise"}}));
  tables_.push_back(Make({{"washington", "seattle"}, {"oregon", "salem"}}));
  auto r = ResolveConflicts(Ptrs());
  EXPECT_TRUE(IsConflictFree(Ptrs(), r.kept));
  // The seattle table conflicts with two olympia tables; it must go.
  for (size_t k : r.kept) EXPECT_NE(k, 2u);
}

TEST_F(ConflictFixture, SynonymousRightsAreNotConflicts) {
  tables_.push_back(Make({{"germany", "deu"}}));
  tables_.push_back(Make({{"germany", "ger"}}));
  SynonymDictionary dict(pool_);
  dict.AddSynonym("deu", "ger");
  ConflictResolutionOptions opts;
  opts.synonyms = &dict;
  auto r = ResolveConflicts(Ptrs(), opts);
  EXPECT_EQ(r.kept.size(), 2u);
  EXPECT_TRUE(IsConflictFree(Ptrs(), r.kept, opts));
  // Without the dictionary one table must be dropped.
  auto r2 = ResolveConflicts(Ptrs());
  EXPECT_EQ(r2.kept.size(), 1u);
}

TEST_F(ConflictFixture, EmptyPartition) {
  auto r = ResolveConflicts({});
  EXPECT_TRUE(r.kept.empty());
  EXPECT_EQ(r.tables_removed, 0u);
}

TEST_F(ConflictFixture, SingleTableAlwaysKept) {
  tables_.push_back(Make({{"a", "1"}, {"a2", "1"}}));
  auto r = ResolveConflicts(Ptrs());
  EXPECT_EQ(r.kept.size(), 1u);
}

TEST_F(ConflictFixture, PairwiseIrreconcilableKeepsOne) {
  // Two tables disagreeing on every left value: one survives.
  tables_.push_back(Make({{"a", "1"}, {"b", "2"}}));
  tables_.push_back(Make({{"a", "9"}, {"b", "8"}}));
  auto r = ResolveConflicts(Ptrs());
  EXPECT_EQ(r.kept.size(), 1u);
  EXPECT_TRUE(IsConflictFree(Ptrs(), r.kept));
}

TEST_F(ConflictFixture, RemovalPrefersTheMostConflictingTable) {
  // One poison table conflicts with three others on the same left value.
  tables_.push_back(Make({{"k", "good"}, {"x1", "a"}}));
  tables_.push_back(Make({{"k", "good"}, {"x2", "b"}}));
  tables_.push_back(Make({{"k", "good"}, {"x3", "c"}}));
  tables_.push_back(Make({{"k", "bad"}, {"x4", "d"}}));
  auto r = ResolveConflicts(Ptrs());
  EXPECT_EQ(r.tables_removed, 1u);
  for (size_t k : r.kept) EXPECT_NE(k, 3u);
}

TEST_F(ConflictFixture, IsConflictFreeDetectsViolations) {
  tables_.push_back(Make({{"a", "1"}}));
  tables_.push_back(Make({{"a", "2"}}));
  EXPECT_FALSE(IsConflictFree(Ptrs(), {0, 1}));
  EXPECT_TRUE(IsConflictFree(Ptrs(), {0}));
  EXPECT_TRUE(IsConflictFree(Ptrs(), {}));
}

/// Property: the resolved subset is always conflict-free and the algorithm
/// terminates within |tables| iterations.
class ConflictPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConflictPropertyTest, AlwaysConflictFree) {
  Rng rng(GetParam());
  StringPool pool;
  std::vector<BinaryTable> tables;
  // 12 tables over 10 left values with 3 possible rights each.
  for (int t = 0; t < 12; ++t) {
    std::vector<ValuePair> pairs;
    for (int l = 0; l < 10; ++l) {
      if (!rng.Bernoulli(0.5)) continue;
      ValueId left = pool.Intern("l" + std::to_string(l));
      ValueId right = pool.Intern("r" + std::to_string(l) + "_" +
                                  std::to_string(rng.Uniform(3)));
      pairs.push_back({left, right});
    }
    tables.push_back(BinaryTable::FromPairs(std::move(pairs)));
  }
  std::vector<const BinaryTable*> ptrs;
  for (const auto& t : tables) ptrs.push_back(&t);
  auto r = ResolveConflicts(ptrs);
  EXPECT_TRUE(IsConflictFree(ptrs, r.kept));
  EXPECT_LE(r.iterations, tables.size() + 1);
  EXPECT_EQ(r.kept.size() + r.tables_removed, tables.size());
}

INSTANTIATE_TEST_SUITE_P(RandomPartitions, ConflictPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------- MajorityVote

TEST_F(ConflictFixture, MajorityVotePicksSupportedRight) {
  tables_.push_back(Make({{"tellurium", "te"}}));
  tables_.push_back(Make({{"tellurium", "te"}}));
  tables_.push_back(Make({{"tellurium", "i"}}));
  auto pairs = MajorityVotePairs(Ptrs());
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pool_->Get(pairs[0].right), "te");
}

TEST_F(ConflictFixture, MajorityVoteKeepsAllLefts) {
  tables_.push_back(Make({{"a", "1"}, {"b", "2"}}));
  tables_.push_back(Make({{"a", "9"}, {"c", "3"}}));
  auto pairs = MajorityVotePairs(Ptrs());
  EXPECT_EQ(pairs.size(), 3u);  // a, b, c each resolved to one right
}

TEST_F(ConflictFixture, MajorityVoteOutputIsFunctional) {
  tables_.push_back(Make({{"a", "1"}, {"a2", "1"}}));
  tables_.push_back(Make({{"a", "2"}, {"a2", "1"}}));
  tables_.push_back(Make({{"a", "2"}}));
  auto pairs = MajorityVotePairs(Ptrs());
  BinaryTable merged = BinaryTable::FromPairs(pairs);
  EXPECT_DOUBLE_EQ(merged.FdHoldRatio(), 1.0);
  // "a" -> "2" wins 2:1.
  for (const auto& p : pairs) {
    if (pool_->Get(p.left) == "a") EXPECT_EQ(pool_->Get(p.right), "2");
  }
}

}  // namespace
}  // namespace ms
