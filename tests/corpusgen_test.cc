// Tests for the ground-truth domain library, procedural relationship
// families, and the corpus/world generator (the paper-corpus substitute; see
// DESIGN.md §1 for the substitution argument these tests pin down).
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "corpusgen/builtin_domains.h"
#include "corpusgen/generator.h"
#include "corpusgen/procedural.h"

namespace ms {
namespace {

// --------------------------------------------------------------- Builtins

TEST(BuiltinDomainsTest, WebSpecsHaveUniqueNames) {
  auto specs = BuiltinWebRelationships();
  std::set<std::string> names;
  for (const auto& s : specs) EXPECT_TRUE(names.insert(s.name).second);
  EXPECT_GE(specs.size(), 15u);
}

TEST(BuiltinDomainsTest, SpecsAreInternallyFunctional) {
  // Within one spec, no left form may map to two different rights
  // (otherwise the "ground truth" itself would violate Definition 1).
  for (const auto& specs :
       {BuiltinWebRelationships(), BuiltinEnterpriseRelationships()}) {
    for (const auto& s : specs) {
      std::unordered_map<std::string, std::string> seen;
      for (const auto& e : s.entities) {
        for (const auto& form : e.left_forms) {
          auto [it, inserted] = seen.emplace(form, e.right);
          EXPECT_TRUE(inserted || it->second == e.right)
              << s.name << ": left form '" << form << "' maps to both '"
              << it->second << "' and '" << e.right << "'";
        }
      }
    }
  }
}

TEST(BuiltinDomainsTest, CountryCodeSystemsDiverge) {
  auto specs = BuiltinWebRelationships();
  const RelationshipSpec* iso = nullptr;
  const RelationshipSpec* ioc = nullptr;
  for (const auto& s : specs) {
    if (s.name == "country_iso3") iso = &s;
    if (s.name == "country_ioc") ioc = &s;
  }
  ASSERT_NE(iso, nullptr);
  ASSERT_NE(ioc, nullptr);
  ASSERT_EQ(iso->num_entities(), ioc->num_entities());
  size_t diverging = 0;
  for (size_t i = 0; i < iso->num_entities(); ++i) {
    ASSERT_EQ(iso->entities[i].left_forms[0], ioc->entities[i].left_forms[0]);
    if (iso->entities[i].right != ioc->entities[i].right) ++diverging;
  }
  // Real-world divergence (Algeria, Germany, Netherlands, ...) is
  // substantial but partial — both needed for the negative-signal test.
  EXPECT_GT(diverging, 10u);
  EXPECT_LT(diverging, iso->num_entities());
  // And they declare each other as siblings.
  EXPECT_FALSE(iso->sibling_relations.empty());
}

TEST(BuiltinDomainsTest, SynonymsArePresent) {
  auto specs = BuiltinWebRelationships();
  size_t with_synonyms = 0;
  for (const auto& s : specs) {
    for (const auto& e : s.entities) {
      if (e.left_forms.size() > 1) {
        ++with_synonyms;
        break;
      }
    }
  }
  EXPECT_GE(with_synonyms, 3u);
}

TEST(BuiltinDomainsTest, KindMixIncludesTemporalAndMeaningless) {
  auto specs = BuiltinWebRelationships();
  bool temporal = false, meaningless = false;
  for (const auto& s : specs) {
    temporal |= s.kind == RelationKind::kTemporal;
    meaningless |= s.kind == RelationKind::kMeaningless;
  }
  EXPECT_TRUE(temporal);
  EXPECT_TRUE(meaningless);
}

TEST(BuiltinDomainsTest, EnterpriseSpecsAreOffKb) {
  for (const auto& s : BuiltinEnterpriseRelationships()) {
    EXPECT_FALSE(s.in_freebase) << s.name;
    EXPECT_FALSE(s.in_yago) << s.name;
    EXPECT_FALSE(s.has_wiki_table) << s.name;
  }
}

// ------------------------------------------------------------- Procedural

TEST(ProceduralTest, DeterministicForSeed) {
  ProceduralOptions opts;
  auto a = ProceduralRelationships(opts);
  auto b = ProceduralRelationships(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].num_entities(), b[i].num_entities());
  }
}

TEST(ProceduralTest, EntityCountsWithinBounds) {
  ProceduralOptions opts;
  opts.min_entities = 10;
  opts.max_entities = 20;
  for (const auto& s : ProceduralRelationships(opts)) {
    EXPECT_GE(s.num_entities(), 10u);
    EXPECT_LE(s.num_entities(), 20u);
  }
}

TEST(ProceduralTest, SiblingSystemsShareLeftsAndDiverge) {
  ProceduralOptions opts;
  opts.num_families = 20;
  opts.sibling2_probability = 1.0;  // force 2-system families
  opts.sibling3_probability = 0.0;
  opts.many_to_one_probability = 0.0;
  opts.divergence_fraction = 0.4;
  auto specs = ProceduralRelationships(opts);
  ASSERT_EQ(specs.size(), 40u);
  for (size_t f = 0; f < 20; ++f) {
    const auto& s0 = specs[2 * f];
    const auto& s1 = specs[2 * f + 1];
    ASSERT_EQ(s0.num_entities(), s1.num_entities());
    size_t diverge = 0;
    for (size_t i = 0; i < s0.num_entities(); ++i) {
      EXPECT_EQ(s0.entities[i].left_forms[0], s1.entities[i].left_forms[0]);
      if (s0.entities[i].right != s1.entities[i].right) ++diverge;
    }
    EXPECT_GT(diverge, 0u);
    EXPECT_LT(diverge, s0.num_entities());
    EXPECT_EQ(s0.sibling_relations.size(), 1u);
  }
}

TEST(ProceduralTest, CodesAreUniqueWithinSystem) {
  ProceduralOptions opts;
  opts.many_to_one_probability = 0.0;
  for (const auto& s : ProceduralRelationships(opts)) {
    std::set<std::string> codes;
    for (const auto& e : s.entities) {
      EXPECT_TRUE(codes.insert(e.right).second)
          << s.name << " duplicate code " << e.right;
    }
  }
}

TEST(ProceduralTest, ManyToOneFamiliesHaveFewGroups) {
  ProceduralOptions opts;
  opts.many_to_one_probability = 1.0;
  auto specs = ProceduralRelationships(opts);
  for (const auto& s : specs) {
    EXPECT_FALSE(s.one_to_one);
    std::set<std::string> groups;
    for (const auto& e : s.entities) groups.insert(e.right);
    EXPECT_LT(groups.size(), s.num_entities());
  }
}

TEST(ProceduralTest, LongTailEntitiesAvoidCodeCollisions) {
  Rng rng(4);
  RelationshipSpec spec;
  spec.entities = {{{"Existing Entity"}, "EXI"}};
  auto tail = LongTailEntities(spec, 50, rng);
  EXPECT_EQ(tail.size(), 50u);
  std::set<std::string> codes = {"EXI"};
  for (const auto& e : tail) {
    EXPECT_TRUE(codes.insert(e.right).second) << e.right;
  }
}

TEST(ProceduralTest, RandomWordShape) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::string w = RandomWord(rng, 2, 3);
    EXPECT_GE(w.size(), 3u);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(w[0])));
  }
}

// -------------------------------------------------------------- Generator

TEST(GeneratorTest, WebWorldShape) {
  GeneratorOptions opts;
  opts.seed = 5;
  GeneratedWorld world = GenerateWebWorld(opts);
  EXPECT_GT(world.corpus.size(), 500u);
  EXPECT_GE(world.cases.size(), 60u);
  EXPECT_FALSE(world.trusted.empty());
  // Meaningless relations are excluded from benchmark cases.
  for (const auto& c : world.cases) {
    EXPECT_NE(c.kind, RelationKind::kMeaningless);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.seed = 77;
  GeneratedWorld a = GenerateWebWorld(opts);
  GeneratedWorld b = GenerateWebWorld(opts);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].name, b.cases[i].name);
    EXPECT_EQ(a.cases[i].ground_truth.size(), b.cases[i].ground_truth.size());
  }
}

TEST(GeneratorTest, GroundTruthIsNormalizedAndFunctional) {
  GeneratorOptions opts;
  opts.seed = 3;
  GeneratedWorld world = GenerateWebWorld(opts);
  const StringPool& pool = world.corpus.pool();
  for (const auto& c : world.cases) {
    ASSERT_FALSE(c.ground_truth.empty()) << c.name;
    for (const auto& p : c.ground_truth.pairs()) {
      std::string_view l = pool.Get(p.left);
      // Normalized: no upper case, no footnotes.
      for (char ch : l) {
        EXPECT_FALSE(std::isupper(static_cast<unsigned char>(ch)))
            << c.name << ": " << l;
      }
    }
    EXPECT_DOUBLE_EQ(c.ground_truth.FdHoldRatio(), 1.0) << c.name;
  }
}

TEST(GeneratorTest, WikiTablesExistForFlaggedSpecs) {
  GeneratorOptions opts;
  opts.seed = 13;
  GeneratedWorld world = GenerateWebWorld(opts);
  size_t wiki = 0, web = 0, ent = 0;
  for (const auto& t : world.corpus.tables()) {
    wiki += t.source == TableSource::kWiki;
    web += t.source == TableSource::kWeb;
    ent += t.source == TableSource::kEnterprise;
  }
  EXPECT_GT(wiki, 0u);
  EXPECT_GT(web, wiki);
  EXPECT_EQ(ent, 0u);
}

TEST(GeneratorTest, PopularityScaleGrowsCorpus) {
  GeneratorOptions small, large;
  small.seed = large.seed = 21;
  small.popularity_scale = 0.3;
  large.popularity_scale = 1.0;
  EXPECT_LT(GenerateWebWorld(small).corpus.size(),
            GenerateWebWorld(large).corpus.size());
}

TEST(GeneratorTest, TrustedFeedsExtendBeyondWebCoverage) {
  GeneratorOptions opts;
  opts.seed = 31;
  opts.trusted_tail_factor = 1.0;
  GeneratedWorld world = GenerateWebWorld(opts);
  ASSERT_FALSE(world.trusted.empty());
  // Find the airport_iata case: its ground truth must be about twice the
  // spec size because of the long tail, and the trusted feed covers it.
  int ci = world.CaseIndex("airport_iata");
  ASSERT_GE(ci, 0);
  const auto& truth = world.cases[ci].ground_truth;
  bool found = false;
  for (const auto& feed : world.trusted) {
    if (feed.IntersectSize(truth) == truth.size()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GeneratorTest, EnterpriseWorldProfile) {
  GeneratorOptions opts;
  opts.seed = 41;
  GeneratedWorld world = GenerateEnterpriseWorld(opts);
  EXPECT_GE(world.cases.size(), 20u);
  size_t ent = 0;
  for (const auto& t : world.corpus.tables()) {
    ent += t.source == TableSource::kEnterprise;
  }
  EXPECT_EQ(ent, world.corpus.size());  // everything is a spreadsheet
}

TEST(GeneratorTest, KbFlagsPropagateToCases) {
  GeneratorOptions opts;
  opts.seed = 51;
  GeneratedWorld world = GenerateWebWorld(opts);
  int ci = world.CaseIndex("company_ticker");
  ASSERT_GE(ci, 0);
  EXPECT_FALSE(world.cases[ci].in_freebase);  // stocks missing from KBs
  ci = world.CaseIndex("state_abbrev");
  ASSERT_GE(ci, 0);
  EXPECT_TRUE(world.cases[ci].in_freebase);
}

TEST(GeneratorTest, CorpusContainsDirtyArtifacts) {
  GeneratorOptions opts;
  opts.seed = 61;
  opts.footnote_probability = 0.2;
  GeneratedWorld world = GenerateWebWorld(opts);
  const StringPool& pool = world.corpus.pool();
  bool footnote = false;
  for (const auto& t : world.corpus.tables()) {
    for (const auto& col : t.columns) {
      for (ValueId v : col.cells) {
        if (pool.Get(v).find('[') != std::string_view::npos) footnote = true;
      }
    }
  }
  EXPECT_TRUE(footnote);
}

}  // namespace
}  // namespace ms
