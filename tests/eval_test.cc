// Tests for benchmark metrics (Section 5.1), the evaluation runner, and the
// report formatting helpers.
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace ms {
namespace {

BinaryTable MakePairs(StringPool* pool,
                      const std::vector<std::pair<std::string, std::string>>&
                          rows) {
  std::vector<ValuePair> pairs;
  for (const auto& [l, r] : rows) {
    pairs.push_back({pool->Intern(l), pool->Intern(r)});
  }
  return BinaryTable::FromPairs(std::move(pairs));
}

TEST(MetricsTest, PerfectPrediction) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}, {"b", "2"}});
  PrfScore s = ScoreRelation(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.fscore, 1.0);
}

TEST(MetricsTest, PartialOverlap) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}, {"b", "2"}, {"c", "3"},
                                        {"d", "4"}});
  BinaryTable pred = MakePairs(&pool, {{"a", "1"}, {"b", "2"}, {"x", "9"}});
  PrfScore s = ScoreRelation(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_NEAR(s.fscore, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(MetricsTest, DisjointScoresZero) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}});
  BinaryTable pred = MakePairs(&pool, {{"b", "2"}});
  PrfScore s = ScoreRelation(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.fscore, 0.0);
}

TEST(MetricsTest, EmptyPredictionOrTruth) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}});
  BinaryTable empty;
  EXPECT_DOUBLE_EQ(ScoreRelation(empty, truth).fscore, 0.0);
  EXPECT_DOUBLE_EQ(ScoreRelation(truth, empty).fscore, 0.0);
}

TEST(MetricsTest, FindBestRelationPicksHighestF) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}, {"b", "2"}, {"c", "3"}});
  std::vector<BinaryTable> rels;
  rels.push_back(MakePairs(&pool, {{"a", "1"}}));
  rels.push_back(MakePairs(&pool, {{"a", "1"}, {"b", "2"}}));
  rels.push_back(MakePairs(&pool, {{"z", "0"}}));
  BestRelation best = FindBestRelation(rels, truth);
  EXPECT_EQ(best.index, 1);
  EXPECT_GT(best.score.fscore, 0.7);
}

TEST(MetricsTest, FindBestRelationEmptySet) {
  StringPool pool;
  BinaryTable truth = MakePairs(&pool, {{"a", "1"}});
  BestRelation best = FindBestRelation({}, truth);
  EXPECT_EQ(best.index, -1);
  EXPECT_DOUBLE_EQ(best.score.fscore, 0.0);
}

TEST(MetricsTest, AggregateExcludesMissesFromPrecisionOnly) {
  // Footnote 5 semantics: a method that misses a case entirely doesn't
  // drag avg precision, but does drag recall/f.
  std::vector<PrfScore> per_case = {
      {1.0, 0.5, 2.0 / 3.0},
      {0.0, 0.0, 0.0},  // complete miss
  };
  AggregateScore agg = Aggregate(per_case);
  EXPECT_DOUBLE_EQ(agg.avg_precision, 1.0);
  EXPECT_DOUBLE_EQ(agg.avg_recall, 0.25);
  EXPECT_NEAR(agg.avg_fscore, (2.0 / 3.0) / 2, 1e-12);
  EXPECT_EQ(agg.cases_with_hit, 1u);
  EXPECT_EQ(agg.cases_total, 2u);
}

TEST(MetricsTest, AggregateEmpty) {
  AggregateScore agg = Aggregate({});
  EXPECT_DOUBLE_EQ(agg.avg_fscore, 0.0);
  EXPECT_EQ(agg.cases_total, 0u);
}

TEST(RunnerTest, EvaluateMethodAlignsWithCases) {
  GeneratedWorld world;
  StringPool& pool = world.corpus.pool();
  BenchmarkCase c1;
  c1.name = "case1";
  c1.ground_truth = MakePairs(&pool, {{"a", "1"}, {"b", "2"}});
  BenchmarkCase c2;
  c2.name = "case2";
  c2.ground_truth = MakePairs(&pool, {{"x", "7"}});
  world.cases.push_back(std::move(c1));
  world.cases.push_back(std::move(c2));

  MethodOutput out;
  out.method_name = "toy";
  out.runtime_seconds = 1.5;
  out.relations.push_back(MakePairs(&pool, {{"a", "1"}, {"b", "2"}}));

  MethodEvaluation eval = EvaluateMethod(out, world);
  EXPECT_EQ(eval.method_name, "toy");
  ASSERT_EQ(eval.per_case.size(), 2u);
  EXPECT_DOUBLE_EQ(eval.per_case[0].fscore, 1.0);
  EXPECT_DOUBLE_EQ(eval.per_case[1].fscore, 0.0);
  EXPECT_EQ(eval.best_relation[0], 0);
  EXPECT_EQ(eval.best_relation[1], -1);
  EXPECT_DOUBLE_EQ(eval.runtime_seconds, 1.5);
  EXPECT_DOUBLE_EQ(eval.aggregate.avg_fscore, 0.5);
}

TEST(RunnerTest, CaseIndexLookup) {
  GeneratedWorld world;
  BenchmarkCase c;
  c.name = "findme";
  world.cases.push_back(std::move(c));
  EXPECT_EQ(world.CaseIndex("findme"), 0);
  EXPECT_EQ(world.CaseIndex("missing"), -1);
}

TEST(ReportTest, TextTableAlignsColumns) {
  TextTable t({"method", "f"});
  t.AddRow({"Synthesis", "0.90"});
  t.AddRow({"YAGO", "0.2"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("Synthesis  0.90"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(ReportTest, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only one"});
  std::ostringstream out;
  t.Print(out);  // must not crash; row padded to 3 columns
  EXPECT_NE(out.str().find("only one"), std::string::npos);
}

TEST(ReportTest, BannerFormat) {
  std::ostringstream out;
  PrintBanner(out, "Figure 7");
  EXPECT_EQ(out.str(), "\n== Figure 7 ==\n");
}

}  // namespace
}  // namespace ms
