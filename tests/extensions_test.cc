// Tests for the extension modules: the exact optimal partitioner (greedy
// validation), redundant-cluster consolidation (Appendix K future work),
// temporal-mapping detection (Appendix J future work), and mapping
// serialization for curation handoff.
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synth/exact_partition.h"
#include "synth/mapping_io.h"
#include "synth/redundancy.h"
#include "synth/temporal.h"

namespace ms {
namespace {

// --------------------------------------------------------- ExactPartition

CompatibilityGraph Figure3Graph() {
  CompatibilityGraph g(5);
  g.AddEdge(0, 1, 0.67, 0.0);
  g.AddEdge(2, 3, 0.6, 0.0);
  g.AddEdge(2, 4, 0.8, 0.0);
  g.AddEdge(3, 4, 0.7, 0.0);
  g.AddEdge(1, 2, 0.5, 0.0);
  g.AddEdge(0, 2, 0.0, -0.7);
  g.AddEdge(1, 3, 0.0, -0.33);
  g.Finalize();
  return g;
}

TEST(ExactPartitionTest, SolvesFigure3Optimally) {
  PartitionerOptions opts;
  opts.theta_edge = 0.0;
  auto exact = ExactPartition(Figure3Graph(), opts);
  EXPECT_NEAR(exact.objective, 2.77, 1e-9);
  // Greedy happens to be optimal on this instance (Example 12).
  auto g = Figure3Graph();
  auto greedy = GreedyPartition(g, opts);
  EXPECT_NEAR(PartitionObjective(g, greedy, opts), exact.objective, 1e-9);
}

TEST(ExactPartitionTest, RespectsHardConstraint) {
  CompatibilityGraph g(3);
  g.AddEdge(0, 1, 1.0, -0.9);  // tempting but forbidden
  g.AddEdge(1, 2, 0.4, 0.0);
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.0;
  auto exact = ExactPartition(g, opts);
  EXPECT_NEAR(exact.objective, 0.4, 1e-9);
  EXPECT_NE(exact.partition.partition_of[0],
            exact.partition.partition_of[1]);
}

TEST(ExactPartitionTest, EmptyAndSingleton) {
  CompatibilityGraph g0(0);
  g0.Finalize();
  EXPECT_DOUBLE_EQ(ExactPartition(g0).objective, 0.0);
  CompatibilityGraph g1(1);
  g1.Finalize();
  auto r = ExactPartition(g1);
  EXPECT_EQ(r.partition.num_partitions, 1u);
}

TEST(ExactPartitionTest, EnumerationCountIsBellNumber) {
  // With no constraints, the enumerator must visit exactly Bell(n)
  // partitions: Bell(4) = 15.
  CompatibilityGraph g(4);
  g.Finalize();
  auto r = ExactPartition(g);
  EXPECT_EQ(r.partitions_enumerated, 15u);
}

/// Greedy-vs-exact property: greedy never violates constraints and its
/// objective is within a modest factor of optimal on random small graphs.
class GreedyQualityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyQualityTest, GreedyNearOptimal) {
  Rng rng(GetParam());
  const size_t n = 9;
  CompatibilityGraph g(n);
  for (size_t e = 0; e < 16; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    g.AddEdge(u, v, rng.UniformDouble(),
              rng.Bernoulli(0.25) ? -rng.UniformDouble() : 0.0);
  }
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.0;
  auto exact = ExactPartition(g, opts);
  auto greedy = GreedyPartition(g, opts);
  const double greedy_obj = PartitionObjective(g, greedy, opts);
  EXPECT_LE(greedy_obj, exact.objective + 1e-9);
  EXPECT_GE(greedy_obj, 0.5 * exact.objective - 1e-9)
      << "greedy fell below half of optimal (seed " << GetParam() << ")";
  EXPECT_TRUE(SatisfiesNegativeConstraint(g, greedy, opts.tau));
}

INSTANTIATE_TEST_SUITE_P(RandomSmallGraphs, GreedyQualityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

// ------------------------------------------------------------- Redundancy

class ExtensionFixture : public ::testing::Test {
 protected:
  ExtensionFixture() : pool_(std::make_shared<StringPool>()) {}

  SynthesizedMapping MakeMapping(
      const std::vector<std::pair<std::string, std::string>>& rows,
      size_t domains = 1) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    SynthesizedMapping m;
    m.merged = BinaryTable::FromPairs(std::move(pairs));
    m.num_domains = domains;
    return m;
  }

  std::shared_ptr<StringPool> pool_;
};

TEST_F(ExtensionFixture, ConsolidatesOverlappingConsistentClusters) {
  std::vector<SynthesizedMapping> ms;
  ms.push_back(MakeMapping({{"a", "1"}, {"b", "2"}, {"c", "3"}}, 4));
  ms.push_back(MakeMapping({{"b", "2"}, {"c", "3"}, {"d", "4"}}, 2));
  ms.push_back(MakeMapping({{"x", "7"}, {"y", "8"}}, 3));
  auto stats = ConsolidateRedundantMappings(&ms, *pool_);
  EXPECT_EQ(stats.clusters_in, 3u);
  EXPECT_EQ(stats.clusters_out, 2u);
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(ms[0].size(), 4u);  // a, b, c, d consolidated
  EXPECT_EQ(ms[0].num_domains, 6u);
}

TEST_F(ExtensionFixture, NeverConsolidatesConflictingClusters) {
  std::vector<SynthesizedMapping> ms;
  ms.push_back(MakeMapping({{"algeria", "dza"}, {"albania", "alb"}}));
  ms.push_back(MakeMapping({{"algeria", "alg"}, {"albania", "alb"}}));
  auto stats = ConsolidateRedundantMappings(&ms, *pool_);
  EXPECT_EQ(stats.clusters_out, 2u);  // ISO and IOC stay apart
  EXPECT_EQ(stats.merges, 0u);
}

TEST_F(ExtensionFixture, ContainmentThresholdControlsConsolidation) {
  std::vector<SynthesizedMapping> ms;
  ms.push_back(MakeMapping({{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}}));
  ms.push_back(MakeMapping({{"a", "1"}, {"x", "7"}, {"y", "8"}, {"z", "9"}}));
  RedundancyOptions strict;
  strict.min_containment = 0.5;  // overlap 1/4 = 0.25 < 0.5
  auto s1 = ConsolidateRedundantMappings(&ms, *pool_, strict);
  EXPECT_EQ(s1.clusters_out, 2u);
  RedundancyOptions loose;
  loose.min_containment = 0.2;
  auto s2 = ConsolidateRedundantMappings(&ms, *pool_, loose);
  EXPECT_EQ(s2.clusters_out, 1u);
}

TEST_F(ExtensionFixture, EmptyAndSingletonInputs) {
  std::vector<SynthesizedMapping> empty;
  auto s = ConsolidateRedundantMappings(&empty, *pool_);
  EXPECT_EQ(s.clusters_out, 0u);
  std::vector<SynthesizedMapping> one;
  one.push_back(MakeMapping({{"a", "1"}}));
  s = ConsolidateRedundantMappings(&one, *pool_);
  EXPECT_EQ(s.clusters_out, 1u);
}

// --------------------------------------------------------------- Temporal

TEST_F(ExtensionFixture, FlagsManySnapshotClustersAsTemporal) {
  // Five season snapshots of (driver -> team): same lefts, mostly
  // different rights each season. Names are real words so the approximate
  // matcher cannot accidentally equate distinct rights ("team0" and
  // "team1" would be edit distance 1).
  const std::vector<std::string> drivers = {"hamilton", "vettel",  "alonso",
                                            "bottas",   "raikkonen",
                                            "verstappen"};
  const std::vector<std::string> teams = {"ferrari",  "mercedes", "mclaren",
                                          "redbull",  "renault",  "williams"};
  std::vector<SynthesizedMapping> ms;
  for (size_t season = 0; season < 5; ++season) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (size_t d = 0; d < drivers.size(); ++d) {
      rows.push_back({drivers[d], teams[(d + season) % teams.size()]});
    }
    ms.push_back(MakeMapping(rows));
  }
  auto result = DetectTemporalMappings(ms, *pool_);
  EXPECT_EQ(result.flagged, 5u);
  for (bool t : result.is_temporal) EXPECT_TRUE(t);
}

TEST_F(ExtensionFixture, CodeSystemSiblingsAreNotFlagged) {
  // Three code systems (ISO/IOC/FIFA-like): group of 3 < min_group_size 4.
  const std::vector<std::string> countries = {
      "germany", "france", "spain", "italy", "poland", "norway", "greece",
      "turkey"};
  const std::vector<std::string> codes = {"kormav", "telzin", "burrog",
                                          "welfin", "dasqua", "hintor",
                                          "mizzen", "purlov"};
  std::vector<SynthesizedMapping> ms;
  for (size_t sys = 0; sys < 3; ++sys) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (size_t c = 0; c < countries.size(); ++c) {
      rows.push_back({countries[c],
                      codes[(c + sys * 3) % codes.size()]});
    }
    ms.push_back(MakeMapping(rows));
  }
  auto result = DetectTemporalMappings(ms, *pool_);
  EXPECT_EQ(result.flagged, 0u);
  ASSERT_EQ(result.groups.size(), 1u);  // grouped but below the threshold
  EXPECT_EQ(result.groups[0].size(), 3u);
}

TEST_F(ExtensionFixture, DisjointRelationsFormNoGroups) {
  std::vector<SynthesizedMapping> ms;
  ms.push_back(MakeMapping({{"a", "1"}, {"b", "2"}}));
  ms.push_back(MakeMapping({{"x", "7"}, {"y", "8"}}));
  auto result = DetectTemporalMappings(ms, *pool_);
  EXPECT_TRUE(result.groups.empty());
  EXPECT_EQ(result.flagged, 0u);
}

TEST_F(ExtensionFixture, ConsistentDuplicatesAreNotTemporal) {
  // Same lefts, same rights: redundancy, not temporality.
  std::vector<SynthesizedMapping> ms;
  for (int i = 0; i < 5; ++i) {
    ms.push_back(MakeMapping({{"a", "1"}, {"b", "2"}, {"c", "3"}}));
  }
  auto result = DetectTemporalMappings(ms, *pool_);
  EXPECT_EQ(result.flagged, 0u);
}

// -------------------------------------------------------------- MappingIO

TEST_F(ExtensionFixture, MappingTsvRoundTrip) {
  std::vector<SynthesizedMapping> ms;
  SynthesizedMapping m = MakeMapping({{"south korea", "kor"},
                                      {"korea republic of", "kor"},
                                      {"japan", "jpn"}},
                                     7);
  m.left_label = "Country";
  m.right_label = "Code";
  m.kept_tables = {1, 2, 3};
  m.member_tables = {1, 2, 3, 4};
  ms.push_back(std::move(m));

  std::ostringstream out;
  ASSERT_TRUE(WriteMappingsTsv(ms, *pool_, out).ok());

  auto pool2 = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> loaded;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadMappingsTsv(in, pool2.get(), &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].left_label, "Country");
  EXPECT_EQ(loaded[0].right_label, "Code");
  EXPECT_EQ(loaded[0].num_domains, 7u);
  EXPECT_EQ(loaded[0].kept_tables.size(), 3u);
  EXPECT_EQ(loaded[0].member_tables.size(), 4u);
  EXPECT_EQ(loaded[0].size(), 3u);
  // Values round-trip by string.
  bool found = false;
  for (const auto& p : loaded[0].merged.pairs()) {
    if (pool2->Get(p.left) == "korea republic of") {
      EXPECT_EQ(pool2->Get(p.right), "kor");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExtensionFixture, MappingTsvRejectsGarbage) {
  auto pool2 = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> loaded;
  std::istringstream bad("not a mapping\n");
  EXPECT_FALSE(ReadMappingsTsv(bad, pool2.get(), &loaded).ok());
  std::istringstream bad2("#mapping\tA\tB\t1\t1\t1\nonly-one-cell\n");
  EXPECT_FALSE(ReadMappingsTsv(bad2, pool2.get(), &loaded).ok());
}

TEST_F(ExtensionFixture, MappingFileIoMissingPath) {
  auto pool2 = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> loaded;
  EXPECT_FALSE(
      LoadMappings("/nonexistent/mappings.tsv", pool2.get(), &loaded).ok());
}

}  // namespace
}  // namespace ms
