// Tests for Step 1 candidate extraction (Section 3, Algorithm 1): PMI-based
// column filtering and approximate-FD column-pair filtering, reproducing the
// paper's Table 7 walk-through (Examples 5 and 6).
#include <thread>

#include <gtest/gtest.h>

#include "extract/candidate_extraction.h"
#include "extract/normalization_cache.h"
#include "stats/inverted_index.h"
#include "table/corpus.h"

namespace ms {
namespace {

/// Builds the Table 7 scenario: a schedule table with coherent team/stadium
/// columns (values recur across many corpus tables) and an incoherent
/// Location column (values never recur).
class ExtractFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    teams_ = {"bears", "lions", "vikings", "packers", "eagles"};
    stadiums_ = {"soldier field", "ford field", "us bank stadium",
                 "lambeau field", "lincoln field"};
    // Background tables give teams/stadiums strong co-occurrence stats.
    for (int i = 0; i < 12; ++i) {
      corpus_.AddFromStrings("bg" + std::to_string(i), TableSource::kWeb,
                             {"team"}, {teams_});
      corpus_.AddFromStrings("bgs" + std::to_string(i), TableSource::kWeb,
                             {"stadium"}, {stadiums_});
    }
    // The schedule table under test: home, away, date, stadium, location.
    std::vector<std::string> home = {"bears", "lions", "lions", "vikings",
                                     "packers"};
    std::vector<std::string> away = {"packers", "vikings", "packers",
                                     "bears", "vikings"};
    std::vector<std::string> date = {"10-12", "10-12", "10-19", "10-19",
                                     "10-26"};
    std::vector<std::string> stadium = {"soldier field", "ford field",
                                        "ford field", "us bank stadium",
                                        "lambeau field"};
    std::vector<std::string> location = {"chicago il 60605", "detroit mi",
                                         "unique9183", "minneapolis zz1",
                                         "1265 lombardi ave"};
    schedule_id_ = corpus_.AddFromStrings(
        "nfl.example.com", TableSource::kWeb,
        {"Home Team", "Away Team", "Date", "Stadium", "Location"},
        {home, away, date, stadium, location});
    index_.Build(corpus_);
  }

  TableCorpus corpus_;
  ColumnInvertedIndex index_;
  TableId schedule_id_ = 0;
  std::vector<std::string> teams_, stadiums_;
};

TEST_F(ExtractFixture, CoherentColumnsPassPmiFilter) {
  const Table& t = corpus_.table(schedule_id_);
  ExtractionOptions opts;
  opts.coherence_threshold = 0.1;
  EXPECT_TRUE(ColumnPassesCoherence(index_, t.columns[0], opts));  // home
  EXPECT_TRUE(ColumnPassesCoherence(index_, t.columns[3], opts));  // stadium
}

TEST_F(ExtractFixture, IncoherentLocationColumnFails) {
  const Table& t = corpus_.table(schedule_id_);
  ExtractionOptions opts;
  opts.coherence_threshold = 0.1;
  EXPECT_FALSE(ColumnPassesCoherence(index_, t.columns[4], opts));
}

TEST_F(ExtractFixture, FdFilterKeepsHomeStadiumAndDropsHomeAway) {
  ExtractionOptions opts;
  opts.coherence_threshold = 0.05;
  opts.min_pairs = 3;
  opts.fd_theta = 0.95;
  auto result = ExtractCandidates(corpus_, index_, opts);

  bool home_stadium = false, home_away = false, stadium_home = false;
  for (const auto& c : result.candidates) {
    if (c.source_table != schedule_id_) continue;
    if (c.left_name == "Home Team" && c.right_name == "Stadium") {
      home_stadium = true;
    }
    if (c.left_name == "Home Team" && c.right_name == "Away Team") {
      home_away = true;
    }
    if (c.left_name == "Stadium" && c.right_name == "Home Team") {
      stadium_home = true;
    }
  }
  // Example 6: only (Home Team, Stadium) and (Stadium, Home Team) survive.
  EXPECT_TRUE(home_stadium);
  EXPECT_TRUE(stadium_home);
  EXPECT_FALSE(home_away);  // lions play two different opponents
}

TEST_F(ExtractFixture, ExtractionStatsAreConsistent) {
  auto result = ExtractCandidates(corpus_, index_, {});
  const auto& st = result.stats;
  EXPECT_EQ(st.tables_seen, corpus_.size());
  EXPECT_EQ(st.columns_seen, corpus_.TotalColumns());
  EXPECT_LE(st.columns_kept, st.columns_seen);
  EXPECT_LE(st.pairs_kept, st.pairs_considered);
  EXPECT_EQ(st.pairs_kept, result.candidates.size());
  EXPECT_GE(st.FilterRate(), 0.0);
  EXPECT_LE(st.FilterRate(), 1.0);
}

TEST_F(ExtractFixture, CandidateIdsAreDense) {
  auto result = ExtractCandidates(corpus_, index_, {});
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    EXPECT_EQ(result.candidates[i].id, i);
  }
}

TEST_F(ExtractFixture, ParallelExtractionMatchesSerial) {
  ThreadPool pool(4);
  auto serial = ExtractCandidates(corpus_, index_, {});
  auto parallel = ExtractCandidates(corpus_, index_, {}, &pool);
  ASSERT_EQ(serial.candidates.size(), parallel.candidates.size());
  for (size_t i = 0; i < serial.candidates.size(); ++i) {
    EXPECT_EQ(serial.candidates[i].pairs(), parallel.candidates[i].pairs());
    EXPECT_EQ(serial.candidates[i].source_table,
              parallel.candidates[i].source_table);
  }
}

TEST(ExtractOptionsTest, MinPairsDropsTinyCandidates) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"a", "b"},
                        {{"x", "y"}, {"1", "2"}});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;  // let everything through PMI
  opts.min_pairs = 3;
  auto result = ExtractCandidates(corpus, index, opts);
  EXPECT_TRUE(result.candidates.empty());
  opts.min_pairs = 2;
  result = ExtractCandidates(corpus, index, opts);
  EXPECT_EQ(result.candidates.size(), 2u);  // both orders
}

TEST(ExtractOptionsTest, MaxColumnsSkipsWideTables) {
  TableCorpus corpus;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
  for (int c = 0; c < 6; ++c) {
    names.push_back("c" + std::to_string(c));
    cols.push_back({"v" + std::to_string(c) + "a",
                    "v" + std::to_string(c) + "b",
                    "v" + std::to_string(c) + "c"});
  }
  corpus.AddFromStrings("d", TableSource::kWeb, names, cols);
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  opts.min_pairs = 2;
  opts.max_columns = 4;
  auto result = ExtractCandidates(corpus, index, opts);
  EXPECT_TRUE(result.candidates.empty());
}

TEST(ExtractOptionsTest, CellsAreNormalized) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"Country", "Code"},
                        {{"United States[1]", "South  Korea", "France"},
                         {"USA", "KOR", "FRA"}});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  auto result = ExtractCandidates(corpus, index, opts);
  ASSERT_FALSE(result.candidates.empty());
  const StringPool& pool = corpus.pool();
  bool found = false;
  for (const auto& c : result.candidates) {
    for (const auto& p : c.pairs()) {
      if (pool.Get(p.left) == "united states" && pool.Get(p.right) == "usa") {
        found = true;
      }
      // No raw (un-normalized) forms may leak through.
      EXPECT_EQ(pool.Get(p.left).find('['), std::string_view::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExtractOptionsTest, DropNumericLeft) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"rank", "team"},
                        {{"1", "2", "3", "4"},
                         {"bears", "lions", "vikings", "packers"}});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  opts.drop_numeric_left = true;
  auto result = ExtractCandidates(corpus, index, opts);
  for (const auto& c : result.candidates) {
    EXPECT_NE(c.left_name, "rank");
  }
  opts.drop_numeric_left = false;
  result = ExtractCandidates(corpus, index, opts);
  bool rank_left = false;
  for (const auto& c : result.candidates) rank_left |= c.left_name == "rank";
  EXPECT_TRUE(rank_left);
}

TEST(ExtractOptionsTest, FdThetaControlsApproximateTolerance) {
  TableCorpus corpus;
  // 19 clean rows + 1 violating row: ratio 19/20 = 0.95.
  std::vector<std::string> left, right;
  for (int i = 0; i < 19; ++i) {
    left.push_back("l" + std::to_string(i));
    right.push_back("r" + std::to_string(i));
  }
  left.push_back("l0");
  right.push_back("rX");
  corpus.AddFromStrings("d", TableSource::kWeb, {"a", "b"}, {left, right});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  opts.fd_theta = 0.95;
  auto result = ExtractCandidates(corpus, index, opts);
  bool ab = false;
  for (const auto& c : result.candidates) ab |= (c.left_name == "a");
  EXPECT_TRUE(ab);

  opts.fd_theta = 0.97;
  result = ExtractCandidates(corpus, index, opts);
  ab = false;
  for (const auto& c : result.candidates) ab |= (c.left_name == "a");
  EXPECT_FALSE(ab);
}

// ------------------------------------------------ sharded normalize cache

TEST(NormalizationCacheTest, EachRawValueNormalizedExactlyOnceUnderRace) {
  // Regression for the seed's double-normalize race: the global-mutex cache
  // released its lock while normalizing, so two threads could both miss on
  // the same raw value and normalize + intern it twice. The sharded cache
  // holds the owning shard's lock across the miss, so the number of
  // NormalizeCell invocations must equal the number of distinct raw values
  // no matter how many threads hammer it.
  StringPool pool;
  std::vector<ValueId> raw;
  for (int i = 0; i < 200; ++i) {
    raw.push_back(pool.Intern("  Value  " + std::to_string(i) + " [1]"));
  }
  ShardedNormalizationCache cache(&pool, {});
  constexpr int kThreads = 8;
  std::vector<std::vector<ValueId>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Offset start positions to maximize same-value collisions mid-flight.
      for (size_t k = 0; k < raw.size(); ++k) {
        results[t].push_back(cache.Normalized(raw[(k + t * 23) % raw.size()]));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.normalize_calls(), raw.size());
  EXPECT_EQ(cache.misses(), raw.size());
  EXPECT_EQ(cache.hits(), (kThreads - 1) * raw.size());
  // All threads observed identical normalizations: thread t's k-th lookup
  // was raw[(k + t*23) % n], which thread 0 saw at that same index.
  for (int t = 1; t < kThreads; ++t) {
    for (size_t k = 0; k < raw.size(); ++k) {
      EXPECT_EQ(results[t][k], results[0][(k + t * 23) % raw.size()]);
    }
  }
}

TEST(NormalizationCacheTest, BatchMatchesSingleLookups) {
  StringPool pool_a, pool_b;
  std::vector<ValueId> raw_a, raw_b;
  std::vector<std::string> cells = {"United States[1]", "South  Korea",
                                    "France", "   ", "United States[1]",
                                    "France"};
  for (const auto& c : cells) {
    raw_a.push_back(pool_a.Intern(c));
    raw_b.push_back(pool_b.Intern(c));
  }
  ShardedNormalizationCache single(&pool_a, {});
  ShardedNormalizationCache batch(&pool_b, {});
  std::vector<ValueId> out_single, out_batch;
  for (ValueId v : raw_a) out_single.push_back(single.Normalized(v));
  batch.NormalizeBatch(raw_b, &out_batch);
  ASSERT_EQ(out_single.size(), out_batch.size());
  for (size_t i = 0; i < out_single.size(); ++i) {
    // Ids may differ across pools; compare resolved strings (or both
    // invalid, for the all-whitespace cell).
    if (out_single[i] == kInvalidValueId) {
      EXPECT_EQ(out_batch[i], kInvalidValueId);
    } else {
      EXPECT_EQ(pool_a.Get(out_single[i]), pool_b.Get(out_batch[i]));
    }
  }
  // Batch path also normalizes each distinct value exactly once.
  EXPECT_EQ(batch.normalize_calls(), 4u);  // 4 distinct cells
  std::vector<ValueId> again;
  batch.NormalizeBatch(raw_b, &again);
  EXPECT_EQ(batch.normalize_calls(), 4u);
  EXPECT_EQ(again, out_batch);
}

TEST(NormalizationCacheTest, ExtractionReportsCacheCounters) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"a", "b"},
                        {{"x1", "x2", "x3", "x1"}, {"y1", "y2", "y3", "y1"}});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  auto result = ExtractCandidates(corpus, index, opts);
  EXPECT_EQ(result.stats.normalize_cache_misses, 6u);  // x1..x3, y1..y3
  EXPECT_GT(result.stats.normalize_cache_hits, 0u);
}

TEST(ExtractOptionsTest, SelfPairsAreDropped) {
  TableCorpus corpus;
  // Identical left/right values carry no mapping signal.
  corpus.AddFromStrings("d", TableSource::kWeb, {"a", "b"},
                        {{"x", "y", "z"}, {"x", "y", "z"}});
  ColumnInvertedIndex index;
  index.Build(corpus);
  ExtractionOptions opts;
  opts.coherence_threshold = -1.0;
  opts.min_pairs = 1;
  auto result = ExtractCandidates(corpus, index, opts);
  EXPECT_TRUE(result.candidates.empty());
}

}  // namespace
}  // namespace ms
