// Fault-injection lockdown for the persistence layer (common/env.h,
// common/fault_env.h, persist/rotation.h, the MappingService rotating
// save/open entry points).
//
// The core property: for EVERY injectable IO op in a full
// save → restore → append → save schedule, failing that op (with ENOSPC,
// EIO, EACCES, a short write, or EINTR) or crashing right after it
// (freezing all later writes) leaves the world in one of exactly two
// states — a clean error Status with the previous committed state intact,
// or a recovery that serves the last good generation with
// content-identical mappings. Never a torn file served, never a crash,
// never silent data loss.
//
// MS_FAULT_OPS bounds the sweep: unset = evenly-strided local sample,
// 0 = the full exhaustive sweep (the ASan+UBSan CI leg), N = cap at N.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/random.h"
#include "persist/corpus_store.h"
#include "persist/rotation.h"
#include "persist/snapshot.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

// ----------------------------------------------------------- sweep bounds

/// MS_FAULT_OPS: unset = sampled local default, 0 = full sweep, N = cap N.
size_t FaultOpsLimit(size_t total) {
  const char* env = std::getenv("MS_FAULT_OPS");
  if (env == nullptr || *env == '\0') return std::min<size_t>(total, 48);
  const long v = std::strtol(env, nullptr, 10);
  if (v <= 0) return total;
  return std::min<size_t>(total, static_cast<size_t>(v));
}

/// Evenly-strided sample of [0, total): faults land across the whole
/// schedule (both save phases, the recovery walk, the corpus reopen)
/// instead of clustering at the front.
std::vector<uint64_t> SampledOps(size_t total, size_t limit) {
  std::vector<uint64_t> ops;
  if (limit >= total) {
    for (size_t i = 0; i < total; ++i) ops.push_back(i);
    return ops;
  }
  for (size_t i = 0; i < limit; ++i) {
    ops.push_back(static_cast<uint64_t>(i * total / limit));
  }
  return ops;
}

// ------------------------------------------------------------- filesystem

std::string ScratchRoot() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir ? dir : "/tmp");
}

/// Fresh empty scratch directory (removed and recreated).
std::string FreshDir(const std::string& name) {
  const std::string dir = ScratchRoot() + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipByte(const std::string& path, size_t pos) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), pos);
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
  WriteFileBytes(path, bytes);
}

std::vector<std::string> FilesIn(const std::string& dir) {
  auto listed = Env::Default()->ListDir(dir);
  return listed.ok() ? std::move(listed).value() : std::vector<std::string>{};
}

bool AnyTmpDebris(const std::string& dir) {
  for (const std::string& name : FilesIn(dir)) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------ corpus construction

/// One corpus table as raw strings so the same table sequence can be
/// materialized into independent TableCorpus objects (the golden cold
/// rebuild must not share the faulted run's pool).
struct TableSpec {
  std::string domain;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
};

/// Small web-shaped tables over a shared vocabulary (ground mapping
/// name_i -> code_(i mod 8) plus typos and conflicting rights), sized for
/// a sweep that re-runs the schedule hundreds of times.
std::vector<TableSpec> SmallCorpusSpec(Rng& rng, size_t n_tables) {
  std::vector<std::string> lefts, rights;
  for (size_t i = 0; i < 24; ++i) {
    lefts.push_back("entity name " + std::to_string(i));
    rights.push_back("code" + std::to_string(i % 8));
  }
  std::vector<TableSpec> specs;
  specs.reserve(n_tables);
  for (size_t t = 0; t < n_tables; ++t) {
    TableSpec spec;
    spec.domain = "domain" + std::to_string(rng.Uniform(4)) + ".example";
    const size_t rows = 4 + rng.Uniform(5);
    std::vector<std::string> lcol, rcol;
    std::set<uint64_t> seen;
    while (lcol.size() < rows) {
      const uint64_t li = rng.Uniform(lefts.size());
      if (!seen.insert(li).second) continue;
      std::string l = lefts[li];
      if (rng.Bernoulli(0.1)) {
        l[rng.Uniform(l.size())] = static_cast<char>('a' + rng.Uniform(26));
      }
      std::string r = rights[li];
      if (rng.Bernoulli(0.05)) r = "code" + std::to_string(rng.Uniform(8));
      lcol.push_back(std::move(l));
      rcol.push_back(std::move(r));
    }
    spec.names = {"name", "code"};
    spec.cols = {std::move(lcol), std::move(rcol)};
    specs.push_back(std::move(spec));
  }
  return specs;
}

void AddSpecs(TableCorpus* corpus, const std::vector<TableSpec>& specs,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    corpus->AddFromStrings(specs[i].domain, TableSource::kWeb, specs[i].names,
                           specs[i].cols);
  }
}

SynthesisOptions TortureOptions() {
  SynthesisOptions o;
  o.num_threads = 2;
  o.min_domains = 1;
  o.min_pairs = 1;
  // Coherence off => appends are provably stable, so the appended result
  // equals a cold rebuild over the grown corpus — the golden the sweep
  // compares recovered generations against.
  o.extraction.coherence_threshold = -1.0;
  return o;
}

/// Pool-independent, order-independent view of a mapping set (the
/// byte-identical-mappings invariant, stated over content so it holds
/// across differently-ordered pools).
std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + "\x1e" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f";
    for (const auto& p : pairs) key += p + "\x1f";
    out.insert(std::move(key));
  }
  return out;
}

std::multiset<std::string> ServiceCanonical(const MappingService& svc) {
  return Canonical(svc.last_result(), *svc.shared_pool());
}

// ========================================================== FaultEnvTest
// The env layer itself: retry absorption, stall budgets, message audit.

TEST(FaultEnvTest, AppendFullyAbsorbsInjectedShortWrite) {
  FaultInjectionEnv env;
  const std::string path = ScratchRoot() + "/fault_env_short.bin";
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload += static_cast<char>('a' + i % 26);

  // op 0 = open, op 1 = first write attempt.
  env.FailOp(1, FaultKind::kShortWrite);
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_TRUE(AppendFully(env, *file.value(), payload).ok());
  ASSERT_TRUE(file.value()->Close().ok());

  EXPECT_TRUE(env.fault_fired());
  EXPECT_GE(env.retries_performed(), 1u);
  EXPECT_EQ(Env::Default()->ReadFileToString(path).value(), payload);
  std::remove(path.c_str());
}

TEST(FaultEnvTest, AppendFullyAbsorbsInjectedEintrWithBackoff) {
  FaultInjectionEnv env;
  const std::string path = ScratchRoot() + "/fault_env_eintr.bin";
  const std::string payload(512, 'q');

  env.FailOp(1, FaultKind::kEintr);
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(AppendFully(env, *file.value(), payload).ok());
  ASSERT_TRUE(file.value()->Close().ok());

  EXPECT_GE(env.retries_performed(), 1u);
  // Zero-progress retries back off through the injectable clock.
  EXPECT_GE(env.sleeps_requested(), 1u);
  EXPECT_EQ(Env::Default()->ReadFileToString(path).value(), payload);
  std::remove(path.c_str());
}

/// A file that accepts nothing, ever — the stall-budget terminal case.
class StallingFile final : public WritableFile {
 public:
  Result<size_t> AppendSome(std::string_view) override { return size_t{0}; }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  const std::string& path() const override { return path_; }

 private:
  std::string path_ = "/stalling/file";
};

TEST(FaultEnvTest, AppendFullyStallBudgetIsBoundedIOError) {
  FaultInjectionEnv env;  // injectable clock: counts sleeps, never waits
  StallingFile file;
  RetryPolicy policy;
  const Status st = AppendFully(env, file, "payload", policy);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("no progress"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("/stalling/file"), std::string::npos);
  EXPECT_EQ(env.sleeps_requested(),
            static_cast<uint64_t>(policy.max_zero_progress_retries));
}

TEST(FaultEnvTest, ErrorMessagesCarryPathAndErrnoText) {
  Env* posix = Env::Default();
  // Real failures: every message names the path and the errno text.
  {
    auto r = posix->NewWritableFile("/no_such_dir_ms/x.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("/no_such_dir_ms/x.bin"),
              std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find(std::strerror(ENOENT)),
              std::string::npos)
        << r.status().ToString();
  }
  {
    auto r = posix->ReadFileToString("/no_such_file_ms.txt");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_NE(r.status().message().find("/no_such_file_ms.txt"),
              std::string::npos);
  }
  {
    Status st = posix->RenameFile("/no_such_file_ms.a", "/no_such_file_ms.b");
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("/no_such_file_ms.a"), std::string::npos);
  }
  // Injected failures mirror the same shape, plus an [injected] marker.
  {
    FaultInjectionEnv env;
    env.FailOp(0, FaultKind::kEnospc);
    auto r = env.NewWritableFile("/tmp/fault_msg_probe.bin");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("/tmp/fault_msg_probe.bin"),
              std::string::npos);
    EXPECT_NE(r.status().message().find(std::strerror(ENOSPC)),
              std::string::npos)
        << r.status().ToString();
    EXPECT_NE(r.status().message().find("[injected]"), std::string::npos);
  }
}

/// Satellite regression: a ContainerWriter save must survive short writes
/// and EINTR on any of its write attempts — the retry loop in the env
/// layer, not the container code, absorbs them.
TEST(FaultEnvTest, ContainerWriterAbsorbsShortWriteAndEintr) {
  const std::string path = ScratchRoot() + "/fault_container.bin";
  persist::ContainerWriter writer(persist::kSessionSnapshotMagic, 7);
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload += static_cast<char>(i % 251);
  writer.AddSection(1, payload);
  writer.AddSection(2, "second section");

  // Learn the write-attempt op indices from a clean run, then re-save with
  // a transient fault injected at each one in turn.
  FaultInjectionEnv probe;
  ASSERT_TRUE(writer.WriteFile(path, &probe).ok());
  const uint64_t total = probe.ops_seen();
  for (uint64_t i = 0; i < total; ++i) {
    for (FaultKind kind : {FaultKind::kShortWrite, FaultKind::kEintr}) {
      FaultInjectionEnv env;
      env.FailOp(i, kind);
      const Status st = writer.WriteFile(path, &env);
      if (!st.ok()) {
        // Transient kinds degrade to terminal EIO on non-write ops; the
        // save must then fail cleanly, not tear the file.
        EXPECT_EQ(st.code(), StatusCode::kIOError);
        continue;
      }
      auto reopened = persist::ContainerReader::Open(
          path, persist::kSessionSnapshotMagic);
      ASSERT_TRUE(reopened.ok())
          << "op " << i << " " << FaultKindName(kind) << ": "
          << reopened.status().ToString();
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ===================================================== FaultRotationTest
// Rotation protocol units: naming, CURRENT, quarantine, retention.

TEST(FaultRotationTest, SnapshotFileNameRoundTrips) {
  EXPECT_EQ(persist::SnapshotFileName(42), "snap-0000000042.mssnap");
  uint64_t gen = 0;
  EXPECT_TRUE(persist::ParseSnapshotFileName("snap-0000000042.mssnap", &gen));
  EXPECT_EQ(gen, 42u);
  EXPECT_TRUE(
      persist::ParseSnapshotFileName(persist::SnapshotFileName(0), &gen));
  EXPECT_EQ(gen, 0u);
  // Everything that is not exactly a live snapshot name is rejected —
  // CURRENT, quarantined files, tmp debris, foreign files.
  EXPECT_FALSE(persist::ParseSnapshotFileName("CURRENT", &gen));
  EXPECT_FALSE(
      persist::ParseSnapshotFileName("snap-0000000042.mssnap.corrupt", &gen));
  EXPECT_FALSE(
      persist::ParseSnapshotFileName("snap-0000000042.mssnap.tmp", &gen));
  EXPECT_FALSE(persist::ParseSnapshotFileName("snap-abc.mssnap", &gen));
  EXPECT_FALSE(persist::ParseSnapshotFileName("snap-.mssnap", &gen));
  EXPECT_FALSE(persist::ParseSnapshotFileName("", &gen));
}

TEST(FaultRotationTest, RotatingSaveCommitsCurrentAndPrunes) {
  const std::string dir = FreshDir("fault_rotation_prune");
  Rng rng(11);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(TortureOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(svc.SaveSnapshotRotating(dir, /*keep=*/3).ok());
  }
  EXPECT_EQ(svc.health().generation_served, 5u);

  auto gens = persist::ListGenerations(*Env::Default(), dir);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 3u);  // retention window
  EXPECT_EQ(gens.value().front().generation, 3u);
  EXPECT_EQ(gens.value().back().generation, 5u);
  auto current = persist::ReadCurrentGeneration(*Env::Default(), dir);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current.value(), 5u);
  EXPECT_FALSE(AnyTmpDebris(dir));
}

TEST(FaultRotationTest, OpenLatestFallsBackPastCorruptAndQuarantines) {
  const std::string dir = FreshDir("fault_rotation_fallback");
  Rng rng(12);
  auto specs = SmallCorpusSpec(rng, 12);
  const SynthesisOptions o = TortureOptions();

  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 8);
  MappingService writer(o);
  ASSERT_TRUE(writer.Synthesize(corpus).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());  // gen 1
  const auto golden1 = ServiceCanonical(writer);
  AddSpecs(&corpus, specs, 8, specs.size());
  ASSERT_TRUE(writer.ResynthesizeAppended().ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());  // gen 2

  // Corrupt the newest generation: recovery must quarantine it and serve
  // gen 1 with content-identical mappings.
  const std::string gen2 = dir + "/" + persist::SnapshotFileName(2);
  FlipByte(gen2, ReadFileBytes(gen2).size() / 2);

  MappingService reader(o);
  const Status st = reader.OpenLatestSnapshot(dir);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const ServiceHealth health = reader.health();
  EXPECT_EQ(health.generation_served, 1u);
  EXPECT_EQ(health.generations_skipped, 1u);
  ASSERT_EQ(health.quarantined_files.size(), 1u);
  EXPECT_EQ(health.quarantined_files[0],
            persist::SnapshotFileName(2) + persist::kCorruptSuffix);
  EXPECT_TRUE(health.degraded());
  EXPECT_EQ(ServiceCanonical(reader), golden1);

  // The corrupt bytes are preserved under the quarantine name, the live
  // name is gone, and the file never rejoins the rotation.
  EXPECT_TRUE(Env::Default()->FileExists(gen2 + persist::kCorruptSuffix));
  EXPECT_FALSE(Env::Default()->FileExists(gen2));
  MappingService again(o);
  ASSERT_TRUE(again.OpenLatestSnapshot(dir).ok());
  EXPECT_EQ(again.health().generation_served, 1u);
  EXPECT_EQ(again.health().generations_skipped, 0u);
  EXPECT_FALSE(again.health().degraded());
}

TEST(FaultRotationTest, OpenLatestFailsClosedWhenNothingIntact) {
  const std::string dir = FreshDir("fault_rotation_all_corrupt");
  Rng rng(13);
  auto specs = SmallCorpusSpec(rng, 8);
  const SynthesisOptions o = TortureOptions();

  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService writer(o);
  ASSERT_TRUE(writer.Synthesize(corpus).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());
  for (uint64_t g = 1; g <= 2; ++g) {
    const std::string path = dir + "/" + persist::SnapshotFileName(g);
    FlipByte(path, ReadFileBytes(path).size() / 2);
  }

  // A service already serving something must keep serving it untouched.
  Rng rng2(14);
  auto other_specs = SmallCorpusSpec(rng2, 6);
  TableCorpus other;
  AddSpecs(&other, other_specs, 0, other_specs.size());
  MappingService reader(o);
  ASSERT_TRUE(reader.Synthesize(other).ok());
  const auto before = ServiceCanonical(reader);
  const size_t mappings_before = reader.num_mappings();

  const Status st = reader.OpenLatestSnapshot(dir);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(reader.num_mappings(), mappings_before);
  EXPECT_EQ(ServiceCanonical(reader), before);
  // The failed walk still reports its quarantines.
  EXPECT_EQ(reader.health().generations_skipped, 2u);
  EXPECT_EQ(reader.health().quarantined_files.size(), 2u);

  // An empty/missing rotation dir is NotFound, distinct from corruption.
  MappingService fresh(o);
  EXPECT_EQ(fresh.OpenLatestSnapshot(FreshDir("fault_rotation_empty")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fresh.OpenLatestSnapshot(ScratchRoot() + "/no_such_dir_ms").code(),
            StatusCode::kNotFound);
}

TEST(FaultRotationTest, TornCurrentIsIgnoredAndRepairedByNextSave) {
  const std::string dir = FreshDir("fault_rotation_torn_current");
  Rng rng(15);
  auto specs = SmallCorpusSpec(rng, 8);
  const SynthesisOptions o = TortureOptions();

  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService writer(o);
  ASSERT_TRUE(writer.Synthesize(corpus).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());  // gen 1
  WriteFileBytes(dir + "/" + persist::kCurrentFileName, "garbage\n");

  // A torn pointer is treated like a torn snapshot: ignored, not trusted.
  MappingService reader(o);
  ASSERT_TRUE(reader.OpenLatestSnapshot(dir).ok());
  EXPECT_EQ(reader.health().generation_served, 1u);

  // The next save discovers the real generation from the files and commits
  // a fresh CURRENT past it.
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());  // gen 2
  auto current = persist::ReadCurrentGeneration(*Env::Default(), dir);
  ASSERT_TRUE(current.ok()) << current.status().ToString();
  EXPECT_EQ(current.value(), 2u);
}

// ========================================================= FaultSaveTest
// Targeted save-path faults: disk full, read-only dir, tmp debris.

TEST(FaultSaveTest, FailedSaveKeepsPreviousFileByteIdenticalEveryOp) {
  const std::string dir = FreshDir("fault_save_enospc");
  const std::string path = dir + "/service.mssnap";
  Rng rng(21);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(TortureOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  ASSERT_TRUE(svc.SaveSnapshot(path).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_FALSE(good.empty());

  // Count the ops of one clean save, then fail each in turn with the two
  // targeted terminal kinds: disk full and read-only directory.
  FaultInjectionEnv probe;
  svc.set_env(&probe);
  ASSERT_TRUE(svc.SaveSnapshot(path).ok());
  const uint64_t total = probe.ops_seen();
  ASSERT_GT(total, 4u);
  svc.set_env(nullptr);

  for (FaultKind kind : {FaultKind::kEnospc, FaultKind::kEacces}) {
    for (uint64_t i = 0; i < total; ++i) {
      FaultInjectionEnv env;
      env.FailOp(i, kind);
      svc.set_env(&env);
      const Status st = svc.SaveSnapshot(path);
      svc.set_env(nullptr);
      ASSERT_FALSE(st.ok()) << "op " << i << " " << FaultKindName(kind);
      EXPECT_EQ(st.code(), StatusCode::kIOError);
      EXPECT_NE(st.message().find(std::strerror(
                    kind == FaultKind::kEnospc ? ENOSPC : EACCES)),
                std::string::npos)
          << st.ToString();
      // The previous committed file is byte-identical, always.
      ASSERT_EQ(ReadFileBytes(path), good)
          << "op " << i << " " << FaultKindName(kind)
          << " damaged the committed file";
    }
  }

  // Whatever debris a failed save left, the next save reclaims it.
  ASSERT_TRUE(svc.SaveSnapshot(path).ok());
  EXPECT_FALSE(AnyTmpDebris(dir));
}

TEST(FaultSaveTest, CrashMidSaveLeavesOnlyReclaimableTmpDebris) {
  const std::string dir = FreshDir("fault_save_crash_debris");
  const std::string path = dir + "/service.mssnap";
  Rng rng(22);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(TortureOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  ASSERT_TRUE(svc.SaveSnapshot(path).ok());
  const std::string good = ReadFileBytes(path);

  // Crash after the first write attempt: the tmp file is torn and cannot
  // even be unlinked (the cleanup unlink is frozen too, as in a real
  // crash). The committed file must be untouched.
  FaultInjectionEnv env;
  env.CrashAfterOp(1);
  svc.set_env(&env);
  ASSERT_FALSE(svc.SaveSnapshot(path).ok());
  svc.set_env(nullptr);
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(ReadFileBytes(path), good);
  EXPECT_TRUE(AnyTmpDebris(dir));  // the torn tmp survived the "crash"

  // Restart: the next clean save overwrites the tmp in place and renames
  // it away — no debris survives a successful save.
  ASSERT_TRUE(svc.SaveSnapshot(path).ok());
  EXPECT_FALSE(AnyTmpDebris(dir));
  auto reopened =
      persist::ContainerReader::Open(path, persist::kSessionSnapshotMagic);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

// ====================================================== FaultTortureTest
// The exhaustive sweep: every injectable op of a full
// save → restore → append → save schedule, failed and crash-frozen.

struct ScheduleOutcome {
  bool saved_gen1 = false;
  bool saved_gen2 = false;
  Status first_error;
};

/// The full schedule, every IO routed through `env`. Mirrors a real
/// deployment: a writer process synthesizes and persists corpus + snapshot,
/// a second process recovers, attaches the corpus, grows it, and commits
/// the merged generation.
ScheduleOutcome RunSchedule(Env* env, const std::string& dir,
                            const std::vector<TableSpec>& specs,
                            size_t base_n, const SynthesisOptions& o) {
  ScheduleOutcome out;
  const std::string corpus_path = dir + "/corpus.mscorp";
  {
    // Writer process: base synthesis (pure compute), then persist the
    // corpus store and snapshot from the same pool state.
    TableCorpus corpus;
    AddSpecs(&corpus, specs, 0, base_n);
    MappingService svc(o);
    svc.set_env(env);
    Status st = svc.Synthesize(corpus);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    st = persist::SaveCorpusStore(corpus, corpus_path, env);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    st = svc.SaveSnapshotRotating(dir);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    out.saved_gen1 = true;
  }
  {
    // Restart: recover the latest generation, re-attach the corpus, grow
    // it, and commit generation 2.
    MappingService svc(o);
    svc.set_env(env);
    Status st = svc.OpenLatestSnapshot(dir);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    auto reopened = persist::OpenCorpusStore(corpus_path, env);
    if (!reopened.ok()) {
      out.first_error = reopened.status();
      return out;
    }
    TableCorpus corpus = std::move(reopened).value();
    st = svc.AttachCorpus(corpus);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    AddSpecs(&corpus, specs, base_n, specs.size());
    st = svc.ResynthesizeAppended();
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    st = svc.SaveSnapshotRotating(dir);
    if (!st.ok()) {
      out.first_error = st;
      return out;
    }
    out.saved_gen2 = true;
  }
  return out;
}

TEST(FaultTortureTest, EveryOpFailedAndCrashFrozenRecoversToLastGood) {
  Rng rng(31);
  const size_t base_n = 10;
  auto specs = SmallCorpusSpec(rng, 14);
  const SynthesisOptions o = TortureOptions();

  // Goldens from pure in-memory synthesis (no IO, nothing injectable).
  std::multiset<std::string> golden1, golden2;
  {
    TableCorpus corpus;
    AddSpecs(&corpus, specs, 0, base_n);
    MappingService svc(o);
    ASSERT_TRUE(svc.Synthesize(corpus).ok());
    golden1 = ServiceCanonical(svc);
    TableCorpus full;
    AddSpecs(&full, specs, 0, specs.size());
    MappingService cold(o);
    ASSERT_TRUE(cold.Synthesize(full).ok());
    golden2 = ServiceCanonical(cold);
  }
  ASSERT_NE(golden1, golden2) << "the append must change the mapping set or "
                                 "the sweep cannot tell generations apart";

  // Clean instrumented run: learns the op count and validates the schedule.
  uint64_t total_ops = 0;
  {
    const std::string dir = FreshDir("fault_torture_clean");
    FaultInjectionEnv env;
    ScheduleOutcome out = RunSchedule(&env, dir, specs, base_n, o);
    ASSERT_TRUE(out.saved_gen2) << out.first_error.ToString();
    total_ops = env.ops_seen();
    MappingService check(o);
    ASSERT_TRUE(check.OpenLatestSnapshot(dir).ok());
    ASSERT_EQ(ServiceCanonical(check), golden2);
  }
  ASSERT_GT(total_ops, 20u);

  const std::vector<uint64_t> ops =
      SampledOps(total_ops, FaultOpsLimit(total_ops));
  constexpr FaultKind kKinds[] = {FaultKind::kEnospc, FaultKind::kEio,
                                  FaultKind::kEacces, FaultKind::kShortWrite,
                                  FaultKind::kEintr};
  size_t full_successes = 0, recoveries = 0, empty_recoveries = 0;

  for (const uint64_t op : ops) {
    for (const bool crash : {false, true}) {
      const std::string dir = FreshDir("fault_torture_sweep");
      FaultInjectionEnv env;
      if (crash) {
        env.CrashAfterOp(op);
      } else {
        env.FailOp(op, kKinds[op % 5]);
      }
      const ScheduleOutcome out = RunSchedule(&env, dir, specs, base_n, o);
      const std::string label =
          crash ? "crash-after-op " + std::to_string(op)
                : "fail-op " + std::to_string(op) + " " +
                      FaultKindName(kKinds[op % 5]);

      // Invariant: a clean error Status (previous state intact), or a
      // recovery to the last good generation with content-identical
      // mappings. Recovery runs on a fresh posix-env service, like a
      // process restarted after the fault.
      MappingService recovered(o);
      const Status rec = recovered.OpenLatestSnapshot(dir);
      if (out.saved_gen1) {
        // Generation 1 was committed and never deleted (retention keeps 3)
        // — recovery must succeed no matter what happened afterwards.
        ASSERT_TRUE(rec.ok()) << label << ": committed generation lost: "
                              << rec.ToString();
      }
      if (rec.ok()) {
        const auto canon = ServiceCanonical(recovered);
        if (out.saved_gen2) {
          ASSERT_EQ(canon, golden2)
              << label << ": committed generation 2 not served";
        } else {
          // A complete-but-uncommitted gen 2 may legitimately be served
          // (CURRENT is the pruning fence, not the only discovery path).
          ASSERT_TRUE(canon == golden1 || canon == golden2)
              << label << ": recovered mappings match no golden";
        }
        ++recoveries;
      } else {
        // Nothing recoverable: only legal before the first commit.
        ASSERT_FALSE(out.saved_gen1);
        ASSERT_EQ(rec.code(), StatusCode::kNotFound)
            << label << ": " << rec.ToString();
        ++empty_recoveries;
      }
      if (out.saved_gen2) {
        ++full_successes;
      } else {
        // The schedule stopped with a real error, and the injected fault
        // (or the frozen writes) is what stopped it.
        ASSERT_FALSE(out.first_error.ok()) << label;
        ASSERT_TRUE(env.fault_fired() || env.crashed()) << label;
      }
    }
  }

  // The sweep must exercise all three regimes, or the invariant above
  // trivially holds by never being tested.
  EXPECT_GT(recoveries, 0u);
  EXPECT_GT(empty_recoveries, 0u);
  // Transient kinds on write attempts are absorbed; late crash points let
  // the whole schedule through.
  EXPECT_GT(full_successes, 0u);
}

}  // namespace
}  // namespace ms
