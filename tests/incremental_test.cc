// Lockdown suite for incremental corpus growth (SynthesisSession::
// AppendTables / AppendCorpus, MappingService append entry points).
//
// The core property: for ANY schedule that splits a corpus into k append
// batches (k in 1..5, empty and single-table batches included), growing the
// corpus batch by batch must produce results byte-equivalent to one cold
// rebuild over the whole corpus — same mappings (compared pool-
// independently), same blocked pairs including per-pair count-exactness,
// same graph edges bit-for-bit, same deterministic pipeline counters
// (candidates, pairs, keys, truncation taint, edges, partitions, mappings).
// One carve-out (PR 10): an append that flips a minority of old coherence
// verdicts re-extracts only the flipped tables, keeping every other
// candidate id stable and parking the re-extractions at tail ids. Ids then
// legitimately differ from a cold run's table-order assignment, so those
// schedules assert the mapping-level contract (identical canonical
// mappings) instead of byte identity — which still holds because the
// shortcut is only taken when no posting list ever truncated (truncation
// keeps the lowest ids, so it is the one id-order-dependent stage; with
// truncation in play a flip falls back to the internal cold rebuild, which
// restores byte identity).
// The randomized differential runs under the ASan+UBSan CI leg like every
// other suite; MS_FUZZ_ITERS deepens it in CI (see .github/workflows/ci.yml).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "common/random.h"
#include "persist/corpus_store.h"
#include "synth/blocking.h"
#include "synth/session.h"
#include "table/corpus.h"
#include "table/tsv.h"

namespace ms {
namespace {

size_t FuzzIters(size_t fallback) {
  // MS_FUZZ_ITERS lets CI run the randomized schedules much deeper than a
  // local edit-compile-test loop wants to pay for.
  const char* env = std::getenv("MS_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

std::string ScratchPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir ? dir : "/tmp") + "/" + name;
}

// ------------------------------------------------------ corpus construction

/// One corpus table as raw strings, so the identical table sequence can be
/// materialized into several independent TableCorpus objects (cold-rebuild
/// corpora must not share the incremental run's warm pool).
struct TableSpec {
  std::string domain;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
};

/// Random web-shaped tables over a small shared vocabulary: a ground
/// mapping name_i -> code_(i mod 16) sampled with noise, typos, occasional
/// junk third columns (coherence-filter food), and occasional conflicting
/// rights (conflict-resolution food). Small vocabulary => heavy value
/// co-occurrence => non-trivial blocking, components, and partitions.
std::vector<TableSpec> RandomCorpusSpec(Rng& rng, size_t n_tables) {
  std::vector<std::string> lefts, rights;
  for (size_t i = 0; i < 48; ++i) {
    lefts.push_back("entity name " + std::to_string(i));
    rights.push_back("code" + std::to_string(i % 16));
  }
  std::vector<TableSpec> specs;
  specs.reserve(n_tables);
  for (size_t t = 0; t < n_tables; ++t) {
    TableSpec spec;
    spec.domain = "domain" + std::to_string(rng.Uniform(6)) + ".example";
    const size_t rows = 4 + rng.Uniform(7);
    std::vector<std::string> lcol, rcol;
    std::set<uint64_t> seen;
    while (lcol.size() < rows) {
      const uint64_t li = rng.Uniform(lefts.size());
      if (!seen.insert(li).second) continue;
      std::string l = lefts[li];
      if (rng.Bernoulli(0.15)) {
        l[rng.Uniform(l.size())] =
            static_cast<char>('a' + rng.Uniform(26));  // typo
      }
      std::string r = rights[li];
      if (rng.Bernoulli(0.08)) r = "code" + std::to_string(rng.Uniform(16));
      lcol.push_back(std::move(l));
      rcol.push_back(std::move(r));
    }
    spec.names = {"name", "code"};
    spec.cols = {lcol, rcol};
    if (rng.Bernoulli(0.3)) {
      // Junk column: unique-ish values with low corpus coherence.
      std::vector<std::string> junk;
      for (size_t r = 0; r < rows; ++r) {
        junk.push_back("junk " + std::to_string(t) + "_" +
                       std::to_string(rng.Uniform(1000)));
      }
      spec.names.push_back("notes");
      spec.cols.push_back(std::move(junk));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

void AddSpecs(TableCorpus* corpus, const std::vector<TableSpec>& specs,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    corpus->AddFromStrings(specs[i].domain, TableSource::kWeb, specs[i].names,
                           specs[i].cols);
  }
}

// -------------------------------------------------------------- comparison

/// Pool-independent, order-independent view of a mapping set. Normalized
/// values are interned concurrently, so two pools built by different runs
/// may order ids differently: pair strings are sorted within each mapping
/// and mappings compared as a multiset.
std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + "\x1e" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f" +
                      std::to_string(m.member_tables.size()) + "\x1f" +
                      std::to_string(m.kept_tables.size()) + "\x1f" +
                      std::to_string(m.num_domains) + "\x1f";
    for (const auto& p : pairs) key += p + "\x1f";
    out.insert(std::move(key));
  }
  return out;
}

void ExpectPairsIdentical(const std::vector<CandidateTablePair>& cold,
                          const std::vector<CandidateTablePair>& inc) {
  ASSERT_EQ(cold.size(), inc.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i].a, inc[i].a) << "pair " << i;
    EXPECT_EQ(cold[i].b, inc[i].b) << "pair " << i;
    EXPECT_EQ(cold[i].shared_pairs, inc[i].shared_pairs) << "pair " << i;
    EXPECT_EQ(cold[i].shared_lefts, inc[i].shared_lefts) << "pair " << i;
    EXPECT_EQ(cold[i].counts_exact, inc[i].counts_exact) << "pair " << i;
    if (::testing::Test::HasFailure()) return;
  }
}

void ExpectEdgesIdentical(const CompatibilityGraph& cold,
                          const CompatibilityGraph& inc) {
  ASSERT_EQ(cold.num_vertices(), inc.num_vertices());
  ASSERT_EQ(cold.num_edges(), inc.num_edges());
  for (size_t e = 0; e < cold.edges().size(); ++e) {
    const auto& ce = cold.edges()[e];
    const auto& ie = inc.edges()[e];
    EXPECT_EQ(ce.u, ie.u) << "edge " << e;
    EXPECT_EQ(ce.v, ie.v) << "edge " << e;
    EXPECT_EQ(ce.w_pos, ie.w_pos) << "edge " << e;  // bitwise: same strings
    EXPECT_EQ(ce.w_neg, ie.w_neg) << "edge " << e;
    if (::testing::Test::HasFailure()) return;
  }
}

/// The deterministic counters a cold rebuild and an append schedule must
/// agree on (timings and cache counters legitimately differ).
void ExpectCountersIdentical(const PipelineStats& cold,
                             const PipelineStats& inc) {
  EXPECT_EQ(cold.candidates, inc.candidates);
  EXPECT_EQ(cold.candidate_pairs, inc.candidate_pairs);
  EXPECT_EQ(cold.blocking_keys, inc.blocking_keys);
  EXPECT_EQ(cold.blocking_dropped_postings, inc.blocking_dropped_postings);
  EXPECT_EQ(cold.blocking_tainted_candidates,
            inc.blocking_tainted_candidates);
  EXPECT_EQ(cold.graph_edges, inc.graph_edges);
  EXPECT_EQ(cold.components, inc.components);
  EXPECT_EQ(cold.partitions, inc.partitions);
  EXPECT_EQ(cold.mappings, inc.mappings);
  EXPECT_EQ(cold.extraction.tables_seen, inc.extraction.tables_seen);
  EXPECT_EQ(cold.extraction.columns_seen, inc.extraction.columns_seen);
  EXPECT_EQ(cold.extraction.columns_kept, inc.extraction.columns_kept);
  EXPECT_EQ(cold.extraction.pairs_considered,
            inc.extraction.pairs_considered);
  EXPECT_EQ(cold.extraction.pairs_kept, inc.extraction.pairs_kept);
}

/// One fully materialized artifact family, chained cold.
struct Family {
  CandidateSet candidates;
  BlockedPairs blocked;
  ScoredGraph scored;
  Partitions partitions;
  SynthesisResult result;
};

Family ColdChain(SynthesisSession* session, const TableCorpus& corpus) {
  Family f;
  auto c = session->ExtractCandidates(corpus);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  f.candidates = std::move(c).value();
  auto b = session->BlockPairs(f.candidates);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  f.blocked = std::move(b).value();
  auto g = session->ScorePairs(f.candidates, f.blocked);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  f.scored = std::move(g).value();
  auto p = session->Partition(f.scored);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  f.partitions = std::move(p).value();
  auto r = session->Resolve(f.candidates, f.scored, f.partitions);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  f.result = std::move(r).value();
  return f;
}

SynthesisOptions BaseOptions() {
  SynthesisOptions o;
  o.num_threads = 4;
  o.min_domains = 1;
  o.min_pairs = 1;
  return o;
}

// ------------------------------------------- randomized append schedules

TEST(IncrementalDifferentialTest, RandomAppendSchedulesMatchColdRebuild) {
  const size_t iters = FuzzIters(6);
  Rng rng(20260729);
  size_t stable_appends = 0, fallback_appends = 0, total_appends = 0;
  size_t flip_schedules = 0;
  for (size_t iter = 0; iter < iters; ++iter) {
    const size_t n_tables = 30 + rng.Uniform(50);
    auto specs = RandomCorpusSpec(rng, n_tables);

    // Random schedule: k batches, boundaries sorted, empties allowed.
    const size_t k = 1 + rng.Uniform(5);
    std::vector<size_t> bounds = {0, n_tables};
    for (size_t i = 1; i < k; ++i) {
      bounds.push_back(rng.Uniform(n_tables + 1));
    }
    std::sort(bounds.begin(), bounds.end());
    // Occasionally make one batch a single table.
    if (k > 1 && rng.Bernoulli(0.3) && bounds[1] < n_tables) {
      bounds[1] = bounds[0] + 1 <= n_tables ? bounds[0] + 1 : bounds[1];
      std::sort(bounds.begin(), bounds.end());
    }

    // Random result-affecting knobs, chosen to exercise truncation taint,
    // both partitioning modes, and both coherence regimes (threshold -1
    // passes every column => appends provably stable; positive thresholds
    // may flip verdicts and exercise the full-rebuild fallback).
    SynthesisOptions o = BaseOptions();
    const double coh[] = {-1.0, 0.05, 0.15};
    o.extraction.coherence_threshold = coh[rng.Uniform(3)];
    const size_t postings[] = {2, 4, 8, 256};
    o.blocking.max_posting = postings[rng.Uniform(4)];
    o.blocking.theta_overlap = 1 + rng.Uniform(2);
    o.divide_and_conquer = rng.Bernoulli(0.8);
    o.min_domains = 1 + rng.Uniform(2);

    SCOPED_TRACE("iter " + std::to_string(iter) + " tables " +
                 std::to_string(n_tables) + " k " + std::to_string(k) +
                 " coh " + std::to_string(o.extraction.coherence_threshold) +
                 " max_posting " + std::to_string(o.blocking.max_posting) +
                 " dnc " + std::to_string(o.divide_and_conquer));

    // Cold rebuild over the whole corpus.
    TableCorpus cold_corpus;
    AddSpecs(&cold_corpus, specs, 0, n_tables);
    SynthesisSession cold_session(o);
    ASSERT_TRUE(cold_session.status().ok());
    Family cold = ColdChain(&cold_session, cold_corpus);
    ASSERT_FALSE(HasFailure());

    // Incremental: batch 0 cold, every further batch appended.
    TableCorpus inc_corpus;
    AddSpecs(&inc_corpus, specs, 0, bounds[1]);
    SynthesisSession inc_session(o);
    ASSERT_TRUE(inc_session.status().ok());
    Family inc = ColdChain(&inc_session, inc_corpus);
    ASSERT_FALSE(HasFailure());
    size_t appends = 0;
    bool byte_exact = true;
    for (size_t b = 1; b + 1 < bounds.size(); ++b) {
      Result<AppendedArtifacts> grown = [&] {
        if (rng.Bernoulli(0.5)) {
          // Ingestion shape: the batch arrives as its own corpus.
          TableCorpus delta;
          AddSpecs(&delta, specs, bounds[b], bounds[b + 1]);
          return inc_session.AppendCorpus(&inc_corpus, delta, inc.candidates,
                                          inc.blocked, inc.scored,
                                          inc.partitions, inc.result);
        }
        AddSpecs(&inc_corpus, specs, bounds[b], bounds[b + 1]);
        return inc_session.AppendTables(inc_corpus, bounds[b], inc.candidates,
                                        inc.blocked, inc.scored,
                                        inc.partitions, inc.result);
      }();
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
      AppendedArtifacts family = std::move(grown).value();
      ++appends;
      ++total_appends;
      if (family.append.full_rebuild) {
        ++fallback_appends;
      } else {
        ++stable_appends;
      }
      // A minority flip served by partial re-extraction keeps old ids
      // stable but parks re-extractions at tail ids: byte identity with a
      // cold run's table-order id assignment is forfeit for the rest of
      // the schedule (the mapping-level contract below still holds).
      byte_exact = byte_exact && (family.append.extraction_stable ||
                                  family.append.full_rebuild);
      // Coherence threshold -1 passes every column: the kept sets cannot
      // flip, so the delta fast path must have been taken.
      if (o.extraction.coherence_threshold == -1.0) {
        EXPECT_TRUE(family.append.extraction_stable);
        EXPECT_FALSE(family.append.full_rebuild);
      }
      EXPECT_EQ(family.candidates.generation, appends);
      EXPECT_EQ(family.blocked.candidates_id, family.candidates.artifact_id);
      EXPECT_EQ(family.scored.candidates_id, family.candidates.artifact_id);
      EXPECT_EQ(family.partitions.graph_id, family.scored.artifact_id);
      EXPECT_EQ(family.candidates.source_tables, inc_corpus.size());
      inc.candidates = std::move(family.candidates);
      inc.blocked = std::move(family.blocked);
      inc.scored = std::move(family.scored);
      inc.partitions = std::move(family.partitions);
      inc.result = std::move(family.result);
    }

    // --- The differential. Byte identity when every append was stable or
    // internally rebuilt cold; after a partial-flip append only ids moved,
    // so the content-level counters and the canonical mappings carry the
    // oracle comparison.
    if (byte_exact) {
      ExpectPairsIdentical(cold.blocked.pairs, inc.blocked.pairs);
      ExpectEdgesIdentical(cold.scored.graph, inc.scored.graph);
      EXPECT_EQ(cold.blocked.blocking.tainted, inc.blocked.blocking.tainted);
      EXPECT_EQ(cold.partitions.partition.num_partitions,
                inc.partitions.partition.num_partitions);
      ExpectCountersIdentical(cold.result.stats, inc.result.stats);
    } else {
      ++flip_schedules;
      // The flip shortcut is only taken while live ids stay in cold
      // relative order, so everything id-order-dependent — including
      // posting-list truncation — behaves exactly as the cold run's, and
      // the content-level counters stay exact even though ids moved.
      EXPECT_EQ(cold.blocked.pairs.size(), inc.blocked.pairs.size());
      EXPECT_EQ(cold.result.stats.candidates, inc.result.stats.candidates);
      EXPECT_EQ(cold.result.stats.graph_edges, inc.result.stats.graph_edges);
      EXPECT_EQ(cold.result.stats.mappings, inc.result.stats.mappings);
      EXPECT_EQ(cold.blocked.blocking.dropped_postings,
                inc.blocked.blocking.dropped_postings);
    }
    EXPECT_EQ(Canonical(cold.result, cold_corpus.pool()),
              Canonical(inc.result, inc_corpus.pool()));
    ASSERT_FALSE(HasFailure());
  }
  // The suite must exercise the delta fast path, not just the fallback.
  EXPECT_GT(stable_appends, 0u)
      << "no append took the fast path across " << total_appends << " appends";
  std::printf(
      "append schedules: %zu appends, %zu fast-path, %zu fallback, "
      "%zu flip schedules\n",
      total_appends, stable_appends, fallback_appends, flip_schedules);
}

TEST(IncrementalDifferentialTest, DeltaBlockingMatchesFullReblocking) {
  // Sharp blocking-level differential: merging a base run's pairs with the
  // delta pass must reproduce full re-blocking exactly — counts, per-pair
  // exactness, taint bitmap, key and truncation accounting.
  const size_t iters = FuzzIters(8);
  Rng rng(77);
  ThreadPool pool(4);
  for (size_t iter = 0; iter < iters; ++iter) {
    const size_t n = 20 + rng.Uniform(60);
    std::vector<BinaryTable> candidates;
    for (size_t i = 0; i < n; ++i) {
      std::vector<ValuePair> pairs;
      const size_t rows = 2 + rng.Uniform(8);
      for (size_t r = 0; r < rows; ++r) {
        pairs.push_back({static_cast<ValueId>(rng.Uniform(24)),
                         static_cast<ValueId>(24 + rng.Uniform(12))});
      }
      BinaryTable t = BinaryTable::FromPairs(std::move(pairs));
      t.id = static_cast<BinaryTableId>(i);
      candidates.push_back(std::move(t));
    }
    BlockingOptions options;
    options.theta_overlap = 1 + rng.Uniform(2);
    const size_t postings[] = {2, 3, 5, 256};
    options.max_posting = postings[rng.Uniform(4)];
    const uint32_t first_new = static_cast<uint32_t>(rng.Uniform(n + 1));
    SCOPED_TRACE("iter " + std::to_string(iter) + " n " + std::to_string(n) +
                 " first_new " + std::to_string(first_new) + " max_posting " +
                 std::to_string(options.max_posting));

    BlockingStats full_stats;
    auto full = GenerateCandidatePairs(candidates, options, &pool,
                                       &full_stats);

    std::vector<BinaryTable> base(candidates.begin(),
                                  candidates.begin() + first_new);
    BlockingStats base_stats;
    auto base_pairs = GenerateCandidatePairs(base, options, &pool,
                                             &base_stats);
    std::vector<uint8_t> tainted = base_stats.tainted;
    if (!tainted.empty()) tainted.resize(n, 0);
    DeltaBlockingStats dstats;
    auto delta = GenerateDeltaCandidatePairs(candidates, first_new, options,
                                             &pool, &tainted, &dstats);
    std::vector<CandidateTablePair> merged;
    merged.reserve(base_pairs.size() + delta.size());
    std::merge(base_pairs.begin(), base_pairs.end(), delta.begin(),
               delta.end(), std::back_inserter(merged),
               [](const CandidateTablePair& x, const CandidateTablePair& y) {
                 return std::tie(x.a, x.b) < std::tie(y.a, y.b);
               });

    ExpectPairsIdentical(full, merged);
    if (!full_stats.tainted.empty() || !tainted.empty()) {
      std::vector<uint8_t> full_bitmap = full_stats.tainted;
      full_bitmap.resize(n, 0);
      tainted.resize(n, 0);
      EXPECT_EQ(full_bitmap, tainted);
    }
    EXPECT_EQ(full_stats.keys, base_stats.keys + dstats.new_keys);
    EXPECT_EQ(full_stats.dropped_postings,
              base_stats.dropped_postings + dstats.dropped_postings);
    ASSERT_FALSE(HasFailure());
  }
}

// ------------------------------------------- randomized mutation schedules

TEST(IncrementalDifferentialTest, RandomMutationSchedulesMatchColdRebuild) {
  // PR 10 tentpole lockdown: arbitrary schedules mixing appends, removals,
  // and replacements (empty batches, empty removal sets, and full-corpus
  // wipes included) must end up serving exactly the mappings a cold
  // rebuild over the surviving tables serves. Removals tombstone corpus
  // slots in place — ids stay stable by design — so candidate ids can
  // never match a cold run's dense table-order assignment; the oracle
  // comparison is content-level: canonical mappings plus the
  // content-determined counters (candidates, pairs, edges, mappings).
  // Configs keep max_posting high enough that no posting list truncates:
  // truncation keeps the lowest candidate ids, which makes its effect
  // id-assignment-dependent by design, so no exact oracle statement exists
  // for truncated mutation schedules (the counts_exact/tainted machinery
  // is how blocking already owns that approximation).
  const size_t iters = FuzzIters(6);
  Rng rng(20260808);
  size_t appends = 0, removes = 0, replaces = 0, wipes = 0;
  for (size_t iter = 0; iter < iters; ++iter) {
    const size_t n_specs = 30 + rng.Uniform(40);
    auto specs = RandomCorpusSpec(rng, n_specs);
    SynthesisOptions o = BaseOptions();
    const double coh[] = {-1.0, 0.05, 0.15};
    o.extraction.coherence_threshold = coh[rng.Uniform(3)];
    o.blocking.max_posting = 256;
    o.blocking.theta_overlap = 1 + rng.Uniform(2);
    o.divide_and_conquer = rng.Bernoulli(0.8);
    o.min_domains = 1 + rng.Uniform(2);

    const size_t base_n = 1 + rng.Uniform(n_specs / 2);
    SCOPED_TRACE("iter " + std::to_string(iter) + " specs " +
                 std::to_string(n_specs) + " base " + std::to_string(base_n) +
                 " coh " + std::to_string(o.extraction.coherence_threshold) +
                 " theta " + std::to_string(o.blocking.theta_overlap) +
                 " dnc " + std::to_string(o.divide_and_conquer));

    // Incremental run state: which spec occupies which corpus slot, and
    // which slots still hold a live table.
    TableCorpus inc_corpus;
    AddSpecs(&inc_corpus, specs, 0, base_n);
    std::vector<size_t> slot_spec;
    std::vector<uint8_t> live;
    for (size_t i = 0; i < base_n; ++i) {
      slot_spec.push_back(i);
      live.push_back(1);
    }
    size_t next_spec = base_n;

    SynthesisSession inc_session(o);
    ASSERT_TRUE(inc_session.status().ok());
    Family inc = ColdChain(&inc_session, inc_corpus);
    ASSERT_FALSE(HasFailure());

    const size_t steps = 2 + rng.Uniform(4);
    size_t gen = 0;
    size_t total_removed = 0;
    for (size_t s = 0; s < steps; ++s) {
      const uint64_t op = rng.Uniform(3);  // 0 append, 1 remove, 2 replace
      std::vector<uint32_t> removed;
      if (op != 0) {
        const bool wipe = rng.Bernoulli(0.1);
        if (wipe) ++wipes;
        for (size_t slot = 0; slot < live.size(); ++slot) {
          if (live[slot] && (wipe || rng.Bernoulli(0.3))) {
            removed.push_back(static_cast<uint32_t>(slot));
          }
        }
      }
      size_t batch = 0;
      if (op != 1 && next_spec < n_specs) {
        batch = std::min<size_t>(rng.Uniform(9), n_specs - next_spec);
      }
      Result<AppendedArtifacts> grown = [&] {
        if (op == 0) {
          ++appends;
          const size_t first_new = inc_corpus.size();
          AddSpecs(&inc_corpus, specs, next_spec, next_spec + batch);
          return inc_session.AppendTables(inc_corpus, first_new,
                                          inc.candidates, inc.blocked,
                                          inc.scored, inc.partitions,
                                          inc.result);
        }
        if (op == 1) {
          ++removes;
          return inc_session.RemoveTables(&inc_corpus, removed,
                                          inc.candidates, inc.blocked,
                                          inc.scored, inc.partitions,
                                          inc.result);
        }
        ++replaces;
        TableCorpus delta;
        AddSpecs(&delta, specs, next_spec, next_spec + batch);
        return inc_session.ReplaceTables(&inc_corpus, removed, delta,
                                         inc.candidates, inc.blocked,
                                         inc.scored, inc.partitions,
                                         inc.result);
      }();
      ASSERT_TRUE(grown.ok()) << grown.status().ToString();
      AppendedArtifacts family = std::move(grown).value();
      for (uint32_t slot : removed) live[slot] = 0;
      for (size_t i = 0; i < batch; ++i) {
        slot_spec.push_back(next_spec + i);
        live.push_back(1);
      }
      if (op != 1) next_spec += batch;
      total_removed += removed.size();
      ++gen;
      EXPECT_EQ(family.candidates.generation, gen);
      EXPECT_EQ(family.candidates.source_tables, inc_corpus.size());
      // Tombstone provenance accumulates exactly the removed slots (the
      // schedule never re-removes a dead slot, so no dedup is in play).
      EXPECT_EQ(family.candidates.tombstoned_tables.size(), total_removed);
      EXPECT_EQ(family.append.appended_tables, batch);
      EXPECT_EQ(family.append.removed_tables, removed.size());
      EXPECT_EQ(family.blocked.candidates_id, family.candidates.artifact_id);
      EXPECT_EQ(family.scored.candidates_id, family.candidates.artifact_id);
      EXPECT_EQ(family.partitions.graph_id, family.scored.artifact_id);
      inc.candidates = std::move(family.candidates);
      inc.blocked = std::move(family.blocked);
      inc.scored = std::move(family.scored);
      inc.partitions = std::move(family.partitions);
      inc.result = std::move(family.result);
      ASSERT_FALSE(HasFailure());

      // Cold oracle after EVERY step — only the surviving tables, in slot
      // order. Checking per step rather than once at the end pins any
      // divergence to the exact mutation that introduced it (the
      // incremental family is an induction: each step's output must equal
      // that step's cold rebuild or every later step inherits the drift).
      SCOPED_TRACE("step " + std::to_string(s) + " op " + std::to_string(op) +
                   " batch " + std::to_string(batch) + " removed " +
                   std::to_string(removed.size()));
      TableCorpus cold_corpus;
      for (size_t slot = 0; slot < slot_spec.size(); ++slot) {
        if (live[slot]) {
          AddSpecs(&cold_corpus, specs, slot_spec[slot], slot_spec[slot] + 1);
        }
      }
      SynthesisSession cold_session(o);
      ASSERT_TRUE(cold_session.status().ok());
      Family cold = ColdChain(&cold_session, cold_corpus);
      ASSERT_FALSE(HasFailure());

      // Config sanity: the oracle statement assumes truncation never fired.
      ASSERT_EQ(cold.blocked.blocking.dropped_postings, 0u);
      ASSERT_EQ(inc.blocked.blocking.dropped_postings, 0u);

      EXPECT_EQ(cold.result.stats.candidates, inc.result.stats.candidates);
      EXPECT_EQ(cold.blocked.pairs.size(), inc.blocked.pairs.size());
      EXPECT_EQ(cold.result.stats.graph_edges, inc.result.stats.graph_edges);
      EXPECT_EQ(cold.result.stats.mappings, inc.result.stats.mappings);
      EXPECT_EQ(Canonical(cold.result, cold_corpus.pool()),
                Canonical(inc.result, inc_corpus.pool()));
      ASSERT_FALSE(HasFailure());
    }
  }
  EXPECT_GT(removes + replaces, 0u)
      << "the schedule generator produced no shrinking mutations";
  std::printf(
      "mutation schedules: %zu appends, %zu removes, %zu replaces, "
      "%zu wipes\n",
      appends, removes, replaces, wipes);
}

// ------------------------------------------------------------- edge cases

TEST(IncrementalApiTest, EmptyAppendIsIdentityWithFreshGeneration) {
  Rng rng(5);
  auto specs = RandomCorpusSpec(rng, 24);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  SynthesisSession session(BaseOptions());
  Family f = ColdChain(&session, corpus);
  ASSERT_FALSE(HasFailure());

  auto grown = session.AppendTables(corpus, corpus.size(), f.candidates,
                                    f.blocked, f.scored, f.partitions,
                                    f.result);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  const AppendedArtifacts& a = grown.value();
  EXPECT_EQ(a.candidates.generation, 1u);
  EXPECT_EQ(a.append.appended_tables, 0u);
  EXPECT_EQ(a.append.carried_mappings, f.result.mappings.size());
  ExpectPairsIdentical(f.blocked.pairs, a.blocked.pairs);
  EXPECT_EQ(Canonical(f.result, corpus.pool()),
            Canonical(a.result, corpus.pool()));
  // Fresh lineage: the copies feed downstream stages like any artifact.
  auto parts = session.Partition(a.scored);
  EXPECT_TRUE(parts.ok()) << parts.status().ToString();
}

TEST(IncrementalApiTest, AppendRejectsMisuse) {
  Rng rng(9);
  auto specs = RandomCorpusSpec(rng, 20);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 16);
  SynthesisSession session(BaseOptions());
  Family f = ColdChain(&session, corpus);
  ASSERT_FALSE(HasFailure());
  AddSpecs(&corpus, specs, 16, 20);

  // Wrong first_new_table.
  auto wrong = session.AppendTables(corpus, 12, f.candidates, f.blocked,
                                    f.scored, f.partitions, f.result);
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  // Foreign session artifacts.
  SynthesisSession other(BaseOptions());
  auto foreign = other.AppendTables(corpus, 16, f.candidates, f.blocked,
                                    f.scored, f.partitions, f.result);
  EXPECT_EQ(foreign.status().code(), StatusCode::kFailedPrecondition);

  // Adopted candidate sets carry no extraction signatures.
  auto adopted = session.AdoptCandidates(f.candidates.tables(),
                                         corpus.pool());
  ASSERT_TRUE(adopted.ok());
  auto blocked2 = session.BlockPairs(adopted.value());
  ASSERT_TRUE(blocked2.ok());
  auto scored2 = session.ScorePairs(adopted.value(), blocked2.value());
  ASSERT_TRUE(scored2.ok());
  auto parts2 = session.Partition(scored2.value());
  ASSERT_TRUE(parts2.ok());
  auto res2 = session.Resolve(adopted.value(), scored2.value(),
                              parts2.value());
  ASSERT_TRUE(res2.ok());
  auto no_sig = session.AppendTables(corpus, 0, adopted.value(),
                                     blocked2.value(), scored2.value(),
                                     parts2.value(), res2.value());
  EXPECT_EQ(no_sig.status().code(), StatusCode::kFailedPrecondition);

  // A shrunk corpus is not an append.
  TableCorpus small;
  AddSpecs(&small, specs, 0, 8);
  auto shrunk = session.AppendTables(small, 16, f.candidates, f.blocked,
                                     f.scored, f.partitions, f.result);
  EXPECT_EQ(shrunk.status().code(), StatusCode::kInvalidArgument);

  // A result from a different (larger) family is rejected before any
  // component array could be indexed with its out-of-range member ids.
  SynthesisResult fake = f.result;
  SynthesizedMapping oversized;
  oversized.member_tables = {
      static_cast<BinaryTableId>(f.candidates.tables().size() + 5)};
  fake.mappings.push_back(oversized);
  auto bad_result = session.AppendTables(corpus, 16, f.candidates, f.blocked,
                                         f.scored, f.partitions, fake);
  EXPECT_EQ(bad_result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IncrementalApiTest, RemoveRejectsMisuseBeforeMutating) {
  Rng rng(17);
  auto specs = RandomCorpusSpec(rng, 16);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 16);
  SynthesisSession session(BaseOptions());
  Family f = ColdChain(&session, corpus);
  ASSERT_FALSE(HasFailure());
  const size_t columns_before = corpus.TotalColumns();

  // Out-of-range id: rejected before any tombstoning.
  auto oob = session.RemoveTables(&corpus, {3, 99}, f.candidates, f.blocked,
                                  f.scored, f.partitions, f.result);
  EXPECT_EQ(oob.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.TotalColumns(), columns_before);

  // Duplicate ids in one removal set.
  auto dup = session.RemoveTables(&corpus, {5, 5}, f.candidates, f.blocked,
                                  f.scored, f.partitions, f.result);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.TotalColumns(), columns_before);

  // Null corpus.
  auto null_corpus = session.RemoveTables(nullptr, {1}, f.candidates,
                                          f.blocked, f.scored, f.partitions,
                                          f.result);
  EXPECT_EQ(null_corpus.status().code(), StatusCode::kInvalidArgument);

  // Foreign session artifacts.
  SynthesisSession other(BaseOptions());
  auto foreign = other.RemoveTables(&corpus, {1}, f.candidates, f.blocked,
                                    f.scored, f.partitions, f.result);
  EXPECT_EQ(foreign.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(corpus.TotalColumns(), columns_before);

  // Corpus/artifact size mismatch.
  TableCorpus small;
  AddSpecs(&small, specs, 0, 8);
  auto mismatch = session.RemoveTables(&small, {1}, f.candidates, f.blocked,
                                       f.scored, f.partitions, f.result);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);

  // A real removal succeeds; re-removing the now tombstoned slot is a
  // no-op contribution rather than an error (idempotent retries).
  auto once = session.RemoveTables(&corpus, {2}, f.candidates, f.blocked,
                                   f.scored, f.partitions, f.result);
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  const AppendedArtifacts& a = once.value();
  EXPECT_EQ(a.candidates.tombstoned_tables, std::vector<uint32_t>{2});
  auto again = session.RemoveTables(&corpus, {2, 4}, a.candidates, a.blocked,
                                    a.scored, a.partitions, a.result);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().append.removed_tables, 1u);  // only table 4
  EXPECT_EQ(again.value().candidates.tombstoned_tables,
            (std::vector<uint32_t>{2, 4}));
}

TEST(IncrementalApiTest, ReplaceRollsBackOnFrozenPoolAppendFailure) {
  // ReplaceTables is atomic: when the delta merge fails mid-way (frozen
  // serving pool refusing an unseen value), the tombstoned tables come
  // back, the corpus does not grow, and the pool holds not one extra
  // string — a retry sees the exact pre-replace state.
  Rng rng(19);
  auto specs = RandomCorpusSpec(rng, 20);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 16);
  SynthesisSession session(BaseOptions());
  Family f = ColdChain(&session, corpus);
  ASSERT_FALSE(HasFailure());

  corpus.pool().MarkReadOnly();
  const size_t tables_before = corpus.size();
  const size_t columns_before = corpus.TotalColumns();
  const size_t pool_before = corpus.pool().size();

  TableCorpus delta;
  delta.AddFromStrings("frozen.example", TableSource::kWeb,
                       {"name", "code"},
                       {{"value this pool has never seen"}, {"code0"}});
  auto failed = session.ReplaceTables(&corpus, {1, 3}, delta, f.candidates,
                                      f.blocked, f.scored, f.partitions,
                                      f.result);
  EXPECT_EQ(failed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(corpus.size(), tables_before);
  EXPECT_EQ(corpus.TotalColumns(), columns_before);
  EXPECT_EQ(corpus.pool().size(), pool_before);

  // Removal has no interning to do: it still works on the frozen pool, so
  // the failed replace really was rolled back rather than half-applied.
  auto removed = session.RemoveTables(&corpus, {1, 3}, f.candidates,
                                      f.blocked, f.scored, f.partitions,
                                      f.result);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value().append.removed_tables, 2u);
}

TEST(IncrementalApiTest, AppendCorpusValidatesBeforeMutating) {
  // A failed AppendCorpus must not leave the corpus grown past the
  // artifacts — that would be a stuck state every retry re-rejects.
  Rng rng(11);
  auto specs = RandomCorpusSpec(rng, 20);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 16);
  SynthesisSession session(BaseOptions());
  Family f = ColdChain(&session, corpus);
  ASSERT_FALSE(HasFailure());

  TableCorpus delta;
  AddSpecs(&delta, specs, 16, 20);
  SynthesisSession other(BaseOptions());
  auto foreign = other.AppendCorpus(&corpus, delta, f.candidates, f.blocked,
                                    f.scored, f.partitions, f.result);
  EXPECT_EQ(foreign.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(corpus.size(), 16u);  // untouched

  // The same call against the owning session then succeeds.
  auto ok = session.AppendCorpus(&corpus, delta, f.candidates, f.blocked,
                                 f.scored, f.partitions, f.result);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(corpus.size(), 20u);
}

TEST(IncrementalApiTest, AppendFromGrowingCorpusStartsEmpty) {
  // Degenerate but legal schedule: base corpus is empty, everything arrives
  // as appends.
  Rng rng(13);
  auto specs = RandomCorpusSpec(rng, 24);
  SynthesisOptions o = BaseOptions();
  o.extraction.coherence_threshold = -1.0;  // provably stable appends

  TableCorpus cold_corpus;
  AddSpecs(&cold_corpus, specs, 0, specs.size());
  SynthesisSession cold_session(o);
  Family cold = ColdChain(&cold_session, cold_corpus);

  TableCorpus inc_corpus;
  SynthesisSession session(o);
  Family inc = ColdChain(&session, inc_corpus);  // empty cold chain
  ASSERT_FALSE(HasFailure());
  AddSpecs(&inc_corpus, specs, 0, specs.size());
  auto grown = session.AppendTables(inc_corpus, 0, inc.candidates,
                                    inc.blocked, inc.scored, inc.partitions,
                                    inc.result);
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  EXPECT_FALSE(grown.value().append.full_rebuild);
  EXPECT_EQ(Canonical(cold.result, cold_corpus.pool()),
            Canonical(grown.value().result, inc_corpus.pool()));
  ExpectCountersIdentical(cold.result.stats, grown.value().result.stats);
}

// --------------------------------------------- snapshot round trips (PR 4)

TEST(IncrementalSnapshotTest, RestoreAppendSnapshotRoundTrip) {
  Rng rng(31);
  auto specs = RandomCorpusSpec(rng, 40);
  const size_t base_n = 28;
  SynthesisOptions o = BaseOptions();
  const std::string snap1 = ScratchPath("incremental_rt1.mssnap");
  const std::string snap2 = ScratchPath("incremental_rt2.mssnap");
  const std::string store = ScratchPath("incremental_rt.mscorp");

  // Offline: synthesize the base corpus, persist snapshot AND corpus store
  // from the same pool state (so normalized values share ids — the contract
  // restore-then-append verifies).
  {
    TableCorpus corpus;
    AddSpecs(&corpus, specs, 0, base_n);
    SynthesisSession session(o);
    Family f = ColdChain(&session, corpus);
    ASSERT_FALSE(HasFailure());
    ASSERT_TRUE(session
                    .SaveSnapshot(snap1, f.candidates, &f.blocked, &f.scored,
                                  &f.result)
                    .ok());
    ASSERT_TRUE(persist::SaveCorpusStore(corpus, store).ok());
  }

  // Restart: restore the snapshot, reopen the corpus (different pool
  // object, id-compatible), grow it, append, persist the merged artifacts.
  std::multiset<std::string> appended_canonical;
  {
    SynthesisSession session(o);
    auto restored = session.RestoreSnapshot(snap1);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const SessionSnapshot& snap = restored.value();
    EXPECT_EQ(snap.candidates->generation, 0u);
    EXPECT_EQ(snap.candidates->source_tables, base_n);
    ASSERT_EQ(snap.candidates->kept_offsets.size(), base_n + 1);

    auto reopened = persist::OpenCorpusStore(store);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    TableCorpus corpus = std::move(reopened).value();
    AddSpecs(&corpus, specs, base_n, specs.size());

    auto parts = session.Partition(*snap.scored);
    ASSERT_TRUE(parts.ok());
    ASSERT_TRUE(snap.has_result);
    auto grown = session.AppendTables(corpus, base_n, *snap.candidates,
                                      *snap.blocked, *snap.scored,
                                      parts.value(), snap.result);
    ASSERT_TRUE(grown.ok()) << grown.status().ToString();
    const AppendedArtifacts& a = grown.value();
    EXPECT_EQ(a.candidates.generation, 1u);
    EXPECT_EQ(a.candidates.source_tables, specs.size());
    appended_canonical = Canonical(a.result, corpus.pool());

    ASSERT_TRUE(session
                    .SaveSnapshot(snap2, a.candidates, &a.blocked, &a.scored,
                                  &a.result)
                    .ok());
  }

  // The merged snapshot restores with its append lineage and matches a
  // cold rebuild over the grown corpus.
  {
    SynthesisSession session(o);
    auto restored = session.RestoreSnapshot(snap2);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value().candidates->generation, 1u);
    EXPECT_EQ(restored.value().candidates->source_tables, specs.size());
    ASSERT_TRUE(restored.value().has_result);
    EXPECT_EQ(Canonical(restored.value().result, *restored.value().pool),
              appended_canonical);

    TableCorpus cold_corpus;
    AddSpecs(&cold_corpus, specs, 0, specs.size());
    SynthesisSession cold_session(o);
    Family cold = ColdChain(&cold_session, cold_corpus);
    EXPECT_EQ(Canonical(cold.result, cold_corpus.pool()),
              appended_canonical);
  }

  // Fingerprint compatibility rules survive the append: a session with
  // different result-affecting options refuses the merged snapshot.
  {
    SynthesisOptions other = o;
    other.partitioner.tau = -0.4;
    SynthesisSession session(other);
    auto refused = session.RestoreSnapshot(snap2);
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  }

  // Corruption of the merged file is DataLoss, never a silent divergence.
  {
    std::ifstream in(snap2, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x10;
    std::ofstream out(snap2, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    SynthesisSession session(o);
    auto corrupt = session.RestoreSnapshot(snap2);
    EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);
  }

  std::remove(snap1.c_str());
  std::remove(snap2.c_str());
  std::remove(store.c_str());
}

// ------------------------------------------------------------ service layer

TEST(IncrementalServiceTest, AppendAndResynthesizeServesWithoutColdRebuild) {
  Rng rng(41);
  auto specs = RandomCorpusSpec(rng, 40);
  const size_t base_n = 30;
  SynthesisOptions o = BaseOptions();

  // Owned-corpus service (loaded from a TSV dump).
  const std::string tsv = ScratchPath("incremental_service.tsv");
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, base_n);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService service(o);
  ASSERT_TRUE(service.SynthesizeFromFile(tsv).ok());
  const size_t extract_runs_before = service.session_stats().extract_runs;

  TableCorpus delta;
  AddSpecs(&delta, specs, base_n, specs.size());
  Status st = service.AppendAndResynthesize(delta);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(service.session_stats().append_runs, 1u);
  // No cold rebuild: the session-level extract stage never re-ran (the
  // append path extracts the delta internally, not via ExtractCandidates,
  // unless it had to fall back).
  if (service.session_stats().append_full_rebuilds == 0) {
    EXPECT_EQ(service.session_stats().extract_runs, extract_runs_before);
  }

  // Served mappings match a cold service over the grown corpus.
  TableCorpus full;
  AddSpecs(&full, specs, 0, specs.size());
  MappingService cold(o);
  ASSERT_TRUE(cold.Synthesize(full).ok());
  ASSERT_EQ(cold.num_mappings(), service.num_mappings());

  // External-corpus service: grow in place, then ResynthesizeAppended.
  TableCorpus external;
  AddSpecs(&external, specs, 0, base_n);
  MappingService ext_service(o);
  ASSERT_TRUE(ext_service.Synthesize(external).ok());
  // The corpus has not grown yet: fail-closed.
  EXPECT_EQ(ext_service.ResynthesizeAppended().code(),
            StatusCode::kFailedPrecondition);
  AddSpecs(&external, specs, base_n, specs.size());
  ASSERT_TRUE(ext_service.ResynthesizeAppended().ok());
  EXPECT_EQ(ext_service.num_mappings(), cold.num_mappings());

  std::remove(tsv.c_str());
}

TEST(IncrementalServiceTest, AppendRequiresACorpus) {
  Rng rng(47);
  auto specs = RandomCorpusSpec(rng, 24);
  SynthesisOptions o = BaseOptions();
  const std::string snap = ScratchPath("incremental_service.mssnap");
  {
    TableCorpus corpus;
    AddSpecs(&corpus, specs, 0, specs.size());
    MappingService service(o);
    ASSERT_TRUE(service.Synthesize(corpus).ok());
    ASSERT_TRUE(service.SaveSnapshot(snap).ok());
  }
  MappingService restored(o);
  ASSERT_TRUE(restored.OpenFromSnapshot(snap).ok());
  TableCorpus delta;
  AddSpecs(&delta, specs, 0, 2);
  // Snapshot-restored service without a corpus: fail-closed with guidance.
  EXPECT_EQ(restored.AppendAndResynthesize(delta).code(),
            StatusCode::kFailedPrecondition);
  std::remove(snap.c_str());
}

}  // namespace
}  // namespace ms
