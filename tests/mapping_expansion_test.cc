// Tests for synthesized-mapping assembly (popularity stats, labels,
// curation filtering) and the Appendix I table-expansion step.
#include <memory>

#include <gtest/gtest.h>

#include "synth/expansion.h"
#include "synth/mapping.h"
#include "table/string_pool.h"

namespace ms {
namespace {

class MappingFixture : public ::testing::Test {
 protected:
  MappingFixture() : pool_(std::make_shared<StringPool>()) {}

  BinaryTable Make(const std::vector<std::pair<std::string, std::string>>&
                       rows,
                   const std::string& domain = "", BinaryTableId id = 0,
                   const std::string& lname = "", const std::string& rname = "") {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool_->Intern(l), pool_->Intern(r)});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.domain = domain;
    b.id = id;
    b.left_name = lname;
    b.right_name = rname;
    return b;
  }

  std::shared_ptr<StringPool> pool_;
};

TEST_F(MappingFixture, BuildMappingUnionsKeptTables) {
  std::vector<BinaryTable> tables;
  tables.push_back(Make({{"a", "1"}, {"b", "2"}}, "d1.com", 10, "Country",
                        "Code"));
  tables.push_back(Make({{"b", "2"}, {"c", "3"}}, "d2.com", 11, "Country",
                        "Code"));
  tables.push_back(Make({{"z", "9"}}, "d3.com", 12, "name", "code"));
  std::vector<const BinaryTable*> ptrs = {&tables[0], &tables[1], &tables[2]};

  SynthesizedMapping m = BuildMapping(ptrs, {0, 1});
  EXPECT_EQ(m.size(), 3u);  // a, b, c (z's table was not kept)
  EXPECT_EQ(m.member_tables.size(), 3u);
  EXPECT_EQ(m.kept_tables, (std::vector<BinaryTableId>{10, 11}));
  EXPECT_EQ(m.num_domains, 2u);
  EXPECT_EQ(m.left_label, "Country");
  EXPECT_EQ(m.right_label, "Code");
}

TEST_F(MappingFixture, DomainsAreDeduplicated) {
  std::vector<BinaryTable> tables;
  tables.push_back(Make({{"a", "1"}}, "same.com", 0));
  tables.push_back(Make({{"b", "2"}}, "same.com", 1));
  std::vector<const BinaryTable*> ptrs = {&tables[0], &tables[1]};
  SynthesizedMapping m = BuildMapping(ptrs, {0, 1});
  EXPECT_EQ(m.num_domains, 1u);
}

TEST_F(MappingFixture, SynonymFanInStatistic) {
  // 4 left mentions over 2 right values -> LeftPerRight == 2 (Table 6
  // style synonym coverage).
  std::vector<BinaryTable> tables;
  tables.push_back(Make({{"south korea", "kor"},
                         {"korea republic of", "kor"},
                         {"congo", "cod"},
                         {"dr congo", "cod"}}));
  std::vector<const BinaryTable*> ptrs = {&tables[0]};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  EXPECT_EQ(m.NumLeftValues(), 4u);
  EXPECT_EQ(m.NumRightValues(), 2u);
  EXPECT_DOUBLE_EQ(m.LeftPerRight(), 2.0);
}

TEST_F(MappingFixture, FilterByPopularityDropsAndRanks) {
  std::vector<SynthesizedMapping> ms;
  for (size_t domains : {1u, 5u, 3u}) {
    std::vector<BinaryTable> tables;
    std::vector<std::pair<std::string, std::string>> rows;
    for (size_t i = 0; i < 4 + domains; ++i) {
      rows.push_back({"k" + std::to_string(domains) + std::to_string(i),
                      "v" + std::to_string(i)});
    }
    BinaryTable t = Make(rows);
    std::vector<const BinaryTable*> ptrs = {&t};
    SynthesizedMapping m = BuildMapping(ptrs, {0});
    m.num_domains = domains;
    ms.push_back(std::move(m));
  }
  auto filtered = FilterByPopularity(std::move(ms), 2, 1);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].num_domains, 5u);  // ranked by popularity
  EXPECT_EQ(filtered[1].num_domains, 3u);
}

TEST_F(MappingFixture, FilterByMinPairs) {
  std::vector<SynthesizedMapping> ms;
  BinaryTable t = Make({{"a", "1"}});
  std::vector<const BinaryTable*> ptrs = {&t};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  m.num_domains = 10;
  ms.push_back(std::move(m));
  EXPECT_TRUE(FilterByPopularity(std::move(ms), 1, 2).empty());
}

// ------------------------------------------------------------- Expansion

TEST_F(MappingFixture, ExpansionAddsLongTailFromTrustedSource) {
  // Names chosen pairwise > 2 edits apart so approximate matching cannot
  // cross-link them ("sfo"/"jfk" and "lax"/"pdx" are distance 2!).
  BinaryTable core_table = Make({{"lax airport", "lax"},
                                 {"ord airport", "ord"},
                                 {"mia airport", "mia"}});
  std::vector<const BinaryTable*> ptrs = {&core_table};
  SynthesizedMapping m = BuildMapping(ptrs, {0});

  // Trusted feed confirms the core and brings two long-tail airports.
  std::vector<BinaryTable> trusted;
  trusted.push_back(Make({{"lax airport", "lax"},
                          {"ord airport", "ord"},
                          {"mia airport", "mia"},
                          {"bwi airport", "bwi"},
                          {"syr airport", "syr"}}));
  auto stats = ExpandMapping(&m, trusted, *pool_);
  EXPECT_EQ(stats.sources_merged, 1u);
  EXPECT_EQ(stats.pairs_added, 2u);
  EXPECT_EQ(m.size(), 5u);
}

TEST_F(MappingFixture, ExpansionRejectsLowContainmentSource) {
  BinaryTable core_table = Make({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  std::vector<const BinaryTable*> ptrs = {&core_table};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  std::vector<BinaryTable> trusted;
  trusted.push_back(Make({{"a", "1"}, {"x", "8"}, {"y", "9"}}));  // 1/3 core
  auto stats = ExpandMapping(&m, trusted, *pool_);
  EXPECT_EQ(stats.sources_merged, 0u);
  EXPECT_EQ(m.size(), 3u);
}

TEST_F(MappingFixture, ExpansionRejectsConflictingSource) {
  BinaryTable core_table = Make({{"a", "1"}, {"b", "2"}, {"c", "3"},
                                 {"d", "4"}});
  std::vector<const BinaryTable*> ptrs = {&core_table};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  std::vector<BinaryTable> trusted;
  // High containment but conflicting on "d".
  trusted.push_back(Make({{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "X"}}));
  ExpansionOptions opts;
  opts.max_conflict_ratio = 0.0;
  auto stats = ExpandMapping(&m, trusted, *pool_, opts);
  EXPECT_EQ(stats.sources_merged, 0u);
}

TEST_F(MappingFixture, ExpansionNeverOverridesCoreAssignments) {
  BinaryTable core_table = Make({{"a", "1"}, {"b", "2"}});
  std::vector<const BinaryTable*> ptrs = {&core_table};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  std::vector<BinaryTable> trusted;
  trusted.push_back(Make({{"a", "1"}, {"b", "2"}, {"b", "99"}, {"e", "5"}}));
  ExpansionOptions opts;
  opts.max_conflict_ratio = 0.6;  // tolerate the (b,99) conflict
  ExpandMapping(&m, trusted, *pool_, opts);
  // "b" keeps its core right value only.
  size_t b_count = 0;
  for (const auto& p : m.merged.pairs()) {
    if (pool_->Get(p.left) == "b") {
      ++b_count;
      EXPECT_EQ(pool_->Get(p.right), "2");
    }
  }
  EXPECT_EQ(b_count, 1u);
}

TEST_F(MappingFixture, ExpansionStatsCountSources) {
  BinaryTable core_table = Make({{"a", "1"}, {"b", "2"}});
  std::vector<const BinaryTable*> ptrs = {&core_table};
  SynthesizedMapping m = BuildMapping(ptrs, {0});
  std::vector<BinaryTable> trusted;
  trusted.push_back(Make({{"a", "1"}, {"b", "2"}, {"c", "3"}}));
  trusted.push_back(Make({{"z", "0"}}));
  auto stats = ExpandMapping(&m, trusted, *pool_);
  EXPECT_EQ(stats.sources_considered, 2u);
  EXPECT_EQ(stats.sources_merged, 1u);
}

}  // namespace
}  // namespace ms
