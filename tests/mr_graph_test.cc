// Tests for the mini MapReduce engine, union-find, the compatibility graph
// container, and connected components (BFS vs Hash-to-Min equivalence).
#include <map>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/connected_components.h"
#include "graph/union_find.h"
#include "graph/weighted_graph.h"
#include "mr/mapreduce.h"

namespace ms {
namespace {

// -------------------------------------------------------------- MapReduce

TEST(MapReduceTest, WordCount) {
  std::vector<std::string> docs = {"a b a", "b c", "a"};
  std::function<void(const std::string&, Emitter<std::string, int>&)> map_fn =
      [](const std::string& doc, Emitter<std::string, int>& em) {
        size_t pos = 0;
        while (pos < doc.size()) {
          size_t next = doc.find(' ', pos);
          if (next == std::string::npos) next = doc.size();
          em.Emit(doc.substr(pos, next - pos), 1);
          pos = next + 1;
        }
      };
  std::function<void(const std::string&, std::vector<int>&,
                     std::vector<std::pair<std::string, int>>*)>
      reduce_fn = [](const std::string& word, std::vector<int>& counts,
                     std::vector<std::pair<std::string, int>>* out) {
        out->push_back({word, std::accumulate(counts.begin(), counts.end(), 0)});
      };
  auto result =
      RunMapReduce<std::string, std::string, int,
                   std::pair<std::string, int>>(docs, map_fn, reduce_fn,
                                                nullptr);
  std::map<std::string, int> counts(result.begin(), result.end());
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MapReduceTest, ParallelMatchesSerial) {
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  std::function<void(const int&, Emitter<int, int>&)> map_fn =
      [](const int& x, Emitter<int, int>& em) { em.Emit(x % 7, x); };
  std::function<void(const int&, std::vector<int>&,
                     std::vector<std::pair<int, long>>*)>
      reduce_fn = [](const int& key, std::vector<int>& vals,
                     std::vector<std::pair<int, long>>* out) {
        long sum = 0;
        for (int v : vals) sum += v;
        out->push_back({key, sum});
      };
  ThreadPool pool(4);
  auto serial = RunMapReduce<int, int, int, std::pair<int, long>>(
      inputs, map_fn, reduce_fn, nullptr);
  auto parallel = RunMapReduce<int, int, int, std::pair<int, long>>(
      inputs, map_fn, reduce_fn, &pool);
  std::map<int, long> ms_(serial.begin(), serial.end());
  std::map<int, long> mp(parallel.begin(), parallel.end());
  EXPECT_EQ(ms_, mp);
}

TEST(MapReduceTest, EmptyInput) {
  std::function<void(const int&, Emitter<int, int>&)> map_fn =
      [](const int&, Emitter<int, int>&) {};
  std::function<void(const int&, std::vector<int>&, std::vector<int>*)>
      reduce_fn = [](const int&, std::vector<int>&, std::vector<int>*) {};
  auto out = RunMapReduce<int, int, int, int>({}, map_fn, reduce_fn, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(MapShuffleTest, KeysArePartitionConsistentAndComplete) {
  // RunMapShuffle must deliver every emitted pair, with all pairs for one
  // key inside one partition, deterministically across thread counts.
  std::vector<int> inputs(300);
  std::iota(inputs.begin(), inputs.end(), 0);
  std::function<void(const int&, Emitter<int, int>&)> map_fn =
      [](const int& x, Emitter<int, int>& em) { em.Emit(x % 13, x); };
  auto check = [&](ThreadPool* pool) {
    auto parts = RunMapShuffle<int, int, int>(inputs, map_fn, pool);
    std::map<int, size_t> key_partition;
    size_t total = 0;
    long sum = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      for (const auto& [k, v] : parts[p]) {
        auto [it, inserted] = key_partition.emplace(k, p);
        EXPECT_EQ(it->second, p) << "key " << k << " split across partitions";
        ++total;
        sum += v;
      }
    }
    EXPECT_EQ(total, inputs.size());
    EXPECT_EQ(sum, 300L * 299 / 2);
  };
  check(nullptr);
  ThreadPool pool(4);
  check(&pool);
}

TEST(MapReduceTest, DefaultPartitionCount) {
  EXPECT_EQ(DefaultPartitionCount(0, 8), 1u);
  EXPECT_EQ(DefaultPartitionCount(2, 8), 2u);
  EXPECT_EQ(DefaultPartitionCount(1000, 8), 32u);
}

// -------------------------------------------------------------- UnionFind

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  uf.Union(2, 3);
  uf.Union(1, 3);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SetSize(0), 4u);
}

TEST(UnionFindTest, UnionIsIdempotent) {
  UnionFind uf(3);
  uf.Union(0, 1);
  uf.Union(0, 1);
  uf.Union(1, 0);
  EXPECT_EQ(uf.NumSets(), 2u);
  EXPECT_EQ(uf.SetSize(1), 2u);
}

TEST(UnionFindTest, UnionIntoKeepsParentRoot) {
  UnionFind uf(6);
  // Make {0,1,2} with root discovered via Find, then force-merge into 5.
  uf.Union(0, 1);
  uf.Union(1, 2);
  uint32_t r = uf.UnionInto(0, 5);
  EXPECT_EQ(r, 5u);
  EXPECT_EQ(uf.Find(0), 5u);
  EXPECT_EQ(uf.Find(2), 5u);
  EXPECT_EQ(uf.SetSize(5), 4u);
}

TEST(UnionFindTest, ComponentsGroupsAll) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  auto comps = uf.Components();
  EXPECT_EQ(comps.size(), 4u);
  size_t total = 0;
  for (const auto& c : comps) total += c.size();
  EXPECT_EQ(total, 6u);
}

TEST(UnionFindTest, RandomizedAgainstNaive) {
  Rng rng(77);
  const uint32_t n = 64;
  UnionFind uf(n);
  std::vector<uint32_t> naive(n);  // component label per vertex
  std::iota(naive.begin(), naive.end(), 0u);
  for (int op = 0; op < 300; ++op) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    uf.Union(a, b);
    uint32_t la = naive[a], lb = naive[b];
    if (la != lb) {
      for (auto& l : naive) {
        if (l == lb) l = la;
      }
    }
    // Spot-check connectivity agreement.
    uint32_t x = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t y = static_cast<uint32_t>(rng.Uniform(n));
    EXPECT_EQ(uf.Connected(x, y), naive[x] == naive[y]);
  }
}

// ----------------------------------------------------- CompatibilityGraph

TEST(CompatibilityGraphTest, EdgeStorageAndAdjacency) {
  CompatibilityGraph g(4);
  g.AddEdge(0, 1, 0.8, 0.0);
  g.AddEdge(2, 1, 0.5, -0.3);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.IncidentEdges(1).size(), 2u);
  EXPECT_EQ(g.IncidentEdges(3).size(), 0u);
  // Edges normalize endpoints to u < v.
  EXPECT_EQ(g.edges()[1].u, 1u);
  EXPECT_EQ(g.edges()[1].v, 2u);
  EXPECT_EQ(g.Other(g.edges()[1], 1), 2u);
}

// ----------------------------------------------------------- Components

CompatibilityGraph ChainGraph(size_t n, double w) {
  CompatibilityGraph g(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1), w, 0.0);
  }
  g.Finalize();
  return g;
}

TEST(ConnectedComponentsTest, ChainIsOneComponent) {
  auto g = ChainGraph(10, 0.9);
  auto comp = ConnectedComponentsBfs(g);
  for (uint32_t c : comp) EXPECT_EQ(c, comp[0]);
}

TEST(ConnectedComponentsTest, ThresholdSplitsChain) {
  CompatibilityGraph g(4);
  g.AddEdge(0, 1, 0.9, 0.0);
  g.AddEdge(1, 2, 0.1, 0.0);  // below threshold
  g.AddEdge(2, 3, 0.9, 0.0);
  g.Finalize();
  auto comp = ConnectedComponentsBfs(g, 0.5);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreSingletons) {
  CompatibilityGraph g(3);
  g.Finalize();
  auto comp = ConnectedComponentsBfs(g);
  EXPECT_EQ(GroupByComponent(comp).size(), 3u);
}

TEST(ConnectedComponentsTest, HashToMinMatchesBfsOnChain) {
  auto g = ChainGraph(32, 0.7);
  auto bfs = GroupByComponent(ConnectedComponentsBfs(g));
  auto htm = GroupByComponent(ConnectedComponentsHashToMin(g));
  EXPECT_EQ(bfs.size(), htm.size());
}

/// Property: BFS and Hash-to-Min produce identical partitions on random
/// graphs (compared as canonical component signatures).
class CcEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CcEquivalenceTest, BfsEqualsHashToMin) {
  Rng rng(GetParam());
  const size_t n = 60;
  CompatibilityGraph g(n);
  const size_t edges = 80;
  for (size_t e = 0; e < edges; ++e) {
    VertexId u = static_cast<VertexId>(rng.Uniform(n));
    VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v) continue;
    g.AddEdge(u, v, rng.UniformDouble(), 0.0);
  }
  g.Finalize();
  ThreadPool pool(2);
  for (double threshold : {0.0, 0.3, 0.7}) {
    auto a = ConnectedComponentsBfs(g, threshold);
    auto b = ConnectedComponentsHashToMin(g, threshold, &pool);
    // Same partition iff component ids are consistent pairwise.
    ASSERT_EQ(a.size(), b.size());
    std::map<uint32_t, uint32_t> a2b;
    for (size_t v = 0; v < n; ++v) {
      auto [it, inserted] = a2b.emplace(a[v], b[v]);
      EXPECT_EQ(it->second, b[v]) << "seed=" << GetParam()
                                  << " threshold=" << threshold;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CcEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(GroupByComponentTest, EmptyInput) {
  EXPECT_TRUE(GroupByComponent({}).empty());
}

}  // namespace
}  // namespace ms
