// Lockdown suite for the remote serving subsystem (net/wire.{h,cc},
// net/server.{h,cc}, net/client.{h,cc}):
//
//   - wire round trips: every request/response message survives
//     encode→decode, requests reject trailing bytes, responses tolerate
//     them (the additive-fields versioning rule), and the framing layer
//     classifies every corruption class correctly;
//   - loopback differential: each of the five request types served over a
//     real TCP connection is BYTE-IDENTICAL to a local encode of the
//     in-process MappingService result — the server adds no semantics;
//   - protocol robustness: unknown types, malformed bodies, version
//     mismatches, bad magic/CRC/oversized frames each produce the
//     documented error-response-or-close outcome and never wedge the
//     server (NetFuzzTest hammers this with random mutations);
//   - flow control: bounded in-flight with pipelined clients, idle-timeout
//     reaping;
//   - the scratch-reusing MappingStore batch overloads match the plain
//     ones exactly.
//
// The multi-threaded half (remote readers during live appends, per-
// connection version monotonicity) is NetServingConcurrencyTest — the name
// matches the `concurrency` ctest label's *ServingConcurrency* filter.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/auto_correct.h"
#include "apps/auto_fill.h"
#include "apps/auto_join.h"
#include "apps/serving.h"
#include "common/random.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms {
namespace {

using net::AppendFrame;
using net::FrameDecodeStatus;
using net::FrameHeader;
using net::MappingClient;
using net::MappingServer;
using net::MsgType;
using net::ResponseHeader;
using net::ServerOptions;
using net::TryDecodeFrame;

// ------------------------------------------------------ corpus construction

struct TableSpec {
  std::string domain;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
};

/// Same web-shaped generator family as the serving suites: a ground mapping
/// name_i -> code_(i mod 8) sampled with typo and conflict noise.
std::vector<TableSpec> SmallCorpusSpec(Rng& rng, size_t n_tables) {
  std::vector<std::string> lefts, rights;
  for (size_t i = 0; i < 24; ++i) {
    lefts.push_back("entity name " + std::to_string(i));
    rights.push_back("code" + std::to_string(i % 8));
  }
  std::vector<TableSpec> specs;
  specs.reserve(n_tables);
  for (size_t t = 0; t < n_tables; ++t) {
    TableSpec spec;
    spec.domain = "domain" + std::to_string(rng.Uniform(4)) + ".example";
    const size_t rows = 4 + rng.Uniform(5);
    std::vector<std::string> lcol, rcol;
    std::set<uint64_t> seen;
    while (lcol.size() < rows) {
      const uint64_t li = rng.Uniform(lefts.size());
      if (!seen.insert(li).second) continue;
      std::string l = lefts[li];
      if (rng.Bernoulli(0.1)) {
        l[rng.Uniform(l.size())] = static_cast<char>('a' + rng.Uniform(26));
      }
      std::string r = rights[li];
      if (rng.Bernoulli(0.05)) r = "code" + std::to_string(rng.Uniform(8));
      lcol.push_back(std::move(l));
      rcol.push_back(std::move(r));
    }
    spec.names = {"name", "code"};
    spec.cols = {std::move(lcol), std::move(rcol)};
    specs.push_back(std::move(spec));
  }
  return specs;
}

void AddSpecs(TableCorpus* corpus, const std::vector<TableSpec>& specs,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    corpus->AddFromStrings(specs[i].domain, TableSource::kWeb, specs[i].names,
                           specs[i].cols);
  }
}

SynthesisOptions ServingOptions() {
  SynthesisOptions o;
  o.num_threads = 2;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

std::vector<std::string> QueryKeys() {
  std::vector<std::string> keys;
  for (size_t i = 0; i < 24; ++i) {
    keys.push_back("entity name " + std::to_string(i));
  }
  keys.push_back("no such entity");
  keys.push_back("entity name 3");  // duplicate: exercises dedup
  return keys;
}

std::vector<std::string> QueryCodes() {
  std::vector<std::string> codes;
  for (size_t i = 0; i < 8; ++i) codes.push_back("code" + std::to_string(i));
  codes.push_back("code999");
  return codes;
}

/// A service synthesized from the standard corpus plus a running server,
/// torn down in reverse order. health_refresh_ms = 0 so response headers
/// carry exact (not cached) rotation fields.
struct ServedFixture {
  std::vector<TableSpec> specs;
  TableCorpus corpus;
  MappingService service;
  MappingServer server;

  explicit ServedFixture(ServerOptions opts = ExactHealthOptions(),
                         size_t n_tables = 20)
      : specs(MakeSpecs(n_tables)), service(ServingOptions()),
        server(service, opts) {
    AddSpecs(&corpus, specs, 0, specs.size());
    EXPECT_TRUE(service.Synthesize(corpus).ok());
    EXPECT_GT(service.num_mappings(), 0u);
    EXPECT_TRUE(server.Start().ok());
    EXPECT_NE(server.port(), 0);
  }

  static ServerOptions ExactHealthOptions() {
    ServerOptions o;
    o.health_refresh_ms = 0;
    return o;
  }

  static std::vector<TableSpec> MakeSpecs(size_t n_tables) {
    Rng rng(0x5EC7A11u);
    return SmallCorpusSpec(rng, n_tables);
  }

  MappingClient Connect(net::ClientOptions copts = {}) {
    auto c = MappingClient::Connect("127.0.0.1", server.port(), copts);
    EXPECT_TRUE(c.ok()) << c.status().message();
    return std::move(c.value());
  }
};

/// Frame-level test access: a raw TCP connection speaking hand-built bytes.
class RawConn {
 public:
  explicit RawConn(uint16_t port, int timeout_ms = 2000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  enum class Recv { kFrame, kClosed, kTimeout };

  /// Blocks for the next complete frame. kClosed = orderly EOF (and any
  /// trailing partial bytes discarded), kTimeout = nothing arrived.
  Recv RecvFrame(FrameHeader* header, std::string* body) {
    while (true) {
      std::string_view view;
      size_t consumed = 0;
      std::string error;
      const FrameDecodeStatus st = TryDecodeFrame(
          buf_, net::kMaxFrameBody, header, &view, &consumed, &error);
      if (st == FrameDecodeStatus::kFrame) {
        body->assign(view.data(), view.size());
        buf_.erase(0, consumed);
        return Recv::kFrame;
      }
      if (st == FrameDecodeStatus::kBadFrame) {
        ADD_FAILURE() << "server sent an unparseable frame: " << error;
        return Recv::kClosed;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) return Recv::kClosed;
      if (errno == EINTR) continue;
      return Recv::kTimeout;
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

// ------------------------------------------------------------ wire layer

TEST(NetWireTest, FrameRoundTripAndIncrementalFeed) {
  const std::string body = "hello frame body";
  std::string frame;
  AppendFrame(MsgType::kHealthReq, 42, body, &frame);
  ASSERT_EQ(frame.size(), net::kFrameHeaderSize + body.size());

  // Every strict prefix is kNeedMoreData — never a misclassification.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameHeader h;
    std::string_view b;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(std::string_view(frame).substr(0, cut),
                             net::kMaxFrameBody, &h, &b, &consumed, &error),
              FrameDecodeStatus::kNeedMoreData)
        << "prefix length " << cut;
  }

  FrameHeader h;
  std::string_view b;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(frame, net::kMaxFrameBody, &h, &b, &consumed,
                           &error),
            FrameDecodeStatus::kFrame);
  EXPECT_EQ(h.protocol_version, net::kProtocolVersion);
  EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kHealthReq));
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(b, body);
  EXPECT_EQ(consumed, frame.size());
}

TEST(NetWireTest, FrameCorruptionClasses) {
  std::string frame;
  AppendFrame(MsgType::kLookupBatchReq, 7, "payload", &frame);
  FrameHeader h;
  std::string_view b;
  size_t consumed = 0;
  std::string error;

  auto classify = [&](std::string f, size_t max_body = net::kMaxFrameBody) {
    return TryDecodeFrame(f, max_body, &h, &b, &consumed, &error);
  };

  {
    std::string f = frame;
    f[0] ^= 0x01;  // magic
    EXPECT_EQ(classify(f), FrameDecodeStatus::kBadFrame);
  }
  {
    std::string f = frame;
    f[6] = 1;  // reserved byte
    EXPECT_EQ(classify(f), FrameDecodeStatus::kBadFrame);
  }
  {
    std::string f = frame;
    f[net::kFrameHeaderSize] ^= 0x40;  // body → CRC mismatch
    EXPECT_EQ(classify(f), FrameDecodeStatus::kBadFrame);
  }
  // Oversized body length against a lowered cap.
  EXPECT_EQ(classify(frame, /*max_body=*/3), FrameDecodeStatus::kBadFrame);
  // Protocol-version mismatch still decodes — the server must answer it.
  {
    std::string f = frame;
    f[4] = net::kProtocolVersion + 1;
    EXPECT_EQ(classify(f), FrameDecodeStatus::kFrame);
    EXPECT_EQ(h.protocol_version, net::kProtocolVersion + 1);
  }
}

TEST(NetWireTest, OversizedBodyRefusesToFrame) {
  // A body past the protocol cap must be refused outright: truncating its
  // length to u32 would emit a frame whose body_len/crc disagree with the
  // appended bytes and desync the stream.
  std::string out = "sentinel";
  const std::string oversized(static_cast<size_t>(net::kMaxFrameBody) + 1,
                              'x');
  EXPECT_FALSE(AppendFrame(MsgType::kLookupBatchResp, 1, oversized, &out));
  EXPECT_EQ(out, "sentinel");  // nothing appended on failure
  EXPECT_TRUE(AppendFrame(MsgType::kHealthReq, 2, "small", &out));
  EXPECT_EQ(out.size(), 8 + net::kFrameHeaderSize + 5);
}

TEST(NetWireTest, RequestRoundTripsAndExactConsumption) {
  net::SuggestCorrectionsRequest sc;
  sc.column = {"a", "", "b b"};
  sc.options.min_coverage = 0.25;
  sc.options.min_minority = 3;
  {
    const std::string body = EncodeSuggestCorrectionsRequest(sc);
    net::SuggestCorrectionsRequest out;
    ASSERT_TRUE(DecodeSuggestCorrectionsRequest(body, &out));
    EXPECT_EQ(out.column, sc.column);
    EXPECT_EQ(out.options.min_coverage, sc.options.min_coverage);
    EXPECT_EQ(out.options.min_minority, sc.options.min_minority);
    // Requests must consume exactly: trailing bytes are malformed.
    EXPECT_FALSE(DecodeSuggestCorrectionsRequest(body + "x", &out));
    // And truncation is malformed.
    EXPECT_FALSE(DecodeSuggestCorrectionsRequest(
        std::string_view(body).substr(0, body.size() - 1), &out));
  }

  net::AutoFillRequest af;
  af.keys = {"k1", "k2", "k3"};
  af.examples = {{0, "v1"}, {2, "v3"}};
  af.options.min_examples = 2;
  {
    const std::string body = EncodeAutoFillRequest(af);
    net::AutoFillRequest out;
    ASSERT_TRUE(DecodeAutoFillRequest(body, &out));
    EXPECT_EQ(out.keys, af.keys);
    EXPECT_EQ(out.examples, af.examples);
    EXPECT_EQ(out.options.min_examples, af.options.min_examples);
    EXPECT_FALSE(DecodeAutoFillRequest(body + "x", &out));
  }

  net::AutoJoinRequest aj;
  aj.left_keys = {"l1", "l2"};
  aj.right_keys = {"r1"};
  aj.options.min_join_rate = 0.5;
  {
    const std::string body = EncodeAutoJoinRequest(aj);
    net::AutoJoinRequest out;
    ASSERT_TRUE(DecodeAutoJoinRequest(body, &out));
    EXPECT_EQ(out.left_keys, aj.left_keys);
    EXPECT_EQ(out.right_keys, aj.right_keys);
    EXPECT_EQ(out.options.min_join_rate, aj.options.min_join_rate);
    EXPECT_FALSE(DecodeAutoJoinRequest(body + "x", &out));
  }

  net::LookupBatchRequest lb;
  lb.mapping_index = 3;
  lb.direction = 1;
  lb.values = {"x", "y", "x"};
  {
    const std::string body = EncodeLookupBatchRequest(lb);
    net::LookupBatchRequest out;
    ASSERT_TRUE(DecodeLookupBatchRequest(body, &out));
    EXPECT_EQ(out.mapping_index, lb.mapping_index);
    EXPECT_EQ(out.direction, lb.direction);
    EXPECT_EQ(out.values, lb.values);
    EXPECT_FALSE(DecodeLookupBatchRequest(body + "x", &out));
    // direction > 1 is malformed.
    net::LookupBatchRequest bad = lb;
    bad.direction = 9;
    EXPECT_FALSE(
        DecodeLookupBatchRequest(EncodeLookupBatchRequest(bad), &out));
  }
}

TEST(NetWireTest, ResponsesTolerateTrailingBytes) {
  ResponseHeader rh;
  rh.status_code = 0;
  rh.health.snapshot_version = 9;
  rh.health.num_mappings = 4;
  rh.health.generation_served = 2;
  rh.health.degraded = true;

  net::LookupBatchResponse lb;
  lb.values = {std::optional<std::string>("v"), std::nullopt};
  const std::string body = EncodeLookupBatchResponse(rh, lb);

  ResponseHeader out_h;
  net::LookupBatchResponse out;
  // A same-version peer may append fields we do not know: decode succeeds.
  ASSERT_TRUE(DecodeLookupBatchResponse(body + "future-field", &out_h, &out));
  EXPECT_EQ(out_h, rh);
  EXPECT_EQ(out, lb);
  // Truncation is still malformed.
  EXPECT_FALSE(DecodeLookupBatchResponse(
      std::string_view(body).substr(0, body.size() - 1), &out_h, &out));
}

TEST(NetWireTest, StatsAndHealthAndErrorResponsesRoundTrip) {
  ResponseHeader rh;
  rh.status_code = static_cast<uint8_t>(StatusCode::kFailedPrecondition);
  rh.message = "bad version";
  rh.health.snapshot_version = 1;

  {
    const std::string body = EncodeErrorResponse(rh);
    ResponseHeader out;
    ASSERT_TRUE(DecodeErrorResponse(body, &out));
    EXPECT_EQ(out, rh);
    EXPECT_EQ(out.ToStatus().code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(out.ToStatus().message(), "bad version");
  }

  rh.status_code = 0;
  rh.message.clear();
  net::HealthResponse hr;
  hr.generations_skipped = 2;
  hr.quarantined_files = {"snap-3.mssnap.corrupt"};
  hr.retries_performed = 5;
  hr.io_failures = 3;
  {
    const std::string body = EncodeHealthResponse(rh, hr);
    ResponseHeader out_h;
    net::HealthResponse out;
    ASSERT_TRUE(DecodeHealthResponse(body, &out_h, &out));
    EXPECT_EQ(out, hr);
    // A pre-io_failures peer's body is the same encoding minus the trailing
    // u64: it must still decode, with the new field defaulting to zero.
    net::HealthResponse old_out;
    ASSERT_TRUE(DecodeHealthResponse(
        std::string_view(body).substr(0, body.size() - 8), &out_h, &old_out));
    EXPECT_EQ(old_out.retries_performed, hr.retries_performed);
    EXPECT_EQ(old_out.io_failures, 0u);
  }

  net::StatsResponse sr;
  sr.total_requests = 100;
  sr.total_errors = 3;
  sr.malformed_frames = 1;
  sr.bytes_in = 1000;
  sr.bytes_out = 2000;
  sr.connections_opened = 7;
  sr.connections_active = 2;
  net::RequestTypeStats ts;
  ts.count = 50;
  ts.errors = 1;
  ts.p50_us = 127.0;
  ts.p99_us = 1023.0;
  sr.per_type.emplace_back(4, ts);
  sr.env_retries = 11;
  sr.env_io_failures = 2;
  {
    const std::string body = EncodeStatsResponse(rh, sr);
    ResponseHeader out_h;
    net::StatsResponse out;
    ASSERT_TRUE(DecodeStatsResponse(body, &out_h, &out));
    EXPECT_EQ(out, sr);
    // Pre-env-counters peers end the body before the two trailing u64s.
    net::StatsResponse old_out;
    ASSERT_TRUE(DecodeStatsResponse(
        std::string_view(body).substr(0, body.size() - 16), &out_h, &old_out));
    EXPECT_EQ(old_out.total_requests, sr.total_requests);
    EXPECT_EQ(old_out.env_retries, 0u);
    EXPECT_EQ(old_out.env_io_failures, 0u);
  }
}

TEST(NetWireTest, MetricsTextResponseRoundTripAndByteStability) {
  ResponseHeader rh;
  rh.status_code = 0;
  rh.health.snapshot_version = 12;
  rh.health.num_mappings = 3;

  net::MetricsTextResponse mt;
  mt.text =
      "ms_demo_total 4\n"
      "ms_demo_us_bucket{le=\"1\"} 2\n";
  const std::string body = EncodeMetricsTextResponse(rh, mt);
  // Encoding is deterministic: the same response encodes to the same bytes.
  EXPECT_EQ(body, EncodeMetricsTextResponse(rh, mt));

  ResponseHeader out_h;
  net::MetricsTextResponse out;
  ASSERT_TRUE(DecodeMetricsTextResponse(body, &out_h, &out));
  EXPECT_EQ(out_h, rh);
  EXPECT_EQ(out, mt);
  // Additive-evolution rules hold for the new message too: trailing bytes
  // tolerated, truncation rejected.
  ASSERT_TRUE(DecodeMetricsTextResponse(body + "future", &out_h, &out));
  EXPECT_EQ(out, mt);
  EXPECT_FALSE(DecodeMetricsTextResponse(
      std::string_view(body).substr(0, body.size() - 1), &out_h, &out));

  net::MetricsTextResponse empty;
  const std::string empty_body = EncodeMetricsTextResponse(rh, empty);
  ASSERT_TRUE(DecodeMetricsTextResponse(empty_body, &out_h, &out));
  EXPECT_EQ(out.text, "");
}

// ---------------------------------------------------- loopback differential

TEST(NetServerTest, LoopbackDifferentialAllFiveRequestTypes) {
  ServedFixture fx;
  MappingClient client = fx.Connect();
  const auto snap = fx.service.AcquireSnapshot();
  ASSERT_NE(snap, nullptr);

  // SuggestCorrections: remote result == in-process result, and the
  // response bytes == a local re-encode of the in-process result under the
  // response's own header. That second check is the strong one: it pins
  // every field the server serialized, not just the ones we compare.
  {
    std::vector<std::string> column = QueryCodes();
    column.push_back("entity name 1");  // minority → suggestion material
    AutoCorrectOptions opts;
    opts.min_coverage = 0.3;
    auto remote = client.SuggestCorrections(column, opts);
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    const AutoCorrectResult local =
        fx.service.SuggestCorrections(column, opts);
    EXPECT_EQ(remote.value().mapping_index, local.mapping_index);
    EXPECT_EQ(remote.value().suggestions.size(), local.suggestions.size());
    EXPECT_EQ(client.last_response_body(),
              EncodeSuggestCorrectionsResponse(client.last_header(), local));
  }

  // AutoFill.
  {
    const std::vector<std::string> keys = QueryKeys();
    const std::vector<std::pair<size_t, std::string>> examples = {
        {0, "code0"}, {1, "code1"}};
    auto remote = client.AutoFill(keys, examples);
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    const AutoFillResult local = fx.service.AutoFill(keys, examples);
    EXPECT_EQ(remote.value().mapping_index, local.mapping_index);
    EXPECT_EQ(remote.value().values, local.values);
    EXPECT_EQ(remote.value().num_filled, local.num_filled);
    EXPECT_EQ(client.last_response_body(),
              EncodeAutoFillResponse(client.last_header(), local));
  }

  // AutoJoin.
  {
    const std::vector<std::string> lefts = QueryKeys();
    const std::vector<std::string> rights = QueryCodes();
    auto remote = client.AutoJoin(lefts, rights);
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    const AutoJoinResult local = fx.service.AutoJoin(lefts, rights);
    EXPECT_EQ(remote.value().mapping_index, local.mapping_index);
    EXPECT_EQ(remote.value().pairs.size(), local.pairs.size());
    EXPECT_EQ(client.last_response_body(),
              EncodeAutoJoinResponse(client.last_header(), local));
  }

  // LookupBatch, both directions.
  for (uint8_t direction = 0; direction <= 1; ++direction) {
    const std::vector<std::string> values =
        direction == 0 ? QueryKeys() : QueryCodes();
    auto remote = client.LookupBatch(0, values, direction);
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    const auto local = fx.service.LookupBatch(
        0, values,
        direction == 0 ? MappingService::LookupDirection::kLeftToRight
                       : MappingService::LookupDirection::kRightToLeft);
    EXPECT_EQ(remote.value(), local);
    net::LookupBatchResponse local_resp;
    local_resp.values = local;
    EXPECT_EQ(client.last_response_body(),
              EncodeLookupBatchResponse(client.last_header(), local_resp));
  }

  // Health.
  {
    auto remote = client.Health();
    ASSERT_TRUE(remote.ok()) << remote.status().message();
    const ServiceHealth local = fx.service.health();
    EXPECT_EQ(remote.value().generations_skipped, local.generations_skipped);
    EXPECT_EQ(remote.value().quarantined_files, local.quarantined_files);
    EXPECT_EQ(remote.value().retries_performed, local.retries_performed);
    EXPECT_EQ(remote.value().io_failures, local.io_failures);
    net::HealthResponse local_resp;
    local_resp.generations_skipped = local.generations_skipped;
    local_resp.quarantined_files = local.quarantined_files;
    local_resp.retries_performed = local.retries_performed;
    local_resp.io_failures = local.io_failures;
    EXPECT_EQ(client.last_response_body(),
              EncodeHealthResponse(client.last_header(), local_resp));
  }

  EXPECT_FALSE(client.version_regressed());
  EXPECT_EQ(client.max_snapshot_version(), snap->version);
}

TEST(NetServerTest, EveryResponseCarriesSnapshotBoundHealth) {
  ServedFixture fx;
  MappingClient client = fx.Connect();

  auto check_header = [&](const char* what) {
    const net::HealthAndVersion& h = client.last_header().health;
    EXPECT_EQ(h.snapshot_version, fx.service.AcquireSnapshot()->version)
        << what;
    EXPECT_EQ(h.num_mappings, fx.service.num_mappings()) << what;
    EXPECT_EQ(h.generation_served, fx.service.health().generation_served)
        << what;
    EXPECT_EQ(h.degraded, fx.service.health().degraded()) << what;
  };

  ASSERT_TRUE(client.LookupBatch(0, {"entity name 1"}).ok());
  check_header("LookupBatch");
  ASSERT_TRUE(client.Health().ok());
  check_header("Health");
  ASSERT_TRUE(client.Stats().ok());
  check_header("Stats");

  // A version-bumping transition is visible on the very next response.
  const uint64_t before = client.last_header().health.snapshot_version;
  ASSERT_TRUE(fx.service.Resynthesize(ServingOptions()).ok());
  ASSERT_TRUE(client.Health().ok());
  EXPECT_EQ(client.last_header().health.snapshot_version, before + 1);
  EXPECT_FALSE(client.version_regressed());
}

TEST(NetServerTest, OutOfRangeMappingIndexMirrorsInProcessSemantics) {
  ServedFixture fx;
  MappingClient client = fx.Connect();
  // In-process LookupBatch answers all-nullopt for a bad index, not an
  // error; the server must mirror that, not invent a failure mode.
  auto remote = client.LookupBatch(1'000'000, {"a", "b"});
  ASSERT_TRUE(remote.ok()) << remote.status().message();
  EXPECT_EQ(remote.value(),
            fx.service.LookupBatch(1'000'000, {"a", "b"}));
  EXPECT_EQ(remote.value().size(), 2u);
  EXPECT_FALSE(remote.value()[0].has_value());
}

TEST(NetServerTest, StatsCountRequestsAndFoldIntoServiceHealth) {
  ServedFixture fx;
  MappingClient client = fx.Connect();
  ASSERT_TRUE(client.LookupBatch(0, {"entity name 1"}).ok());
  ASSERT_TRUE(client.Health().ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  // LookupBatch + Health + this Stats request (counted when it responds).
  EXPECT_GE(stats.value().total_requests, 2u);
  EXPECT_GT(stats.value().bytes_in, 0u);
  EXPECT_GT(stats.value().bytes_out, 0u);
  EXPECT_GE(stats.value().connections_opened, 1u);
  EXPECT_GE(stats.value().connections_active, 1u);
  ASSERT_EQ(stats.value().per_type.size(), net::kNumRequestTypes);
  const auto& lookup_stats =
      stats.value().per_type[static_cast<size_t>(MsgType::kLookupBatchReq) - 1];
  EXPECT_EQ(lookup_stats.first,
            static_cast<uint8_t>(MsgType::kLookupBatchReq));
  EXPECT_GE(lookup_stats.second.count, 1u);

  // The same counters surface through ServiceHealth::remote — one health
  // probe covers the storage story and the network story.
  const ServiceHealth h = fx.service.health();
  EXPECT_GE(h.remote.requests, 3u);
  EXPECT_GT(h.remote.bytes_in, 0u);
  EXPECT_GT(h.remote.bytes_out, 0u);
  EXPECT_GE(h.remote.connections_active, 1u);

  // After Stop the source is unregistered: remote goes back to zeros.
  fx.server.Stop();
  EXPECT_EQ(fx.service.health().remote.requests, 0u);
  EXPECT_EQ(fx.service.health().remote.connections_active, 0u);
}

TEST(NetServerTest, MetricsTextScrapesRegistryAndNetSeries) {
  ServedFixture fx;
  MappingClient client = fx.Connect();
  ASSERT_TRUE(client.LookupBatch(0, {"entity name 1"}).ok());
  ASSERT_TRUE(client.Health().ok());

  auto scrape = client.MetricsText();
  ASSERT_TRUE(scrape.ok()) << scrape.status().message();
  const std::string& text = scrape.value();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Every line is `name value` or `name{labels} value` with a numeric value
  // — the shape a Prometheus-style scraper expects.
  size_t lines = 0;
  for (size_t pos = 0; pos < text.size();) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated final line";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    const std::string value_part = line.substr(space + 1);
    ASSERT_FALSE(name_part.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name_part[0])) ||
                name_part[0] == '_')
        << line;
    if (name_part.back() == '}') {
      EXPECT_NE(name_part.find('{'), std::string::npos) << line;
    }
    char* end = nullptr;
    (void)std::strtod(value_part.c_str(), &end);
    EXPECT_TRUE(end != nullptr && *end == '\0' && end != value_part.c_str())
        << line;
  }
  EXPECT_GT(lines, 10u);

  // The one scrape covers all three stories: synthesis stage timings
  // (ServedFixture ran a full synthesis), serving publication state, env IO
  // counters, and the server's own per-type request series.
  EXPECT_NE(text.find("ms_synth_stage_us_bucket{stage=\"extract\""),
            std::string::npos);
  EXPECT_NE(text.find("ms_serving_publish_us_"), std::string::npos);
  EXPECT_NE(text.find("ms_serving_snapshot_version "), std::string::npos);
  EXPECT_NE(text.find("ms_serving_transitions_total "), std::string::npos);
  EXPECT_NE(text.find("ms_env_retries_total "), std::string::npos);
  EXPECT_NE(text.find("ms_env_io_failures_total "), std::string::npos);
  EXPECT_NE(text.find("ms_net_requests_total{type=\"lookup_batch\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ms_net_request_us_count{type=\"health\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ms_net_connections_active "), std::string::npos);

  // Counters only move forward between scrapes, and the scrape itself is
  // counted: the metrics_text series shows up by the second scrape.
  auto scrape2 = client.MetricsText();
  ASSERT_TRUE(scrape2.ok()) << scrape2.status().message();
  EXPECT_NE(
      scrape2.value().find("ms_net_requests_total{type=\"metrics_text\"}"),
      std::string::npos);
}

// ------------------------------------------------------- protocol errors

TEST(NetServerTest, UnknownTypeAndMalformedBodyKeepConnectionAlive) {
  ServedFixture fx;
  RawConn raw(fx.server.port());
  ASSERT_TRUE(raw.connected());

  // Unknown request type: error response, connection survives.
  {
    std::string frame;
    AppendFrame(static_cast<MsgType>(0x50), 1, "", &frame);
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame);
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
    EXPECT_EQ(h.request_id, 1u);
    ResponseHeader rh;
    ASSERT_TRUE(DecodeErrorResponse(body, &rh));
    EXPECT_EQ(rh.ToStatus().code(), StatusCode::kInvalidArgument);
  }

  // Malformed body of a well-framed request: error response, survives.
  {
    net::LookupBatchRequest req;
    req.direction = 9;  // decoder rejects
    std::string frame;
    AppendFrame(MsgType::kLookupBatchReq, 2, EncodeLookupBatchRequest(req),
                &frame);
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame);
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
    EXPECT_EQ(h.request_id, 2u);
  }

  // The same connection still serves real requests.
  {
    std::string frame;
    AppendFrame(MsgType::kHealthReq, 3, "", &frame);
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame);
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kHealthResp));
    EXPECT_EQ(h.request_id, 3u);
  }
}

TEST(NetServerTest, ProtocolVersionMismatchIsRejectedCleanly) {
  ServedFixture fx;
  RawConn raw(fx.server.port());
  ASSERT_TRUE(raw.connected());
  std::string frame;
  AppendFrame(MsgType::kHealthReq, 5, "", &frame);
  frame[4] = net::kProtocolVersion + 1;  // header byte, not CRC-covered
  ASSERT_TRUE(raw.Send(frame));
  FrameHeader h;
  std::string body;
  ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame);
  EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
  ResponseHeader rh;
  ASSERT_TRUE(DecodeErrorResponse(body, &rh));
  EXPECT_EQ(rh.ToStatus().code(), StatusCode::kFailedPrecondition);
}

TEST(NetServerTest, FramingCorruptionClosesConnectionAfterErrorResponse) {
  ServedFixture fx;

  // Bad magic.
  {
    RawConn raw(fx.server.port());
    ASSERT_TRUE(raw.connected());
    std::string frame;
    AppendFrame(MsgType::kHealthReq, 6, "", &frame);
    frame[0] ^= 0x01;
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    // Best-effort error response, then close.
    const auto first = raw.RecvFrame(&h, &body);
    if (first == RawConn::Recv::kFrame) {
      EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
      // Even the bad-frame error response carries the full rotation
      // health, same as any served response — clients sampling health
      // from error responses must not see zeroed fields.
      ResponseHeader rh;
      ASSERT_TRUE(DecodeErrorResponse(body, &rh));
      const ServiceHealth sh = fx.service.health();
      EXPECT_EQ(rh.health.generation_served, sh.generation_served);
      EXPECT_EQ(rh.health.degraded, sh.degraded());
      EXPECT_EQ(rh.health.snapshot_version,
                fx.service.AcquireSnapshot()->version);
      EXPECT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kClosed);
    } else {
      EXPECT_EQ(first, RawConn::Recv::kClosed);
    }
  }

  // Body CRC mismatch.
  {
    RawConn raw(fx.server.port());
    ASSERT_TRUE(raw.connected());
    std::string frame;
    AppendFrame(MsgType::kLookupBatchReq, 7,
                EncodeLookupBatchRequest(net::LookupBatchRequest{}), &frame);
    frame[net::kFrameHeaderSize] ^= 0x40;
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    const auto first = raw.RecvFrame(&h, &body);
    if (first == RawConn::Recv::kFrame) {
      EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
      EXPECT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kClosed);
    } else {
      EXPECT_EQ(first, RawConn::Recv::kClosed);
    }
  }

  // The server is still fully serviceable afterwards.
  MappingClient client = fx.Connect();
  EXPECT_TRUE(client.Health().ok());
}

TEST(NetServerTest, OversizedFrameIsConnectionFatal) {
  ServerOptions opts = ServedFixture::ExactHealthOptions();
  opts.max_frame_body = 64;
  ServedFixture fx(opts);
  RawConn raw(fx.server.port());
  ASSERT_TRUE(raw.connected());

  net::LookupBatchRequest req;
  req.values.assign(16, std::string(32, 'x'));  // body far beyond 64 bytes
  std::string frame;
  AppendFrame(MsgType::kLookupBatchReq, 8, EncodeLookupBatchRequest(req),
              &frame);
  ASSERT_TRUE(raw.Send(frame));
  FrameHeader h;
  std::string body;
  const auto first = raw.RecvFrame(&h, &body);
  if (first == RawConn::Recv::kFrame) {
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kErrorResp));
    EXPECT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kClosed);
  } else {
    EXPECT_EQ(first, RawConn::Recv::kClosed);
  }
}

// ----------------------------------------------------------- flow control

TEST(NetServerTest, PipelinedRequestsDrainInOrderUnderTightInFlightCap) {
  ServerOptions opts = ServedFixture::ExactHealthOptions();
  opts.max_in_flight_per_connection = 1;  // hardest setting
  ServedFixture fx(opts);
  RawConn raw(fx.server.port(), /*timeout_ms=*/10'000);
  ASSERT_TRUE(raw.connected());

  // Fire a pipeline burst far beyond the cap in one write, then collect.
  // With the cap at 1 the server must alternate parse → respond → flush —
  // any accounting slip deadlocks or reorders this, and the per-id echo
  // catches both.
  constexpr int kBurst = 48;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    net::LookupBatchRequest req;
    req.mapping_index = 0;
    req.values = {"entity name " + std::to_string(i % 24)};
    AppendFrame(MsgType::kLookupBatchReq, 100 + static_cast<uint64_t>(i),
                EncodeLookupBatchRequest(req), &burst);
  }
  ASSERT_TRUE(raw.Send(burst));
  for (int i = 0; i < kBurst; ++i) {
    FrameHeader h;
    std::string body;
    ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame)
        << "response " << i;
    EXPECT_EQ(h.request_id, 100 + static_cast<uint64_t>(i));
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kLookupBatchResp));
  }
}

TEST(NetServerTest, ConnectionStaysReadableAfterInFlightCapDrains) {
  // Regression: with the read buffer drained exactly at a frame boundary
  // while at the in-flight cap, FlushWrites used to skip the want_read
  // recompute (it lived only in ParseFrames) — after the response flushed
  // the connection had zero epoll events armed and went permanently deaf.
  // Sequential round trips at cap=1 hit that state after EVERY response.
  ServerOptions opts = ServedFixture::ExactHealthOptions();
  opts.max_in_flight_per_connection = 1;
  opts.idle_timeout_ms = 60'000;  // the sweep must not mask a deadlock
  ServedFixture fx(opts);
  RawConn raw(fx.server.port(), /*timeout_ms=*/5'000);
  ASSERT_TRUE(raw.connected());
  for (uint64_t id = 1; id <= 3; ++id) {
    std::string frame;
    AppendFrame(MsgType::kHealthReq, id, "", &frame);
    ASSERT_TRUE(raw.Send(frame));
    FrameHeader h;
    std::string body;
    ASSERT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kFrame)
        << "round trip " << id << " (connection went deaf after the cap)";
    EXPECT_EQ(h.request_id, id);
    EXPECT_EQ(h.msg_type, static_cast<uint8_t>(MsgType::kHealthResp));
  }
}

TEST(NetServerTest, IdleConnectionsAreReaped) {
  ServerOptions opts = ServedFixture::ExactHealthOptions();
  opts.idle_timeout_ms = 50;
  ServedFixture fx(opts);
  RawConn raw(fx.server.port(), /*timeout_ms=*/5'000);
  ASSERT_TRUE(raw.connected());
  // Half a frame parks in the server's read buffer; the sweep must still
  // reap the connection (a stalled sender cannot pin memory forever).
  std::string frame;
  AppendFrame(MsgType::kHealthReq, 9, "", &frame);
  ASSERT_TRUE(raw.Send(std::string_view(frame).substr(0, 10)));
  FrameHeader h;
  std::string body;
  EXPECT_EQ(raw.RecvFrame(&h, &body), RawConn::Recv::kClosed);
}

TEST(NetServerTest, StopIsIdempotentAndRestartable) {
  ServedFixture fx;
  {
    MappingClient client = fx.Connect();
    ASSERT_TRUE(client.Health().ok());
  }
  fx.server.Stop();
  fx.server.Stop();  // idempotent
  EXPECT_FALSE(fx.server.running());
  // Metric storage outlives the workers: GetStats after Stop returns the
  // final counters instead of touching freed memory.
  EXPECT_GE(fx.server.GetStats().total_requests, 1u);
  ASSERT_TRUE(fx.server.Start().ok());
  MappingClient client = fx.Connect();
  EXPECT_TRUE(client.Health().ok());
  EXPECT_TRUE(client.LookupBatch(0, {"entity name 1"}).ok());
}

// ------------------------------------------------------------------ fuzz

TEST(NetFuzzTest, MutatedFramesNeverCrashOrWedgeTheServer) {
  ServedFixture fx;
  Rng rng(0xF0220F0Fu);

  // Seed pool: one valid frame per request type.
  std::vector<std::string> seeds;
  {
    std::string f;
    net::SuggestCorrectionsRequest sc;
    sc.column = QueryCodes();
    AppendFrame(MsgType::kSuggestCorrectionsReq, 1,
                EncodeSuggestCorrectionsRequest(sc), &f);
    seeds.push_back(f);
    f.clear();
    net::AutoFillRequest af;
    af.keys = QueryKeys();
    af.examples = {{0, "code0"}};
    AppendFrame(MsgType::kAutoFillReq, 2, EncodeAutoFillRequest(af), &f);
    seeds.push_back(f);
    f.clear();
    net::AutoJoinRequest aj;
    aj.left_keys = QueryKeys();
    aj.right_keys = QueryCodes();
    AppendFrame(MsgType::kAutoJoinReq, 3, EncodeAutoJoinRequest(aj), &f);
    seeds.push_back(f);
    f.clear();
    net::LookupBatchRequest lb;
    lb.values = QueryKeys();
    AppendFrame(MsgType::kLookupBatchReq, 4, EncodeLookupBatchRequest(lb),
                &f);
    seeds.push_back(f);
    f.clear();
    AppendFrame(MsgType::kHealthReq, 5, "", &f);
    seeds.push_back(f);
    f.clear();
    AppendFrame(MsgType::kStatsReq, 6, "", &f);
    seeds.push_back(f);
  }

  for (int iter = 0; iter < 120; ++iter) {
    std::string bytes = seeds[rng.Uniform(seeds.size())];
    switch (rng.Uniform(5)) {
      case 0:  // bit flips anywhere (header or body)
        for (uint64_t flips = 1 + rng.Uniform(4); flips > 0; --flips) {
          bytes[rng.Uniform(bytes.size())] ^=
              static_cast<char>(1 << rng.Uniform(8));
        }
        break;
      case 1:  // truncation
        bytes.resize(rng.Uniform(bytes.size()));
        break;
      case 2:  // pure garbage
        bytes.assign(1 + rng.Uniform(128), '\0');
        for (auto& b : bytes) b = static_cast<char>(rng.Uniform(256));
        break;
      case 3:  // garbage prefix before a valid frame
        bytes.insert(0, std::string(1 + rng.Uniform(8),
                                    static_cast<char>(rng.Uniform(256))));
        break;
      default:  // valid frame, unmodified
        break;
    }
    RawConn raw(fx.server.port(), /*timeout_ms=*/100);
    ASSERT_TRUE(raw.connected()) << "iteration " << iter;
    ASSERT_TRUE(raw.Send(bytes)) << "iteration " << iter;
    FrameHeader h;
    std::string body;
    // Any outcome is acceptable except a test-side hang: a response frame,
    // a close, or silence (kNeedMoreData waiting on the rest of a
    // truncated frame). The RecvFrame timeout bounds the iteration.
    (void)raw.RecvFrame(&h, &body);
  }

  // The server survived 120 hostile connections and still serves.
  ASSERT_TRUE(fx.server.running());
  MappingClient client = fx.Connect();
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().message();
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().malformed_frames, 0u);
}

// ------------------------------------------------- scratch-reuse overloads

TEST(MappingStoreScratchTest, ScratchOverloadsMatchPlainOverloadsExactly) {
  Rng rng(0xB47C4u);
  const auto specs = SmallCorpusSpec(rng, 20);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService service(ServingOptions());
  ASSERT_TRUE(service.Synthesize(corpus).ok());
  const MappingStore& store = service.store();
  ASSERT_GT(store.size(), 0u);

  MappingStore::BatchScratch scratch;  // ONE scratch reused across all calls
  Rng qrng(0x9E3779B9u);
  for (size_t i = 0; i < store.size(); ++i) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::string> values;
      const size_t n = 1 + qrng.Uniform(40);
      for (size_t k = 0; k < n; ++k) {
        switch (qrng.Uniform(3)) {
          case 0:
            values.push_back("entity name " +
                             std::to_string(qrng.Uniform(24)));
            break;
          case 1:
            values.push_back("code" + std::to_string(qrng.Uniform(10)));
            break;
          default:
            values.push_back("  Entity NAME " +
                             std::to_string(qrng.Uniform(24)) + "  ");
            break;
        }
      }
      EXPECT_EQ(store.LookupRightBatch(i, values),
                store.LookupRightBatch(i, values, &scratch))
          << "mapping " << i << " round " << round;
      EXPECT_EQ(store.LookupLeftBatch(i, values),
                store.LookupLeftBatch(i, values, &scratch))
          << "mapping " << i << " round " << round;
    }
  }
}

// ------------------------------------------------------------ concurrency

/// Remote readers during live writer transitions: N client threads hammer
/// the server while the service appends and resynthesizes. Every response
/// must be coherent (ok status, version never regressing per connection)
/// and the final state must agree with in-process queries — the remote
/// path adds no torn reads on top of the RCU snapshot contract.
TEST(NetServingConcurrencyTest, RemoteReadersDuringLiveAppends) {
  Rng rng(0xC0FFEEu);
  const auto specs = SmallCorpusSpec(rng, 28);
  constexpr size_t kInitial = 12;

  MappingService service(ServingOptions());
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, kInitial);
  ASSERT_TRUE(service.Synthesize(corpus).ok());

  ServerOptions opts;
  opts.num_workers = 2;
  opts.health_refresh_ms = 0;
  MappingServer server(service, opts);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> writer_done{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> remote_reads{0};
  constexpr int kReaders = 4;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto cr = MappingClient::Connect("127.0.0.1", server.port());
      if (!cr.ok()) {
        failures.fetch_add(1);
        return;
      }
      MappingClient client = std::move(cr.value());
      Rng trng(0xAB5u + static_cast<uint64_t>(t));
      const std::vector<std::string> keys = QueryKeys();
      while (!writer_done.load(std::memory_order_acquire)) {
        Status st = Status::OK();
        switch (trng.Uniform(3)) {
          case 0:
            st = client.LookupBatch(trng.Uniform(4), keys).status();
            break;
          case 1:
            st = client.Health().status();
            break;
          default:
            st = client.SuggestCorrections(QueryCodes()).status();
            break;
        }
        if (!st.ok() || client.version_regressed()) {
          ADD_FAILURE() << "reader " << t << ": " << st.message()
                        << (client.version_regressed()
                                ? " (version regressed)"
                                : "");
          failures.fetch_add(1);
          return;
        }
        remote_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread writer([&] {
    // The corpus is externally owned, so the append path is: grow it in
    // place, then ResynthesizeAppended picks up the new tables.
    size_t next = kInitial;
    while (next < specs.size()) {
      const size_t end = std::min(next + 4, specs.size());
      AddSpecs(&corpus, specs, next, end);
      const Status st = service.ResynthesizeAppended();
      if (!st.ok()) {
        ADD_FAILURE() << "writer append: " << st.message();
        failures.fetch_add(1);
        break;
      }
      next = end;
    }
    // Keep publishing generations until every reader has served plenty of
    // requests across live transitions (mirrors the in-process torture
    // test's pacing) — a too-fast writer would otherwise end the test
    // before the remote path ever raced a publication.
    while (remote_reads.load(std::memory_order_relaxed) < 2'000 &&
           failures.load() == 0) {
      const Status st = service.Resynthesize(ServingOptions());
      if (!st.ok()) {
        ADD_FAILURE() << "writer resynthesize: " << st.message();
        failures.fetch_add(1);
        break;
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: the remote view must agree with the in-process view exactly.
  auto cr = MappingClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(cr.ok());
  MappingClient client = std::move(cr.value());
  const std::vector<std::string> keys = QueryKeys();
  for (size_t i = 0; i < std::min<size_t>(service.num_mappings(), 4); ++i) {
    auto remote = client.LookupBatch(i, keys);
    ASSERT_TRUE(remote.ok());
    EXPECT_EQ(remote.value(), service.LookupBatch(i, keys)) << "mapping " << i;
  }
  ASSERT_TRUE(client.Health().ok());
  EXPECT_EQ(client.last_header().health.snapshot_version,
            service.AcquireSnapshot()->version);
  EXPECT_FALSE(client.version_regressed());
  server.Stop();
}

}  // namespace
}  // namespace ms
