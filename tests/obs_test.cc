// Lockdown suite for the observability layer (obs/metrics.{h,cc},
// obs/trace.{h,cc}) and its env fold (common/env.h NoteIoFailure /
// NotedFailure): histogram bucket and quantile math at exact power-of-two
// boundaries, registry pointer stability and byte-stable exposition, span
// nesting / TraceScope pinning / the slow-span log under a fake clock, and
// — under the `concurrency` ctest label (ObsConcurrency*) — registry
// mutation racing scrapes with TSan watching.
//
// The registry is process-global, so every assertion on counter values here
// is a delta, never an absolute: other suites in the same binary bump the
// same series.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/session.h"
#include "table/corpus.h"

namespace ms::obs {
namespace {

// ------------------------------------------------------------- histogram

TEST(ObsHistogramTest, BucketZeroHoldsExactlyZero) {
  Histogram h;
  h.Record(0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.TotalCount(), 1u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
}

TEST(ObsHistogramTest, PowerOfTwoBoundaries) {
  // Bucket b = bit_width(v): v=1 -> 1, v=2,3 -> 2, v=4..7 -> 3; each bucket
  // covers [2^(b-1), 2^b) with inclusive upper bound 2^b - 1.
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  h.Record(7);
  h.Record(8);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.buckets[4], 1u);
  EXPECT_EQ(s.TotalCount(), 6u);
  EXPECT_EQ(s.sum, 1u + 2 + 3 + 4 + 7 + 8);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(3), 7u);
}

TEST(ObsHistogramTest, QuantileMatchesServerBucketMath) {
  // Mirror net/server.cc's BucketQuantile exactly: rank = q * total,
  // answer = upper bound of the first bucket where cumulative > rank.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(1);    // bucket 1, ub 1
  for (int i = 0; i < 9; ++i) h.Record(100);   // bucket 7, ub 127
  h.Record(5000);                              // bucket 13, ub 8191
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.90), 127.0);   // rank 90: 90 !> 90, next
  EXPECT_DOUBLE_EQ(s.Quantile(0.98), 127.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.995), 8191.0);
}

TEST(ObsHistogramTest, EmptyQuantileIsZero) {
  const HistogramSnapshot s;
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 0.0);
  EXPECT_EQ(s.TotalCount(), 0u);
}

TEST(ObsHistogramTest, OverflowLandsInLastBucket) {
  Histogram h;
  h.Record(uint64_t{1} << 50);
  h.Record(~uint64_t{0});
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[kHistogramBuckets - 1], 2u);
  // q = 1.0 falls through every bucket: the sentinel 2^(buckets-1).
  EXPECT_DOUBLE_EQ(
      s.Quantile(1.0),
      static_cast<double>(uint64_t{1} << (kHistogramBuckets - 1)));
}

TEST(ObsHistogramTest, MergeAddsBucketsAndSum) {
  Histogram a;
  Histogram b;
  a.Record(3);
  a.Record(100);
  b.Record(3);
  b.Record(0);
  HistogramSnapshot m = a.Snapshot();
  m.Merge(b.Snapshot());
  EXPECT_EQ(m.TotalCount(), 4u);
  EXPECT_EQ(m.buckets[0], 1u);
  EXPECT_EQ(m.buckets[2], 2u);
  EXPECT_EQ(m.buckets[7], 1u);
  EXPECT_EQ(m.sum, 106u);
}

TEST(ObsHistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.TotalCount(), 0u);
  EXPECT_EQ(s.sum, 0u);
}

// -------------------------------------------------------------- registry

TEST(ObsRegistryTest, StablePointersPerSeries) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test_stable_total");
  Counter* b = reg.GetCounter("obs_test_stable_total");
  EXPECT_EQ(a, b);
  Counter* labelled =
      reg.GetCounter("obs_test_stable_total", {{"op", "x"}});
  EXPECT_NE(a, labelled);
  EXPECT_EQ(labelled, reg.GetCounter("obs_test_stable_total", {{"op", "x"}}));
  // Label ORDER does not split a series: the key is sorted.
  Gauge* g1 = reg.GetGauge("obs_test_gauge", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = reg.GetGauge("obs_test_gauge", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
}

TEST(ObsRegistryTest, ExpositionIsByteStableAndSorted) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_expo_b_total")->Add(2);
  reg.GetCounter("obs_test_expo_a_total")->Add(1);
  reg.GetGauge("obs_test_expo_gauge")->Set(-7);
  const std::string once = reg.ExpositionText();
  const std::string twice = reg.ExpositionText();
  EXPECT_EQ(once, twice);  // byte-identical when nothing moved
  const size_t a = once.find("obs_test_expo_a_total 1\n");
  const size_t b = once.find("obs_test_expo_b_total 2\n");
  const size_t g = once.find("obs_test_expo_gauge -7\n");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  EXPECT_LT(a, b);  // sorted by series key
}

TEST(ObsRegistryTest, HistogramExpositionShape) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("obs_test_expo_us", {{"op", "probe"}});
  h->Record(3);
  h->Record(100);
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("obs_test_expo_us_bucket{op=\"probe\",le=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_bucket{op=\"probe\",le=\"127\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_bucket{op=\"probe\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_sum{op=\"probe\"} 103\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_us_count{op=\"probe\"} 2\n"),
            std::string::npos);
}

TEST(ObsRegistryTest, LabelValuesAreEscaped) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_escape_total", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = reg.ExpositionText();
  EXPECT_NE(
      text.find("obs_test_escape_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
      std::string::npos);
}

TEST(ObsRegistryTest, KindMismatchReturnsDetachedStorage) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_kind_clash");
  c->Add(5);
  // Re-registering the same series as a gauge is a call-site bug: the call
  // must still return usable storage (no crash, no aliasing), but the
  // orphan never reaches the exposition.
  Gauge* g = reg.GetGauge("obs_test_kind_clash");
  ASSERT_NE(g, nullptr);
  g->Set(123);
  EXPECT_EQ(c->Value(), 5u);
  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("obs_test_kind_clash 5\n"), std::string::npos);
  EXPECT_EQ(text.find("obs_test_kind_clash 123"), std::string::npos);
}

TEST(ObsRegistryTest, ResetForTestsZeroesButKeepsPointers) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_reset_total");
  Histogram* h = reg.GetHistogram("obs_test_reset_us");
  c->Add(9);
  h->Record(9);
  reg.ResetForTests();
  EXPECT_EQ(c, reg.GetCounter("obs_test_reset_total"));
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snapshot().TotalCount(), 0u);
}

// ----------------------------------------------------------------- trace

/// Controllable-clock env: delegates IO to the real env, serves NowMicros
/// from an atomic the test advances.
class FakeClockEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return Env::Default()->NewWritableFile(path);
  }
  Result<std::shared_ptr<MmapFile>> MapReadOnly(
      const std::string& path) override {
    return Env::Default()->MapReadOnly(path);
  }
  Result<std::string> ReadFileToString(const std::string& path) override {
    return Env::Default()->ReadFileToString(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return Env::Default()->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return Env::Default()->RemoveFile(path);
  }
  Status SyncDir(const std::string& dir) override {
    return Env::Default()->SyncDir(dir);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return Env::Default()->ListDir(dir);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return Env::Default()->CreateDirIfMissing(dir);
  }
  bool FileExists(const std::string& path) override {
    return Env::Default()->FileExists(path);
  }
  void SleepForMs(int) override {}
  uint64_t NowMicros() override {
    return now_us_.load(std::memory_order_relaxed);
  }

  void Advance(uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_us_{1000};
};

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GlobalTraceRing().Clear();
    SetTracingEnabled(true);
    SetSlowSpanThresholdUs(0);
  }
  void TearDown() override {
    SetTraceClockForTests(nullptr);
    SetSlowSpanThresholdUs(0);
    SetTracingEnabled(true);
    GlobalTraceRing().Clear();
  }
};

TEST_F(ObsTraceTest, NestedSpansShareTraceAndLinkParents) {
  {
    TraceSpan outer("test.outer");
    EXPECT_NE(CurrentTraceId(), 0u);
    TraceSpan inner("test.inner");
  }
  EXPECT_EQ(CurrentTraceId(), 0u);  // root closed the trace
  const auto spans = GlobalTraceRing().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (records) first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_EQ(spans[1].parent_span_id, 0u);
}

TEST_F(ObsTraceTest, TraceScopePinsExternalId) {
  {
    TraceScope scope(0xABCDEF);
    EXPECT_EQ(CurrentTraceId(), 0xABCDEFu);
    { TraceSpan span("test.pinned"); }
    // The scope, not the span, owns the id: still pinned after the span.
    EXPECT_EQ(CurrentTraceId(), 0xABCDEFu);
  }
  EXPECT_EQ(CurrentTraceId(), 0u);
  const auto spans = GlobalTraceRing().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 0xABCDEFu);
}

TEST_F(ObsTraceTest, DisabledSpansCostNothingVisible) {
  Histogram h;
  SetTracingEnabled(false);
  {
    TraceSpan span("test.disabled", &h);
    EXPECT_EQ(CurrentTraceId(), 0u);
  }
  EXPECT_EQ(GlobalTraceRing().Snapshot().size(), 0u);
  EXPECT_EQ(h.Snapshot().TotalCount(), 0u);
}

TEST_F(ObsTraceTest, FakeClockStampsExactDurations) {
  FakeClockEnv clock;
  SetTraceClockForTests(&clock);
  Histogram h;
  {
    TraceSpan span("test.timed", &h);
    clock.Advance(300);
  }
  const auto spans = GlobalTraceRing().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].duration_us, 300u);
  EXPECT_EQ(spans[0].start_us, 1000u);
  EXPECT_EQ(h.Snapshot().sum, 300u);
}

TEST_F(ObsTraceTest, SlowSpanLogsOneStructuredLine) {
  FakeClockEnv clock;
  SetTraceClockForTests(&clock);
  SetSlowSpanThresholdUs(100);
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  {
    TraceSpan fast("test.fast");
    clock.Advance(99);
  }
  {
    TraceSpan slow("test.slow");
    clock.Advance(250);
  }
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(prev);
  EXPECT_EQ(err.find("test.fast"), std::string::npos);
  EXPECT_NE(err.find("slow span"), std::string::npos);
  EXPECT_NE(err.find(" span=test.slow"), std::string::npos);
  EXPECT_NE(err.find(" duration_us=250"), std::string::npos);
  EXPECT_NE(err.find(" threshold_us=100"), std::string::npos);
}

TEST_F(ObsTraceTest, RingKeepsNewestCapacitySpans) {
  for (size_t i = 0; i < TraceRing::kCapacity + 10; ++i) {
    TraceSpan span("test.ring");
  }
  const auto spans = GlobalTraceRing().Snapshot();
  EXPECT_EQ(spans.size(), TraceRing::kCapacity);
  EXPECT_GE(GlobalTraceRing().total_recorded(),
            TraceRing::kCapacity + 10u);
}

// ------------------------------------------------------------- env fold

TEST(ObsEnvIoTest, InjectedTerminalFailureCountsOnEnvAndRegistry) {
  Counter* global =
      MetricsRegistry::Global().GetCounter("ms_env_io_failures_total");
  const uint64_t before = global->Value();
  FaultInjectionEnv fenv(Env::Default());
  fenv.FailOp(0, FaultKind::kEnospc);
  auto opened = fenv.NewWritableFile("/tmp/obs_env_fold_test_never_created");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(fenv.io_failures(), 1u);
  EXPECT_EQ(global->Value(), before + 1);
}

TEST(ObsEnvIoTest, NotFoundProbesAreNotFailures) {
  Env* env = Env::Default();
  const uint64_t before = env->io_failures();
  auto read = env->ReadFileToString("/tmp/obs_env_fold_no_such_file_xyz");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(env->io_failures(), before);
}

TEST(ObsEnvIoTest, RetriesFoldIntoRegistry) {
  Counter* global =
      MetricsRegistry::Global().GetCounter("ms_env_retries_total");
  const uint64_t before_global = global->Value();
  FaultInjectionEnv fenv(Env::Default());
  const uint64_t before_env = fenv.retries_performed();
  fenv.FailOp(1, FaultKind::kEintr);  // op 0 = open, op 1 = first write
  auto opened = fenv.NewWritableFile("/tmp/obs_env_retry_test_file");
  ASSERT_TRUE(opened.ok());
  auto file = std::move(opened).value();
  ASSERT_TRUE(AppendFully(fenv, *file, "payload").ok());
  ASSERT_TRUE(file->Close().ok());
  (void)fenv.RemoveFile("/tmp/obs_env_retry_test_file");
  EXPECT_EQ(fenv.retries_performed(), before_env + 1);
  EXPECT_EQ(global->Value(), before_global + 1);
}

// ------------------------------------- synth maintenance counter export

// The incremental-maintenance counters are registered lazily inside
// SynthesisSession::AppendTables (function-local statics), so the wiring
// can only be checked end-to-end: run a real append and each series must
// advance by exactly what that append's stats reported, then show up in
// the exposition. The registry is process-global — every value assertion
// is a delta against the counter's value before the append.
TEST(ObsSynthCountersTest, AppendMaintenanceCountersReconcileWithStats) {
  auto& reg = MetricsRegistry::Global();
  Counter* unstable = reg.GetCounter("ms_synth_append_unstable_total");
  Counter* rebuilds = reg.GetCounter("ms_synth_append_full_rebuilds_total");
  Counter* skips = reg.GetCounter("ms_synth_coherence_margin_skips_total");
  Counter* rechecks =
      reg.GetCounter("ms_synth_coherence_margin_rechecks_total");
  const uint64_t unstable0 = unstable->Value();
  const uint64_t rebuilds0 = rebuilds->Value();
  const uint64_t skips0 = skips->Value();
  const uint64_t rechecks0 = rechecks->Value();

  // Small deterministic corpus over a shared vocabulary: enough value
  // co-occurrence for real candidates, margins, and blocking.
  TableCorpus corpus;
  auto add_table = [&](size_t t) {
    std::vector<std::string> lcol, rcol;
    for (size_t r = 0; r < 6; ++r) {
      const size_t i = (t * 3 + r) % 12;
      lcol.push_back("entity name " + std::to_string(i));
      rcol.push_back("code" + std::to_string(i % 4));
    }
    corpus.AddFromStrings("domain" + std::to_string(t % 3) + ".example",
                          TableSource::kWeb, {"name", "code"}, {lcol, rcol});
  };
  for (size_t t = 0; t < 8; ++t) add_table(t);

  SynthesisOptions o;
  o.num_threads = 2;
  o.min_domains = 1;
  o.min_pairs = 1;
  // The margin cache only exists under an active coherence filter.
  ASSERT_GT(o.extraction.coherence_threshold, -1.0);
  SynthesisSession session(o);
  ASSERT_TRUE(session.status().ok());
  auto c = session.ExtractCandidates(corpus);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  auto b = session.BlockPairs(c.value());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto g = session.ScorePairs(c.value(), b.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto p = session.Partition(g.value());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto r = session.Resolve(c.value(), g.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const size_t first_new = corpus.size();
  for (size_t t = 8; t < 10; ++t) add_table(t);
  auto grown = session.AppendTables(corpus, first_new, c.value(), b.value(),
                                    g.value(), p.value(), r.value());
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  const AppendStats& stats = grown.value().append;

  EXPECT_EQ(unstable->Value(), unstable0 + stats.unstable_tables);
  EXPECT_EQ(rebuilds->Value(), rebuilds0 + (stats.full_rebuild ? 1u : 0u));
  EXPECT_EQ(skips->Value(), skips0 + stats.margin_skips);
  EXPECT_EQ(rechecks->Value(), rechecks0 + stats.margin_rechecks);
  // Every live old column is either proven stable by its cached margin or
  // re-evaluated, so with a non-empty base the cache must have been
  // consulted one way or the other.
  EXPECT_GT(stats.margin_skips + stats.margin_rechecks, 0u);

  const std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("ms_synth_append_unstable_total"), std::string::npos);
  EXPECT_NE(text.find("ms_synth_append_full_rebuilds_total"),
            std::string::npos);
  EXPECT_NE(text.find("ms_synth_coherence_margin_skips_total"),
            std::string::npos);
  EXPECT_NE(text.find("ms_synth_coherence_margin_rechecks_total"),
            std::string::npos);
}

// ---------------------------------------------- concurrency (TSan leg)

TEST(ObsConcurrencyTest, RegistryMutationUnderScrapes) {
  auto& reg = MetricsRegistry::Global();
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  Counter* const counter = reg.GetCounter("obs_conc_counter_total");
  Histogram* const hist = reg.GetHistogram("obs_conc_us");
  Gauge* const gauge = reg.GetGauge("obs_conc_gauge");
  const uint64_t count_before = counter->Value();
  const uint64_t hist_before = hist->Snapshot().TotalCount();
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = reg.ExpositionText();
      ASSERT_FALSE(text.empty());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Increment();
        hist->Record(static_cast<uint64_t>(i));
        gauge->Set(t);
        // Registration racing registration on the same series must
        // converge to one stable pointer.
        ASSERT_EQ(reg.GetCounter("obs_conc_counter_total"), counter);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(counter->Value(), count_before + kThreads * kIters);
  EXPECT_EQ(hist->Snapshot().TotalCount(), hist_before + kThreads * kIters);
}

TEST(ObsConcurrencyTest, SpansFromManyThreads) {
  GlobalTraceRing().Clear();
  SetTracingEnabled(true);
  const uint64_t recorded_before = GlobalTraceRing().total_recorded();
  const uint64_t dropped_before = GlobalTraceRing().dropped();
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        TraceSpan outer("conc.outer");
        TraceSpan inner("conc.inner");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every span was either stored or counted as dropped — none lost.
  const uint64_t recorded =
      GlobalTraceRing().total_recorded() - recorded_before;
  EXPECT_EQ(recorded, static_cast<uint64_t>(kThreads) * kIters * 2);
  EXPECT_LE(GlobalTraceRing().dropped() - dropped_before, recorded);
  GlobalTraceRing().Clear();
}

}  // namespace
}  // namespace ms::obs
