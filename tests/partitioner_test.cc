// Tests for the greedy synthesis partitioner (Problem 11 / Algorithm 3),
// including the paper's Figure 3 / Example 12 / Example 16 worked example
// and the formal invariants of the optimization (Equations 5-8).
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "synth/partitioner.h"

namespace ms {
namespace {

/// The Figure 3 graph (0-indexed: paper vertex k = here k-1).
/// Positive edges: (1,2)=0.67, (3,4)=0.6, (3,5)=0.8, (4,5)=0.7, (2,3)=0.5.
/// Negative edges: (1,3) w-=-0.7, (2,4) w-=-0.33.
CompatibilityGraph Figure3Graph() {
  CompatibilityGraph g(5);
  g.AddEdge(0, 1, 0.67, 0.0);
  g.AddEdge(2, 3, 0.6, 0.0);
  g.AddEdge(2, 4, 0.8, 0.0);
  g.AddEdge(3, 4, 0.7, 0.0);
  g.AddEdge(1, 2, 0.5, 0.0);
  g.AddEdge(0, 2, 0.0, -0.7);
  g.AddEdge(1, 3, 0.0, -0.33);
  g.Finalize();
  return g;
}

PartitionerOptions Figure3Options() {
  PartitionerOptions o;
  o.tau = -0.2;
  o.theta_edge = 0.0;  // Figure 3 counts all positive edges
  return o;
}

std::set<std::set<VertexId>> AsSets(const PartitionResult& r) {
  std::set<std::set<VertexId>> out;
  for (const auto& g : r.Groups()) out.insert({g.begin(), g.end()});
  return out;
}

TEST(PartitionerTest, Example12OptimalPartitioning) {
  auto g = Figure3Graph();
  PartitionResult r = GreedyPartition(g, Figure3Options());
  // Expected: ISO tables {B1,B2} and IOC tables {B3,B4,B5}.
  std::set<std::set<VertexId>> expected = {{0, 1}, {2, 3, 4}};
  EXPECT_EQ(AsSets(r), expected);
  EXPECT_EQ(r.num_partitions, 2u);
  EXPECT_EQ(r.merges_performed, 3u);  // Example 16: three merges
}

TEST(PartitionerTest, Example12ObjectiveValue) {
  auto g = Figure3Graph();
  auto opts = Figure3Options();
  PartitionResult r = GreedyPartition(g, opts);
  // Σ w+(P) = 0.67 + (0.6 + 0.8 + 0.7) = 2.77 (Example 12).
  EXPECT_NEAR(PartitionObjective(g, r, opts), 2.77, 1e-9);
}

TEST(PartitionerTest, NegativeConstraintHolds) {
  auto g = Figure3Graph();
  auto opts = Figure3Options();
  PartitionResult r = GreedyPartition(g, opts);
  EXPECT_TRUE(SatisfiesNegativeConstraint(g, r, opts.tau));
}

TEST(PartitionerTest, WithoutNegativeSignalsEverythingMerges) {
  // The SynthesisPos ablation: dropping w- merges all five tables through
  // the 0.5 bridge edge — exactly the failure the paper attributes to
  // schema-matching-style positive-only reasoning.
  auto g = Figure3Graph();
  auto opts = Figure3Options();
  opts.use_negative_signals = false;
  PartitionResult r = GreedyPartition(g, opts);
  EXPECT_EQ(r.num_partitions, 1u);
}

TEST(PartitionerTest, ThetaEdgeFloorsWeakEdges) {
  auto g = Figure3Graph();
  auto opts = Figure3Options();
  opts.theta_edge = 0.65;  // keeps 0.67, 0.7, 0.8; floors 0.5, 0.6
  PartitionResult r = GreedyPartition(g, opts);
  // {3,5} merges (0.8); then ({3,5},{4}) via the 0.7 edge; {1,2} via 0.67.
  std::set<std::set<VertexId>> expected = {{0, 1}, {2, 3, 4}};
  EXPECT_EQ(AsSets(r), expected);
  // Objective only counts edges >= theta_edge: 0.67 + 0.8 + 0.7.
  EXPECT_NEAR(PartitionObjective(g, r, opts), 2.17, 1e-9);
}

TEST(PartitionerTest, TauControlsConflictTolerance) {
  CompatibilityGraph g(2);
  g.AddEdge(0, 1, 0.9, -0.1);
  g.Finalize();
  PartitionerOptions strict;
  strict.tau = -0.05;  // -0.1 < -0.05: blocked
  strict.theta_edge = 0.0;
  EXPECT_EQ(GreedyPartition(g, strict).num_partitions, 2u);
  PartitionerOptions lenient;
  lenient.tau = -0.2;  // -0.1 >= -0.2: slight inconsistency tolerated
  lenient.theta_edge = 0.0;
  EXPECT_EQ(GreedyPartition(g, lenient).num_partitions, 1u);
}

TEST(PartitionerTest, EmptyGraph) {
  CompatibilityGraph g(0);
  g.Finalize();
  PartitionResult r = GreedyPartition(g, {});
  EXPECT_EQ(r.num_partitions, 0u);
  EXPECT_TRUE(r.partition_of.empty());
}

TEST(PartitionerTest, NoEdgesMeansSingletons) {
  CompatibilityGraph g(4);
  g.Finalize();
  PartitionResult r = GreedyPartition(g, {});
  EXPECT_EQ(r.num_partitions, 4u);
}

TEST(PartitionerTest, AggregatedNegativeBlocksIndirectMerge) {
  // 0-1 strongly positive; 1-2 strongly positive; 0-2 heavily conflicting.
  // After merging {0,1}, the {0,1}-{2} pair inherits min(w-) = -0.9 < τ, so
  // 2 must stay out even though the 1-2 edge alone is clean.
  CompatibilityGraph g(3);
  g.AddEdge(0, 1, 0.9, 0.0);
  g.AddEdge(1, 2, 0.8, 0.0);
  g.AddEdge(0, 2, 0.0, -0.9);
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.0;
  PartitionResult r = GreedyPartition(g, opts);
  std::set<std::set<VertexId>> expected = {{0, 1}, {2}};
  EXPECT_EQ(AsSets(r), expected);
  EXPECT_TRUE(SatisfiesNegativeConstraint(g, r, opts.tau));
}

TEST(PartitionerTest, PositiveWeightsAggregateAcrossMerges) {
  // Individually weak edges from 2 to both 0 and 1 (0.3 each) exceed the
  // strongest remaining edge after summation (Algorithm 3's update rule).
  CompatibilityGraph g(4);
  g.AddEdge(0, 1, 0.9, 0.0);
  g.AddEdge(0, 2, 0.3, 0.0);
  g.AddEdge(1, 2, 0.3, 0.0);
  g.AddEdge(2, 3, 0.5, 0.0);
  g.Finalize();
  PartitionerOptions opts;
  opts.theta_edge = 0.0;
  PartitionResult r = GreedyPartition(g, opts);
  // All connect eventually (no negative edges): one partition.
  EXPECT_EQ(r.num_partitions, 1u);
}

/// Invariant sweep on random graphs: output is a disjoint cover, never
/// violates the negative constraint, and is deterministic.
class PartitionerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionerPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  const size_t n = 40;
  CompatibilityGraph g(n);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int e = 0; e < 120; ++e) {
    uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
    uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert({u, v}).second) continue;
    double pos = rng.Bernoulli(0.7) ? rng.UniformDouble() : 0.0;
    double neg = rng.Bernoulli(0.3) ? -rng.UniformDouble() : 0.0;
    if (pos == 0.0 && neg == 0.0) pos = 0.5;
    g.AddEdge(u, v, pos, neg);
  }
  g.Finalize();

  PartitionerOptions opts;
  opts.theta_edge = 0.2;
  opts.tau = -0.25;
  PartitionResult r = GreedyPartition(g, opts);

  // Disjoint cover (Equations 7-8): every vertex in exactly one partition.
  EXPECT_EQ(r.partition_of.size(), n);
  size_t covered = 0;
  for (const auto& group : r.Groups()) covered += group.size();
  EXPECT_EQ(covered, n);

  // Hard constraint (Equation 6).
  EXPECT_TRUE(SatisfiesNegativeConstraint(g, r, opts.tau));

  // Determinism.
  PartitionResult r2 = GreedyPartition(g, opts);
  EXPECT_EQ(r.partition_of, r2.partition_of);

  // Objective of the produced partitioning is no worse than all-singletons
  // (which scores 0) and no better than the sum of all positive weights.
  double upper = 0;
  for (const auto& e : g.edges()) {
    if (e.w_pos >= opts.theta_edge) upper += e.w_pos;
  }
  const double obj = PartitionObjective(g, r, opts);
  EXPECT_GE(obj, 0.0);
  EXPECT_LE(obj, upper + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PartitionerPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace ms
