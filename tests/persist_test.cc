// Tests for the artifact persistence layer (src/persist/): snapshot
// save/load must round-trip every stage artifact bit-exactly, a restored
// session must resolve byte-identical mappings to the uninterrupted run,
// the mmap corpus store must reproduce the TSV-parsed corpus exactly, and
// — the durability contract — any bit flip or truncation of a container
// must surface as Status::DataLoss, never a crash or a silently different
// artifact. Options-fingerprint mismatches are FailedPrecondition (the file
// is intact, the configuration is not compatible).
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "common/crc32.h"
#include "common/random.h"
#include "corpusgen/builtin_domains.h"
#include "corpusgen/generator.h"
#include "persist/artifact_codec.h"
#include "persist/corpus_store.h"
#include "persist/mapping_text.h"
#include "persist/mmap_file.h"
#include "persist/snapshot.h"
#include "synth/mapping_io.h"
#include "synth/session.h"
#include "table/tsv.h"

namespace ms {
namespace {

GeneratedWorld SmallWorld(uint64_t seed = 7) {
  auto all = BuiltinWebRelationships();
  std::vector<RelationshipSpec> specs;
  for (auto& s : all) {
    if (s.name == "country_iso3" || s.name == "country_ioc" ||
        s.name == "state_abbrev" || s.name == "element_symbol") {
      s.popularity = 12;
      specs.push_back(std::move(s));
    }
  }
  GeneratorOptions opts;
  opts.seed = seed;
  opts.noise_table_fraction = 0.2;
  return GenerateWorld(std::move(specs), opts);
}

SynthesisOptions FastOptions() {
  SynthesisOptions o;
  o.num_threads = 4;
  o.min_domains = 2;
  return o;
}

/// Canonical string-level view of a mapping set (pool-independent, so
/// results restored against a different StringPool instance compare).
std::multiset<std::string> CanonicalMappings(const SynthesisResult& r,
                                             const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f" +
                      std::to_string(m.kept_tables.size()) + "\x1f";
    for (const auto& p : m.merged.pairs()) {
      key += std::string(pool.Get(p.left)) + "\x1e" +
             std::string(pool.Get(p.right)) + "\x1f";
    }
    out.insert(std::move(key));
  }
  return out;
}

std::string TempPath(const std::string& name) { return "/tmp/" + name; }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ------------------------------------------------------------- string pool

TEST(StringPoolPersistTest, AdoptExternalIsZeroCopyAndIndexed) {
  // Backing the pool pins: views must point INTO this buffer, not copies.
  auto backing = std::make_shared<std::string>("alphabetagamma");
  std::vector<std::string_view> views = {
      std::string_view(*backing).substr(0, 5),   // "alpha"
      std::string_view(*backing).substr(5, 4),   // "beta"
      std::string_view(*backing).substr(9, 5)};  // "gamma"

  StringPool pool;
  ValueId first = pool.Intern("zero");
  pool.AdoptExternal(views);
  pool.RetainBacking(backing);

  EXPECT_EQ(first, 0u);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.Get(1), "alpha");
  EXPECT_EQ(pool.Get(3), "gamma");
  // Zero-copy: the returned view aliases the backing buffer.
  EXPECT_EQ(pool.Get(1).data(), backing->data());
  // The string -> id index over adopted views is deferred: id-based reads
  // leave it unbuilt...
  EXPECT_EQ(pool.indexed_strings(), 1u);  // only the Intern()'d "zero"
  // ...and the first string -> id operation materializes it transparently.
  EXPECT_EQ(pool.Find("beta"), 2u);
  EXPECT_EQ(pool.indexed_strings(), 4u);
  EXPECT_EQ(pool.Intern("beta"), 2u);
}

TEST(StringPoolPersistTest, CorpusStoreOpenDefersPoolIndexing) {
  GeneratedWorld world = SmallWorld(17);
  const std::string store = TempPath("lazy_index.mscorp");
  ASSERT_TRUE(persist::SaveCorpusStore(world.corpus, store).ok());

  auto opened = persist::OpenCorpusStore(store);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  TableCorpus corpus = std::move(opened).value();
  // Opening adopts every value zero-copy WITHOUT building the string -> id
  // hash — the dominant open cost for id-only consumers.
  EXPECT_GT(corpus.pool().size(), 0u);
  EXPECT_EQ(corpus.pool().indexed_strings(), 0u);
  // Id-based reads (what serving lookups and synthesis scoring do) never
  // trigger the build.
  for (ValueId v = 0; v < 16 && v < corpus.pool().size(); ++v) {
    corpus.pool().Get(v);
  }
  EXPECT_EQ(corpus.pool().indexed_strings(), 0u);
  // The first intern (e.g. extraction normalizing on top) builds it once.
  corpus.pool().Intern("a brand new value");
  EXPECT_EQ(corpus.pool().indexed_strings(), corpus.pool().size());
  std::remove(store.c_str());
}

TEST(StringPoolPersistTest, ReadOnlyServingNeverBuildsPoolIndex) {
  // The restore-and-serve path: snapshot -> MappingStore -> lookups. The
  // store normalizes probes itself and maps strings through its own hashes,
  // so the snapshot pool's lazy index must never materialize.
  GeneratedWorld world = SmallWorld(19);
  SynthesisOptions options = FastOptions();
  const std::string path = TempPath("lazy_serving.mssnap");
  {
    SynthesisSession session(options);
    auto cands = session.ExtractCandidates(world.corpus);
    ASSERT_TRUE(cands.ok());
    auto result = session.FinishFromCandidates(cands.value());
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(session
                    .SaveSnapshot(path, cands.value(), nullptr, nullptr,
                                  &result.value())
                    .ok());
  }
  SynthesisSession session(options);
  auto restored = session.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const SessionSnapshot& snap = restored.value();
  snap.pool->MarkReadOnly();
  EXPECT_EQ(snap.pool->indexed_strings(), 0u);

  MappingStore store(snap.pool, options.extraction.normalize);
  ASSERT_TRUE(snap.has_result);
  for (const auto& m : snap.result.mappings) {
    store.Add(m, m.left_label + "->" + m.right_label);
  }
  if (store.size() > 0) {
    store.Probe(0, "washington");
    store.LookupRight(0, "oregon");
    store.FindByContainment({"california", "texas"}, 1);
  }
  // Serving built its own indexes; the pool's stayed lazy.
  EXPECT_EQ(snap.pool->indexed_strings(), 0u);
  std::remove(path.c_str());
}

TEST(StringPoolPersistTest, ReadOnlyModeRefusesNewStrings) {
  StringPool pool;
  ValueId a = pool.Intern("hello");
  pool.MarkReadOnly();
  EXPECT_TRUE(pool.read_only());
  // Existing strings still resolve; unseen ones refuse instead of mutating.
  EXPECT_EQ(pool.Intern("hello"), a);
  EXPECT_EQ(pool.Intern("world"), kInvalidValueId);
  EXPECT_EQ(pool.Find("world"), kInvalidValueId);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<ValueId> ids;
  pool.InternBatch({"hello", "world"}, &ids);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], kInvalidValueId);
}

// ------------------------------------------------------------ corpus store

TEST(CorpusStoreTest, RoundTripReproducesCorpusExactly) {
  GeneratedWorld world = SmallWorld(11);
  const std::string path = TempPath("ms_persist_corpus.mscorp");
  ASSERT_TRUE(persist::SaveCorpusStore(world.corpus, path).ok());

  auto opened = persist::OpenCorpusStore(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const TableCorpus& restored = opened.value();

  ASSERT_EQ(restored.size(), world.corpus.size());
  ASSERT_EQ(restored.pool().size(), world.corpus.pool().size());
  for (size_t v = 0; v < world.corpus.pool().size(); ++v) {
    ASSERT_EQ(restored.pool().Get(static_cast<ValueId>(v)),
              world.corpus.pool().Get(static_cast<ValueId>(v)));
  }
  for (size_t t = 0; t < world.corpus.size(); ++t) {
    const Table& a = world.corpus.tables()[t];
    const Table& b = restored.tables()[t];
    ASSERT_EQ(a.id, b.id);
    ASSERT_EQ(a.domain, b.domain);
    ASSERT_EQ(a.source, b.source);
    ASSERT_EQ(a.columns.size(), b.columns.size());
    for (size_t c = 0; c < a.columns.size(); ++c) {
      ASSERT_EQ(a.columns[c].name, b.columns[c].name);
      ASSERT_EQ(a.columns[c].cells, b.columns[c].cells);
    }
  }
  std::remove(path.c_str());
}

TEST(CorpusStoreTest, TsvConversionSynthesizesIdentically) {
  GeneratedWorld world = SmallWorld(12);
  const std::string tsv = TempPath("ms_persist_corpus.tsv");
  const std::string store = TempPath("ms_persist_converted.mscorp");
  ASSERT_TRUE(SaveCorpus(world.corpus, tsv).ok());
  ASSERT_TRUE(persist::ConvertTsvCorpusToStore(tsv, store).ok());

  TableCorpus from_tsv;
  ASSERT_TRUE(LoadCorpus(tsv, &from_tsv).ok());
  auto from_store = persist::OpenCorpusStore(store);
  ASSERT_TRUE(from_store.ok());

  // Single-threaded: the two corpora are id-identical, but parallel
  // extraction interns *newly normalized* variants in scheduling-dependent
  // order, and downstream tie-breaks (majority voting, pair sort order) are
  // ValueId-based — so cross-corpus determinism needs a deterministic
  // intern order. (Snapshot restores are immune: the saved pool already
  // contains the extraction-time strings in their final order.)
  SynthesisOptions serial = FastOptions();
  serial.num_threads = 1;
  SynthesisSession s1(serial);
  SynthesisSession s2(serial);
  auto r1 = s1.Run(from_tsv);
  auto r2 = s2.Run(from_store.value());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(CanonicalMappings(r1.value(), from_tsv.pool()),
            CanonicalMappings(r2.value(), from_store.value().pool()));
  std::remove(tsv.c_str());
  std::remove(store.c_str());
}

TEST(CorpusStoreTest, WrongMagicIsDataLossNotMisparse) {
  // A valid *session snapshot* opened as a corpus store must fail cleanly.
  GeneratedWorld world = SmallWorld(13);
  SynthesisSession session(FastOptions());
  auto cands = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok());
  const std::string path = TempPath("ms_persist_wrong_magic.mssnap");
  ASSERT_TRUE(session.SaveSnapshot(path, cands.value()).ok());
  auto opened = persist::OpenCorpusStore(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

// -------------------------------------------------------- session snapshot

struct StagedRun {
  GeneratedWorld world;
  SynthesisSession session;
  CandidateSet candidates;
  BlockedPairs blocked;
  ScoredGraph scored;
  SynthesisResult result;

  explicit StagedRun(uint64_t seed, SynthesisOptions options = FastOptions())
      : world(SmallWorld(seed)), session(options) {
    EXPECT_TRUE(session.status().ok());
    auto c = session.ExtractCandidates(world.corpus);
    EXPECT_TRUE(c.ok());
    candidates = std::move(c).value();
    auto b = session.BlockPairs(candidates);
    EXPECT_TRUE(b.ok());
    blocked = std::move(b).value();
    auto g = session.ScorePairs(candidates, blocked);
    EXPECT_TRUE(g.ok());
    scored = std::move(g).value();
    auto p = session.Partition(scored);
    EXPECT_TRUE(p.ok());
    auto r = session.Resolve(candidates, scored, p.value());
    EXPECT_TRUE(r.ok());
    result = std::move(r).value();
  }
};

TEST(SessionSnapshotTest, RoundTripRestoresArtifactsAndResolvesIdentically) {
  StagedRun run(21);
  const std::string path = TempPath("ms_persist_roundtrip.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, &run.result)
                  .ok());
  EXPECT_EQ(run.session.session_stats().snapshot_saves, 1u);

  // "Fresh process": a brand-new session restores the snapshot.
  SynthesisSession fresh(FastOptions());
  auto restored = fresh.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  SessionSnapshot& snap = restored.value();
  EXPECT_EQ(fresh.session_stats().snapshot_restores, 1u);

  // Lineage ids and cumulative stats survive the round trip.
  ASSERT_TRUE(snap.candidates != nullptr);
  ASSERT_TRUE(snap.blocked != nullptr);
  ASSERT_TRUE(snap.scored != nullptr);
  EXPECT_EQ(snap.candidates->artifact_id, run.candidates.artifact_id);
  EXPECT_EQ(snap.blocked->artifact_id, run.blocked.artifact_id);
  EXPECT_EQ(snap.blocked->candidates_id, run.blocked.candidates_id);
  EXPECT_EQ(snap.scored->candidates_id, run.scored.candidates_id);
  EXPECT_EQ(snap.candidates->stats.candidates, run.candidates.stats.candidates);
  EXPECT_EQ(snap.blocked->stats.candidate_pairs,
            run.blocked.stats.candidate_pairs);
  EXPECT_EQ(snap.scored->stats.graph_edges, run.scored.stats.graph_edges);
  EXPECT_DOUBLE_EQ(snap.scored->stats.scoring_seconds,
                   run.scored.stats.scoring_seconds);
  EXPECT_EQ(snap.scored->stats.scoring.matcher.match_calls,
            run.scored.stats.scoring.matcher.match_calls);

  // Artifact payloads: blocked pairs bit-exact, graph edge-exact.
  ASSERT_EQ(snap.blocked->pairs.size(), run.blocked.pairs.size());
  for (size_t i = 0; i < run.blocked.pairs.size(); ++i) {
    EXPECT_EQ(snap.blocked->pairs[i].a, run.blocked.pairs[i].a);
    EXPECT_EQ(snap.blocked->pairs[i].b, run.blocked.pairs[i].b);
    EXPECT_EQ(snap.blocked->pairs[i].counts_exact,
              run.blocked.pairs[i].counts_exact);
  }
  ASSERT_EQ(snap.scored->graph.num_edges(), run.scored.graph.num_edges());

  // The saved result round-trips...
  ASSERT_TRUE(snap.has_result);
  EXPECT_EQ(CanonicalMappings(snap.result, *snap.pool),
            CanonicalMappings(run.result, run.world.corpus.pool()));

  // ...and resolving from the restored artifacts is byte-identical to the
  // uninterrupted run (the PR acceptance criterion).
  auto parts = fresh.Partition(*snap.scored);
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  auto resolved = fresh.Resolve(*snap.candidates, *snap.scored, parts.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(CanonicalMappings(resolved.value(), *snap.pool),
            CanonicalMappings(run.result, run.world.corpus.pool()));
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, CandidatesOnlySnapshotFinishesIdentically) {
  StagedRun run(22);
  const std::string path = TempPath("ms_persist_cands_only.mssnap");
  ASSERT_TRUE(run.session.SaveSnapshot(path, run.candidates).ok());

  SynthesisSession fresh(FastOptions());
  auto restored = fresh.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().blocked, nullptr);
  EXPECT_EQ(restored.value().scored, nullptr);
  EXPECT_FALSE(restored.value().has_result);

  auto finished = fresh.FinishFromCandidates(*restored.value().candidates);
  ASSERT_TRUE(finished.ok());
  EXPECT_EQ(CanonicalMappings(finished.value(), *restored.value().pool),
            CanonicalMappings(run.result, run.world.corpus.pool()));
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, FingerprintMismatchIsFailedPrecondition) {
  StagedRun run(23);
  const std::string path = TempPath("ms_persist_fingerprint.mssnap");
  ASSERT_TRUE(run.session.SaveSnapshot(path, run.candidates).ok());

  SynthesisOptions other = FastOptions();
  other.compat.edit.cap = 6;  // result-affecting change
  SynthesisSession mismatched(other);
  auto restored = mismatched.RestoreSnapshot(path);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);

  // Speed-only knobs are excluded from the fingerprint: a snapshot saved on
  // one machine's tuning restores under another's.
  SynthesisOptions tuned = FastOptions();
  tuned.num_threads = 2;
  tuned.matcher_cache_cap = 123;
  tuned.compat.edit.use_bit_parallel = false;
  tuned.compat.reuse_blocking_counts = false;
  SynthesisSession tuned_session(tuned);
  auto ok_restore = tuned_session.RestoreSnapshot(path);
  EXPECT_TRUE(ok_restore.ok()) << ok_restore.status().ToString();
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, RestoredArtifactsRejectForeignSessions) {
  StagedRun run(24);
  const std::string path = TempPath("ms_persist_foreign.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, nullptr)
                  .ok());
  SynthesisSession a(FastOptions());
  SynthesisSession b(FastOptions());
  auto restored = a.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok());
  // Artifacts restored into session `a` must not be usable from `b`.
  auto r = b.Partition(*restored.value().scored);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, RestoreIntoUsedSessionRebasesLineageIds) {
  StagedRun run(25);
  const std::string path = TempPath("ms_persist_rebase.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, nullptr)
                  .ok());

  // A session that already issued artifact ids restores the snapshot; the
  // restored family must not collide with the existing artifacts.
  SynthesisSession busy(FastOptions());
  auto own = busy.ExtractCandidates(run.world.corpus);
  ASSERT_TRUE(own.ok());
  auto restored = busy.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok());
  const SessionSnapshot& snap = restored.value();
  EXPECT_NE(snap.candidates->artifact_id, own.value().artifact_id);
  // Internal links stay consistent after the rebase...
  EXPECT_EQ(snap.blocked->candidates_id, snap.candidates->artifact_id);
  EXPECT_EQ(snap.scored->candidates_id, snap.candidates->artifact_id);
  // ...so the downstream stages accept the restored family.
  auto parts = busy.Partition(*snap.scored);
  EXPECT_TRUE(parts.ok()) << parts.status().ToString();
  // And mixing the restored graph with the session's own candidate set
  // still fails the lineage check.
  auto mixed = busy.ScorePairs(own.value(), *snap.blocked);
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(SessionSnapshotTest, MaintenanceStateRoundTripsThroughV3) {
  // A family that went through RemoveTables carries tombstones, dead
  // candidates, and the margin cache; all of it must survive save/restore
  // so a restored session resumes incremental maintenance where the saver
  // left off instead of re-checking every verdict from scratch.
  StagedRun run(26);
  auto parts = run.session.Partition(run.scored);
  ASSERT_TRUE(parts.ok());
  auto mutated = run.session.RemoveTables(
      &run.world.corpus, {1, 4}, run.candidates, run.blocked, run.scored,
      parts.value(), run.result);
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
  const CandidateSet& cands = mutated.value().candidates;
  ASSERT_FALSE(cands.tombstoned_tables.empty());
  ASSERT_GT(cands.num_dead(), 0u);
  ASSERT_FALSE(cands.margins.empty());

  const std::string path = TempPath("ms_persist_maintenance.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, cands, &mutated.value().blocked,
                                &mutated.value().scored,
                                &mutated.value().result)
                  .ok());
  SynthesisSession fresh(FastOptions());
  auto restored = fresh.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const CandidateSet& back = *restored.value().candidates;
  EXPECT_EQ(back.tombstoned_tables, cands.tombstoned_tables);
  EXPECT_EQ(back.dead, cands.dead);
  EXPECT_EQ(back.margin_offsets, cands.margin_offsets);
  EXPECT_EQ(back.margins, cands.margins);
  std::remove(path.c_str());
}

/// Little-endian u32 patcher for header surgery.
void PatchU32(std::string* bytes, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t ReadU32At(const std::string& bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(const std::string& bytes, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

TEST(SessionSnapshotTest, V2SnapshotRestoresWithEmptyMaintenanceState) {
  // Backward compatibility: a v2 file (no maintenance section) written by
  // the previous release must keep loading — with empty maintenance state,
  // which is exactly the state a v2 build carried. Synthesize a v2 file by
  // surgery on a v3 save: strip section 7, patch the version field, and
  // re-checksum the header.
  StagedRun run(27);
  const std::string path = TempPath("ms_persist_v2compat.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, &run.result)
                  .ok());
  std::string bytes = ReadFileBytes(path);
  // Header: u64 magic, u32 version, u32 section_count, u64 fingerprint,
  // u32 crc. Sections: u32 id, u32 crc, u64 size, payload.
  ASSERT_EQ(ReadU32At(bytes, 8), persist::kSnapshotFormatVersion);
  const uint32_t section_count = ReadU32At(bytes, 12);
  size_t off = 28;
  size_t maint_begin = 0, maint_end = 0;
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint32_t id = ReadU32At(bytes, off);
    const uint64_t size = ReadU64At(bytes, off + 8);
    const size_t end = off + 16 + static_cast<size_t>(size);
    if (id == persist::kSectionMaintenance) {
      maint_begin = off;
      maint_end = end;
    }
    off = end;
  }
  ASSERT_NE(maint_begin, maint_end) << "v3 save has no maintenance section";
  bytes.erase(maint_begin, maint_end - maint_begin);
  PatchU32(&bytes, 8, 2);                   // version: 3 -> 2
  PatchU32(&bytes, 12, section_count - 1);  // one section fewer
  PatchU32(&bytes, 24, Crc32(bytes.data(), 24));
  WriteFileBytes(path, bytes);

  SynthesisSession fresh(FastOptions());
  auto restored = fresh.RestoreSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const CandidateSet& back = *restored.value().candidates;
  EXPECT_TRUE(back.tombstoned_tables.empty());
  EXPECT_TRUE(back.dead.empty());
  EXPECT_TRUE(back.margin_offsets.empty());
  EXPECT_TRUE(back.margins.empty());
  // The restored family still resolves identically — nothing besides the
  // maintenance state was lost.
  auto parts = fresh.Partition(*restored.value().scored);
  ASSERT_TRUE(parts.ok());
  auto resolved = fresh.Resolve(*restored.value().candidates,
                                *restored.value().scored, parts.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(CanonicalMappings(resolved.value(), *restored.value().pool),
            CanonicalMappings(run.result, run.world.corpus.pool()));

  // A version outside the supported range stays FailedPrecondition.
  PatchU32(&bytes, 8, 1);
  PatchU32(&bytes, 24, Crc32(bytes.data(), 24));
  WriteFileBytes(path, bytes);
  auto too_old = fresh.RestoreSnapshot(path);
  ASSERT_FALSE(too_old.ok());
  EXPECT_EQ(too_old.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ------------------------------------------------- corruption / fuzz gates

TEST(SnapshotCorruptionTest, EveryBitFlipIsDataLossNeverACrash) {
  StagedRun run(31);
  const std::string path = TempPath("ms_persist_fuzz.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, &run.result)
                  .ok());
  const std::string original = ReadFileBytes(path);
  ASSERT_GT(original.size(), 64u);
  const std::string mutated_path = TempPath("ms_persist_fuzz_mut.mssnap");

  const uint64_t fingerprint = OptionsFingerprint(FastOptions());
  auto expect_dataloss = [&](size_t byte_pos, int bit) {
    std::string mutated = original;
    mutated[byte_pos] =
        static_cast<char>(mutated[byte_pos] ^ static_cast<char>(1 << bit));
    WriteFileBytes(mutated_path, mutated);
    auto restored = persist::LoadSessionSnapshot(mutated_path, fingerprint);
    ASSERT_FALSE(restored.ok())
        << "bit flip at byte " << byte_pos << " bit " << bit
        << " loaded successfully";
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
        << "byte " << byte_pos << " bit " << bit << " -> "
        << restored.status().ToString();
  };

  // Exhaustive over the header and first section header (the region where
  // a single flip could redirect parsing), random over the payloads.
  for (size_t pos = 0; pos < 44 && pos < original.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) expect_dataloss(pos, bit);
  }
  Rng rng(20260729);
  for (int i = 0; i < 200; ++i) {
    expect_dataloss(rng.Uniform(original.size()),
                    static_cast<int>(rng.Uniform(8)));
  }
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

TEST(SnapshotCorruptionTest, EveryTruncationIsDataLoss) {
  StagedRun run(32);
  const std::string path = TempPath("ms_persist_trunc.mssnap");
  ASSERT_TRUE(run.session
                  .SaveSnapshot(path, run.candidates, &run.blocked,
                                &run.scored, &run.result)
                  .ok());
  const std::string original = ReadFileBytes(path);
  const std::string mutated_path = TempPath("ms_persist_trunc_mut.mssnap");

  const uint64_t fingerprint = OptionsFingerprint(FastOptions());
  std::vector<size_t> lengths = {0, 1, 27, 28, 43, 44};
  Rng rng(987);
  for (int i = 0; i < 60; ++i) lengths.push_back(rng.Uniform(original.size()));
  for (size_t len : lengths) {
    WriteFileBytes(mutated_path, original.substr(0, len));
    auto restored = persist::LoadSessionSnapshot(mutated_path, fingerprint);
    ASSERT_FALSE(restored.ok()) << "truncation to " << len << " loaded";
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
        << "len " << len << " -> " << restored.status().ToString();
  }
  // Trailing garbage after the last section is corruption too.
  WriteFileBytes(mutated_path, original + "extra");
  auto restored = persist::LoadSessionSnapshot(mutated_path, fingerprint);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

TEST(SnapshotCorruptionTest, CorpusStoreBitFlipsAreDataLoss) {
  GeneratedWorld world = SmallWorld(33);
  const std::string path = TempPath("ms_persist_corp_fuzz.mscorp");
  ASSERT_TRUE(persist::SaveCorpusStore(world.corpus, path).ok());
  const std::string original = ReadFileBytes(path);
  const std::string mutated_path = TempPath("ms_persist_corp_fuzz_mut.mscorp");

  Rng rng(555);
  for (int i = 0; i < 120; ++i) {
    std::string mutated = original;
    const size_t pos = rng.Uniform(original.size());
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1u << rng.Uniform(8)));
    WriteFileBytes(mutated_path, mutated);
    auto opened = persist::OpenCorpusStore(mutated_path);
    ASSERT_FALSE(opened.ok()) << "flip at byte " << pos << " loaded";
    EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  }
  std::remove(path.c_str());
  std::remove(mutated_path.c_str());
}

TEST(SnapshotCorruptionTest, MissingFileIsNotFound) {
  SynthesisSession session(FastOptions());
  auto restored = session.RestoreSnapshot("/tmp/ms_no_such_snapshot.mssnap");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------- serving restart

// ------------------------------------------------------------- atomic saves

/// A minimal valid container with one distinguishing payload byte.
persist::ContainerWriter TinyContainer(char marker) {
  persist::ContainerWriter writer(persist::kSessionSnapshotMagic, 42);
  writer.AddSection(persist::kSectionLineage, std::string(8, marker));
  return writer;
}

std::string SectionPayload(const std::string& path) {
  auto reader =
      persist::ContainerReader::Open(path, persist::kSessionSnapshotMagic);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  auto payload = reader.value().Section(persist::kSectionLineage);
  EXPECT_TRUE(payload.ok());
  return std::string(payload.value());
}

TEST(AtomicSavePersistTest, ContainerFamiliesVersionIndependently) {
  // Snapshot layout bumps (v2 in PR 5, v3's additive maintenance section
  // here) must not orphan corpus stores whose bytes never changed:
  // snapshots write v3 and still read v2, corpus stores are still v1.
  GeneratedWorld world = SmallWorld(23);
  const std::string store = TempPath("family_version.mscorp");
  ASSERT_TRUE(persist::SaveCorpusStore(world.corpus, store).ok());
  auto reader =
      persist::ContainerReader::Open(store, persist::kCorpusStoreMagic);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().format_version(),
            persist::kCorpusStoreFormatVersion);
  EXPECT_EQ(persist::kCorpusStoreFormatVersion, 1u);
  EXPECT_EQ(persist::kSnapshotFormatVersion, 3u);
  EXPECT_EQ(persist::kMinSnapshotFormatVersion, 2u);
  std::remove(store.c_str());
}

TEST(AtomicSavePersistTest, SaveLeavesNoTmpDebris) {
  const std::string path = TempPath("atomic_basic.mssnap");
  ASSERT_TRUE(TinyContainer('a').WriteFile(path).ok());
  EXPECT_EQ(SectionPayload(path), std::string(8, 'a'));
  // The write went through a tmp file that must be gone after the rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(AtomicSavePersistTest, FailedSaveNeverClobbersPreviousGoodFile) {
  const std::string path = TempPath("atomic_fail.mssnap");
  ASSERT_TRUE(TinyContainer('a').WriteFile(path).ok());

  // Force the tmp-file open to fail: occupy its name with a directory.
  const std::string tmp = path + ".tmp";
  std::remove(tmp.c_str());
  ASSERT_EQ(::mkdir(tmp.c_str(), 0700), 0);
  Status failed = TinyContainer('b').WriteFile(path);
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  // The previous snapshot is untouched and still loads as 'a'.
  EXPECT_EQ(SectionPayload(path), std::string(8, 'a'));
  ASSERT_EQ(::rmdir(tmp.c_str()), 0);

  // With the obstruction gone, the next save atomically replaces it.
  ASSERT_TRUE(TinyContainer('b').WriteFile(path).ok());
  EXPECT_EQ(SectionPayload(path), std::string(8, 'b'));
  std::remove(path.c_str());
}

TEST(AtomicSavePersistTest, CrashedPartialTmpWriteNeverClobbers) {
  // Simulate a writer that died mid-save: a torn, half-written tmp file
  // next to a good snapshot. The good file must be unaffected (the rename
  // never happened), and the next successful save must reclaim the debris.
  const std::string path = TempPath("atomic_crash.mssnap");
  ASSERT_TRUE(TinyContainer('a').WriteFile(path).ok());
  const std::string good_bytes = ReadFileBytes(path);

  WriteFileBytes(path + ".tmp", good_bytes.substr(0, good_bytes.size() / 2));
  EXPECT_EQ(SectionPayload(path), std::string(8, 'a'));
  EXPECT_EQ(ReadFileBytes(path), good_bytes);
  // And the torn tmp itself would be refused as DataLoss if ever opened.
  auto torn = persist::ContainerReader::Open(path + ".tmp",
                                             persist::kSessionSnapshotMagic);
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss);

  ASSERT_TRUE(TinyContainer('c').WriteFile(path).ok());
  EXPECT_EQ(SectionPayload(path), std::string(8, 'c'));
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(ServiceSnapshotTest, OpenFromSnapshotServesImmediately) {
  GeneratedWorld world = SmallWorld(41);
  MappingService service(FastOptions());
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  ASSERT_TRUE(service.has_store());
  const size_t num_mappings = service.num_mappings();

  const std::string path = TempPath("ms_persist_service.mssnap");
  ASSERT_TRUE(service.SaveSnapshot(path).ok());

  // Fresh service, no corpus anywhere in sight: restore and serve.
  MappingService restarted(FastOptions());
  Status st = restarted.OpenFromSnapshot(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(restarted.has_store());
  EXPECT_EQ(restarted.num_mappings(), num_mappings);
  // Restoring reuses the saved result: no pipeline stage re-runs.
  EXPECT_EQ(restarted.session_stats().scoring_runs, 0u);
  EXPECT_EQ(restarted.session_stats().partition_runs, 0u);

  // Same lookups out of both stores.
  for (size_t i = 0; i < num_mappings; ++i) {
    const auto& mapping = service.store().mapping(i);
    if (mapping.size() == 0) continue;
    const std::string probe(
        world.corpus.pool().Get(mapping.merged.pairs()[0].left));
    auto want = service.store().LookupRight(i, probe);
    auto got = restarted.store().LookupRight(i, probe);
    ASSERT_TRUE(want.has_value());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*want, *got);
  }
  std::remove(path.c_str());
}

TEST(ServiceSnapshotTest, OpenFromSnapshotFailsClosed) {
  GeneratedWorld world = SmallWorld(42);
  MappingService service(FastOptions());
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  const size_t num_mappings = service.num_mappings();

  const std::string path = TempPath("ms_persist_service_bad.mssnap");
  ASSERT_TRUE(service.SaveSnapshot(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  WriteFileBytes(path, bytes);

  Status st = service.OpenFromSnapshot(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  // The previous store keeps serving.
  ASSERT_TRUE(service.has_store());
  EXPECT_EQ(service.num_mappings(), num_mappings);
  std::remove(path.c_str());
}

TEST(ServiceSnapshotTest, OpenFromMappingsFilePropagatesStatusFailClosed) {
  GeneratedWorld world = SmallWorld(43);
  MappingService service(FastOptions());
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  const size_t before = service.num_mappings();

  // Unreadable input: Status propagates, the store is untouched (previously
  // this class of load yielded a silently empty store). A missing file is
  // NotFound since the env refactor; IO failures on existing files stay
  // IOError.
  Status st = service.OpenFromMappingsFile("/tmp/ms_no_such_mappings.tsv");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(service.num_mappings(), before);

  // Malformed input: same discipline.
  const std::string bad = TempPath("ms_persist_bad_mappings.tsv");
  WriteFileBytes(bad, "not a mapping header\n");
  st = service.OpenFromMappingsFile(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.num_mappings(), before);

  // Non-numeric / overflowing / allocation-bomb header counts must come
  // back as InvalidArgument, never abort (std::stoull used to throw here).
  for (const char* header :
       {"#mapping\t-\t-\tnotanumber\t0\t0\n",
        "#mapping\t-\t-\t1\t18446744073709551615\t0\n",
        "#mapping\t-\t-\t1\t0\t99999999999999999999\n",
        "#mapping\t-\t-\t1\t0\t-3\n"}) {
    WriteFileBytes(bad, header);
    st = service.OpenFromMappingsFile(bad);
    ASSERT_FALSE(st.ok()) << header;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << header;
    EXPECT_EQ(service.num_mappings(), before);
  }

  // A real file round-trips through the legacy-format path.
  const std::string good = TempPath("ms_persist_good_mappings.tsv");
  ASSERT_TRUE(SaveMappings(service.last_result().mappings,
                           world.corpus.pool(), good)
                  .ok());
  st = service.OpenFromMappingsFile(good);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(service.num_mappings(), before);
  std::remove(bad.c_str());
  std::remove(good.c_str());
}

TEST(ServiceSnapshotTest, ResynthesizeDownstreamOfSnapshotWorks) {
  GeneratedWorld world = SmallWorld(44);
  MappingService service(FastOptions());
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  const std::string path = TempPath("ms_persist_resynth.mssnap");
  ASSERT_TRUE(service.SaveSnapshot(path).ok());

  MappingService restarted(FastOptions());
  ASSERT_TRUE(restarted.OpenFromSnapshot(path).ok());

  // Downstream-only change: re-partitions the restored graph.
  SynthesisOptions tweaked = FastOptions();
  tweaked.partitioner.theta_edge = 0.6;
  Status st = restarted.Resynthesize(tweaked);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restarted.session_stats().blocking_runs, 0u);

  // Extraction-invalidating change: no corpus to re-extract from.
  SynthesisOptions upstream = FastOptions();
  upstream.extraction.min_pairs = 5;
  st = restarted.Resynthesize(upstream);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- legacy wrapper

TEST(MappingIoCompatTest, WrapperDelegatesToPersistLayer) {
  GeneratedWorld world = SmallWorld(51);
  SynthesisSession session(FastOptions());
  auto result = session.Run(world.corpus);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().mappings.empty());

  const std::string path = TempPath("ms_persist_compat.tsv");
  // Old API writes...
  ASSERT_TRUE(
      SaveMappings(result.value().mappings, world.corpus.pool(), path).ok());
  // ...new API reads, and vice versa.
  StringPool pool1;
  std::vector<SynthesizedMapping> via_persist;
  ASSERT_TRUE(persist::LoadMappingsTsv(path, &pool1, &via_persist).ok());
  EXPECT_EQ(via_persist.size(), result.value().mappings.size());

  ASSERT_TRUE(
      persist::SaveMappingsTsv(via_persist, pool1, path).ok());
  auto pool2 = std::make_shared<StringPool>();
  std::vector<SynthesizedMapping> via_wrapper;
  ASSERT_TRUE(LoadMappings(path, pool2.get(), &via_wrapper).ok());
  EXPECT_EQ(via_wrapper.size(), via_persist.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ms
