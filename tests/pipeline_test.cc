// Integration tests for the end-to-end synthesis pipeline (Figure 1):
// extraction -> blocking -> scoring -> partitioning -> conflict resolution
// on small generated worlds with exactly known ground truth.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "corpusgen/builtin_domains.h"
#include "corpusgen/generator.h"
#include "eval/metrics.h"
#include "synth/pipeline.h"

namespace ms {
namespace {

/// A compact world: the four country-code systems (mutually conflicting),
/// states, elements — the paper's headline adversarial structure.
GeneratedWorld SmallWorld(uint64_t seed = 7) {
  auto all = BuiltinWebRelationships();
  std::vector<RelationshipSpec> specs;
  for (auto& s : all) {
    if (s.name == "country_iso3" || s.name == "country_ioc" ||
        s.name == "country_fifa" || s.name == "state_abbrev" ||
        s.name == "element_symbol") {
      s.popularity = 16;
      specs.push_back(std::move(s));
    }
  }
  GeneratorOptions opts;
  opts.seed = seed;
  opts.noise_table_fraction = 0.2;
  return GenerateWorld(std::move(specs), opts);
}

SynthesisOptions FastOptions() {
  SynthesisOptions o;
  o.num_threads = 4;
  o.min_domains = 2;
  return o;
}

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new GeneratedWorld(SmallWorld());
    SynthesisPipeline pipeline(FastOptions());
    result_ = new SynthesisResult(pipeline.Run(world_->corpus));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete world_;
    result_ = nullptr;
    world_ = nullptr;
  }

  static PrfScore BestFor(const std::string& case_name) {
    std::vector<BinaryTable> rels;
    for (const auto& m : result_->mappings) rels.push_back(m.merged);
    int ci = world_->CaseIndex(case_name);
    EXPECT_GE(ci, 0);
    return FindBestRelation(rels, world_->cases[ci].ground_truth).score;
  }

  static GeneratedWorld* world_;
  static SynthesisResult* result_;
};

GeneratedWorld* PipelineFixture::world_ = nullptr;
SynthesisResult* PipelineFixture::result_ = nullptr;

TEST_F(PipelineFixture, ProducesMappings) {
  EXPECT_GT(result_->mappings.size(), 3u);
  EXPECT_GT(result_->stats.candidates, 50u);
  EXPECT_GT(result_->stats.graph_edges, 0u);
}

TEST_F(PipelineFixture, HighQualityOnHeadlineCases) {
  for (const char* name : {"country_iso3", "country_ioc", "state_abbrev",
                           "element_symbol"}) {
    PrfScore s = BestFor(name);
    EXPECT_GT(s.fscore, 0.7) << name;
    EXPECT_GT(s.precision, 0.8) << name;
  }
}

TEST_F(PipelineFixture, SiblingCodeSystemsStaySeparate) {
  // The merged ISO mapping must not contain IOC-specific codes for the
  // countries where the systems diverge (Algeria: dza vs alg).
  const StringPool& pool = world_->corpus.pool();
  ValueId algeria = pool.Find("algeria");
  ASSERT_NE(algeria, kInvalidValueId);
  for (const auto& m : result_->mappings) {
    bool has_dza = false, has_alg = false;
    for (const auto& p : m.merged.pairs()) {
      if (p.left != algeria) continue;
      std::string_view r = pool.Get(p.right);
      has_dza |= r == "dza";
      has_alg |= r == "alg";
    }
    EXPECT_FALSE(has_dza && has_alg)
        << "mapping '" << m.left_label << " -> " << m.right_label
        << "' mixed ISO and IOC codes";
  }
}

TEST_F(PipelineFixture, MappingsAreFunctional) {
  // Every conflict-resolved mapping must satisfy the FD definition exactly.
  for (const auto& m : result_->mappings) {
    EXPECT_DOUBLE_EQ(m.merged.FdHoldRatio(), 1.0)
        << m.left_label << " -> " << m.right_label;
  }
}

TEST_F(PipelineFixture, MappingsCoverSynonyms) {
  // The ISO mapping should contain more left mentions than countries
  // because synonymous forms are synthesized together (Table 6).
  PrfScore iso = BestFor("country_iso3");
  EXPECT_GT(iso.recall, 0.5);
  bool found_synonym_rich = false;
  for (const auto& m : result_->mappings) {
    if (m.LeftPerRight() > 1.1 && m.size() > 30) found_synonym_rich = true;
  }
  EXPECT_TRUE(found_synonym_rich);
}

TEST_F(PipelineFixture, StatsArePopulated) {
  const auto& st = result_->stats;
  EXPECT_GT(st.total_seconds, 0.0);
  EXPECT_GT(st.extract_seconds + st.blocking_seconds + st.scoring_seconds +
                st.partition_seconds,
            0.0);
  EXPECT_GE(st.candidate_pairs, st.graph_edges);
  EXPECT_GT(st.partitions, 0u);
  EXPECT_EQ(st.mappings, result_->mappings.size());
  EXPECT_GT(st.extraction.tables_seen, 0u);
}

TEST(PipelineOptionTest, DivideAndConquerMatchesGlobalRun) {
  GeneratedWorld world = SmallWorld(11);
  SynthesisOptions a = FastOptions();
  a.divide_and_conquer = true;
  SynthesisOptions b = FastOptions();
  b.divide_and_conquer = false;
  SynthesisResult ra = SynthesisPipeline(a).Run(world.corpus);
  SynthesisResult rb = SynthesisPipeline(b).Run(world.corpus);
  // Same number of mappings with identical pair-set sizes (partition ids
  // may differ, the partition contents may not).
  ASSERT_EQ(ra.mappings.size(), rb.mappings.size());
  std::multiset<size_t> sa, sb;
  for (const auto& m : ra.mappings) sa.insert(m.size());
  for (const auto& m : rb.mappings) sb.insert(m.size());
  EXPECT_EQ(sa, sb);
}

TEST(PipelineOptionTest, ConflictResolutionImprovesPrecision) {
  GeneratedWorld world = SmallWorld(13);
  SynthesisOptions with = FastOptions();
  SynthesisOptions without = FastOptions();
  without.resolve_conflicts = false;

  auto avg_precision = [&](const SynthesisResult& r) {
    std::vector<BinaryTable> rels;
    for (const auto& m : r.mappings) rels.push_back(m.merged);
    double p = 0;
    for (const auto& c : world.cases) {
      p += FindBestRelation(rels, c.ground_truth).score.precision;
    }
    return p / static_cast<double>(world.cases.size());
  };
  double p_with = avg_precision(SynthesisPipeline(with).Run(world.corpus));
  double p_without =
      avg_precision(SynthesisPipeline(without).Run(world.corpus));
  EXPECT_GE(p_with + 1e-9, p_without);
}

TEST(PipelineOptionTest, MajorityVotingAlsoYieldsFunctionalMappings) {
  GeneratedWorld world = SmallWorld(17);
  SynthesisOptions o = FastOptions();
  o.use_majority_voting = true;
  SynthesisResult r = SynthesisPipeline(o).Run(world.corpus);
  ASSERT_FALSE(r.mappings.empty());
  for (const auto& m : r.mappings) {
    EXPECT_DOUBLE_EQ(m.merged.FdHoldRatio(), 1.0);
  }
}

TEST(PipelineOptionTest, NegativeSignalAblationDegradesSeparation) {
  GeneratedWorld world = SmallWorld(19);
  SynthesisOptions full = FastOptions();
  SynthesisOptions pos_only = FastOptions();
  pos_only.partitioner.use_negative_signals = false;
  pos_only.resolve_conflicts = false;

  auto avg_f = [&](const SynthesisResult& r) {
    std::vector<BinaryTable> rels;
    for (const auto& m : r.mappings) rels.push_back(m.merged);
    double f = 0;
    for (const auto& c : world.cases) {
      f += FindBestRelation(rels, c.ground_truth).score.fscore;
    }
    return f / static_cast<double>(world.cases.size());
  };
  double f_full = avg_f(SynthesisPipeline(full).Run(world.corpus));
  double f_pos = avg_f(SynthesisPipeline(pos_only).Run(world.corpus));
  EXPECT_GT(f_full, f_pos);
}

TEST(PipelineOptionTest, PopularityFilterIsMonotone) {
  GeneratedWorld world = SmallWorld(23);
  SynthesisOptions loose = FastOptions();
  loose.min_domains = 1;
  loose.min_pairs = 1;
  SynthesisOptions strict = FastOptions();
  strict.min_domains = 4;
  strict.min_pairs = 8;
  size_t n_loose = SynthesisPipeline(loose).Run(world.corpus).mappings.size();
  size_t n_strict =
      SynthesisPipeline(strict).Run(world.corpus).mappings.size();
  EXPECT_GE(n_loose, n_strict);
}

/// Canonical view of a mapping set: partition ids (and hence vector order)
/// depend on thread scheduling, so compare as a sorted multiset of
/// (labels, member count, exact pair list).
std::multiset<std::string> CanonicalMappings(const SynthesisResult& r,
                                             const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f" +
                      std::to_string(m.kept_tables.size()) + "\x1f";
    for (const auto& p : m.merged.pairs()) {
      key += std::string(pool.Get(p.left)) + "\x1e" +
             std::string(pool.Get(p.right)) + "\x1f";
    }
    out.insert(std::move(key));
  }
  return out;
}

TEST(PipelineEquivalenceTest, BitParallelFastPathIsByteIdentical) {
  // The tentpole guarantee: Myers kernels + batched mask caching + blocking
  // count reuse change speed only. Pair scores must be bitwise identical
  // and the final mappings must carry exactly the same pairs.
  GeneratedWorld world = SmallWorld(31);
  ColumnInvertedIndex index;
  index.Build(world.corpus);
  auto extracted = ExtractCandidates(world.corpus, index);
  const StringPool& pool = world.corpus.pool();

  SynthesisOptions fast = FastOptions();  // bit-parallel + reuse: defaults
  SynthesisOptions slow = FastOptions();
  slow.compat.edit.use_bit_parallel = false;
  slow.compat.reuse_blocking_counts = false;

  // Graph level: identical edges, bitwise-identical weights.
  PipelineStats fast_stats, slow_stats;
  CompatibilityGraph gf =
      BuildCompatibilityGraph(extracted.candidates, pool, fast.blocking,
                              fast.compat, nullptr, &fast_stats);
  CompatibilityGraph gs =
      BuildCompatibilityGraph(extracted.candidates, pool, slow.blocking,
                              slow.compat, nullptr, &slow_stats);
  ASSERT_EQ(gf.num_edges(), gs.num_edges());
  for (size_t e = 0; e < gf.edges().size(); ++e) {
    EXPECT_EQ(gf.edges()[e].u, gs.edges()[e].u) << e;
    EXPECT_EQ(gf.edges()[e].v, gs.edges()[e].v) << e;
    EXPECT_EQ(gf.edges()[e].w_pos, gs.edges()[e].w_pos) << e;  // bitwise
    EXPECT_EQ(gf.edges()[e].w_neg, gs.edges()[e].w_neg) << e;
  }
  // The fast run actually took the bit-parallel path (and the slow one the
  // scalar fallback) — guards against silently comparing the same code.
  EXPECT_GT(fast_stats.scoring.matcher.myers64_calls, 0u);
  EXPECT_EQ(fast_stats.scoring.matcher.banded_calls, 0u);
  EXPECT_EQ(slow_stats.scoring.matcher.myers64_calls, 0u);
  EXPECT_GT(slow_stats.scoring.matcher.banded_calls, 0u);

  // End-to-end: identical mappings, pair for pair.
  SynthesisResult rf = SynthesisPipeline(fast).Run(world.corpus);
  SynthesisResult rs = SynthesisPipeline(slow).Run(world.corpus);
  ASSERT_EQ(rf.mappings.size(), rs.mappings.size());
  EXPECT_EQ(CanonicalMappings(rf, pool), CanonicalMappings(rs, pool));
  EXPECT_EQ(rf.stats.graph_edges, rs.stats.graph_edges);
  EXPECT_EQ(rf.stats.candidate_pairs, rs.stats.candidate_pairs);
  EXPECT_EQ(rf.stats.partitions, rs.stats.partitions);
}

TEST(PipelineEquivalenceTest, ScoringStatsArePopulated) {
  GeneratedWorld world = SmallWorld(37);
  SynthesisResult r = SynthesisPipeline(FastOptions()).Run(world.corpus);
  const auto& sc = r.stats.scoring;
  EXPECT_GT(sc.matcher.match_calls, 0u);
  EXPECT_GT(sc.matcher.myers64_calls, 0u);
  EXPECT_EQ(sc.matcher.banded_calls, 0u);  // gate defaults on
  // Mask caching must actually amortize: strictly more kernel calls than
  // mask builds.
  EXPECT_GT(sc.matcher.pattern_cache_hits, 0u);
}

TEST(PipelineOptionTest, RunOnCandidatesDirectly) {
  GeneratedWorld world = SmallWorld(29);
  ColumnInvertedIndex index;
  index.Build(world.corpus);
  auto extracted = ExtractCandidates(world.corpus, index);
  SynthesisPipeline pipeline(FastOptions());
  SynthesisResult r =
      pipeline.RunOnCandidates(extracted.candidates, world.corpus.pool());
  EXPECT_FALSE(r.mappings.empty());
  EXPECT_EQ(r.stats.candidates, extracted.candidates.size());
}

}  // namespace
}  // namespace ms
