// Concurrency lockdown for the MappingService serving tier: N reader
// threads hammer the RCU snapshot path while a writer thread runs real
// transitions (appends, resynthesis). Every reader asserts the published
// invariants on every operation — store/result sizes agree, versions never
// move backwards, batched lookups agree with scalar lookups within one
// snapshot — so ANY torn publication (a store from one generation served
// with a result from another) fails deterministically, and TSan has dense
// cross-thread traffic to verify the acquire/release protocol on.
//
// These tests run under the `concurrency` ctest label (which CI also runs
// under -fsanitize=thread); test names must match *ServingConcurrency* —
// the label's gtest filter.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "common/random.h"
#include "synth/session.h"
#include "table/corpus.h"
#include "table/tsv.h"

namespace ms {
namespace {

struct TableSpec {
  std::string domain;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
};

/// Same generator family as tests/serving_test.cc (ground mapping
/// name_i -> code_(i mod 8) with typo/conflict noise).
std::vector<TableSpec> SmallCorpusSpec(Rng& rng, size_t n_tables) {
  std::vector<std::string> lefts, rights;
  for (size_t i = 0; i < 24; ++i) {
    lefts.push_back("entity name " + std::to_string(i));
    rights.push_back("code" + std::to_string(i % 8));
  }
  std::vector<TableSpec> specs;
  specs.reserve(n_tables);
  for (size_t t = 0; t < n_tables; ++t) {
    TableSpec spec;
    spec.domain = "domain" + std::to_string(rng.Uniform(4)) + ".example";
    const size_t rows = 4 + rng.Uniform(5);
    std::vector<std::string> lcol, rcol;
    std::set<uint64_t> seen;
    while (lcol.size() < rows) {
      const uint64_t li = rng.Uniform(lefts.size());
      if (!seen.insert(li).second) continue;
      std::string l = lefts[li];
      if (rng.Bernoulli(0.1)) {
        l[rng.Uniform(l.size())] = static_cast<char>('a' + rng.Uniform(26));
      }
      std::string r = rights[li];
      if (rng.Bernoulli(0.05)) r = "code" + std::to_string(rng.Uniform(8));
      lcol.push_back(std::move(l));
      rcol.push_back(std::move(r));
    }
    spec.names = {"name", "code"};
    spec.cols = {std::move(lcol), std::move(rcol)};
    specs.push_back(std::move(spec));
  }
  return specs;
}

void AddSpecs(TableCorpus* corpus, const std::vector<TableSpec>& specs,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    corpus->AddFromStrings(specs[i].domain, TableSource::kWeb, specs[i].names,
                           specs[i].cols);
  }
}

SynthesisOptions ServingOptions() {
  SynthesisOptions o;
  o.num_threads = 2;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + "\x1e" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f";
    for (const auto& p : pairs) key += p + "\x1f";
    out.insert(std::move(key));
  }
  return out;
}

/// One reader's inner loop body: acquires a snapshot and checks every
/// cross-artifact invariant a torn publication would break. Returns the
/// snapshot version observed (0 when nothing is served yet) and counts
/// violations instead of ASSERTing — gtest assertions are not
/// thread-safe, so the threads tally and the main thread asserts.
uint64_t CheckOnce(const MappingService& svc, Rng& rng,
                   std::atomic<uint64_t>* torn) {
  const auto snap = svc.AcquireSnapshot();
  if (snap == nullptr) return 0;
  // The atomic unit: store built from exactly result's mappings.
  if (snap->store == nullptr || snap->result == nullptr ||
      snap->pool == nullptr ||
      snap->store->size() != snap->result->mappings.size() ||
      snap->result->stats.mappings != snap->result->mappings.size()) {
    torn->fetch_add(1, std::memory_order_relaxed);
    return snap->version;
  }
  if (snap->store->size() == 0) return snap->version;

  // Batched lookups against the snapshot's store must agree with scalar
  // lookups against the SAME store — and resolve real pairs of this
  // generation. Probe values come from the snapshot's own result/pool, so
  // the check is self-contained per generation.
  const size_t mi = rng.Uniform(snap->store->size());
  const auto& mapping = snap->result->mappings[mi];
  std::vector<std::string> probes;
  for (const auto& p : mapping.merged.pairs()) {
    probes.emplace_back(snap->pool->Get(p.left));
    if (probes.size() >= 8) break;
  }
  probes.push_back("definitely unseen value " +
                   std::to_string(rng.Uniform(1000)));
  const auto batch = snap->store->LookupRightBatch(mi, probes);
  if (batch.size() != probes.size()) {
    torn->fetch_add(1, std::memory_order_relaxed);
    return snap->version;
  }
  for (size_t k = 0; k < probes.size(); ++k) {
    if (batch[k] != snap->store->LookupRight(mi, probes[k])) {
      torn->fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Every left value of the generation's own mapping must resolve.
  for (size_t k = 0; k + 1 < probes.size(); ++k) {
    if (!batch[k].has_value()) torn->fetch_add(1, std::memory_order_relaxed);
  }
  // App entry points ride the same snapshot path; exercise one per check
  // so TSan sees the full reader surface.
  (void)svc.SuggestCorrections(probes);
  return snap->version;
}

// The torture test ISSUE.md names: continuous appends under read load,
// zero torn reads.
TEST(ServingConcurrencyTest, AppendsUnderReadLoadServeNoTornState) {
  Rng rng(701);
  const size_t kTotalTables = 14;
  const size_t kInitialTables = 6;
  auto specs = SmallCorpusSpec(rng, kTotalTables);

  // Delta appends require a service-owned corpus: bootstrap through a TSV.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string tsv =
      std::string(tmpdir != nullptr && *tmpdir ? tmpdir : "/tmp") +
      "/serving_torture_base.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, kInitialTables);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());

  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> monotonicity_violations{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  const size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng trng(900 + t);
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t v = CheckOnce(svc, trng, &torn);
        if (v != 0) {
          if (v < last_version) {
            monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
          }
          last_version = v;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: append the remaining tables one at a time under full read
  // load, then keep resynthesizing until every reader has seen plenty of
  // transitions.
  for (size_t i = kInitialTables; i < kTotalTables; ++i) {
    TableCorpus delta;
    AddSpecs(&delta, specs, i, i + 1);
    ASSERT_TRUE(svc.AppendAndResynthesize(delta).ok());
  }
  while (reads.load(std::memory_order_relaxed) < 2000) {
    ASSERT_TRUE(svc.Resynthesize(ServingOptions()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(monotonicity_violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  // The appended end state equals a cold rebuild over all tables — the
  // concurrency machinery must not change results.
  TableCorpus cold_corpus;
  AddSpecs(&cold_corpus, specs, 0, kTotalTables);
  MappingService cold(ServingOptions());
  ASSERT_TRUE(cold.Synthesize(cold_corpus).ok());
  EXPECT_EQ(Canonical(svc.last_result(), *svc.shared_pool()),
            Canonical(cold.last_result(), *cold.shared_pool()));
  std::remove(tsv.c_str());
}

// The ISSUE's named race: readers during Resynthesize. Warm resyntheses
// with alternating options churn generations as fast as the chain can run
// while readers hold snapshots across the swaps.
TEST(ServingConcurrencyTest, ReadersSurviveContinuousResynthesis) {
  Rng rng(702);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());

  SynthesisOptions a = ServingOptions();
  SynthesisOptions b = ServingOptions();
  b.min_pairs = 2;  // downstream-only diff: re-partitions + re-resolves

  std::atomic<uint64_t> torn{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> held_handle_violations{0};

  const size_t kReaders = 3;
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng trng(800 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Hold a handle across whatever transitions happen, then verify
        // it is still internally consistent — the RCU grace-period
        // guarantee (the old generation must outlive the swap).
        const auto held = svc.AcquireSnapshot();
        (void)CheckOnce(svc, trng, &torn);
        if (held != nullptr &&
            held->store->size() != held->result->mappings.size()) {
          held_handle_violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(svc.Resynthesize(round % 2 == 0 ? b : a).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(held_handle_violations.load(), 0u);
  // 30 resyntheses after the initial publish.
  EXPECT_EQ(svc.AcquireSnapshot()->version, 31u);
}

// Wait-free reader accessors and health() polling alongside rotating
// saves — the operator dashboard path.
TEST(ServingConcurrencyTest, HealthAndSizePollingRaceWriters) {
  Rng rng(703);
  auto specs = SmallCorpusSpec(rng, 8);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistencies{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServiceHealth h = svc.health();
      if (h.generations_skipped > 0 || !h.quarantined_files.empty()) {
        inconsistencies.fetch_add(1, std::memory_order_relaxed);
      }
      if (svc.has_store() && svc.num_mappings() == 0) {
        // The corpus always yields mappings; a zero here means a torn
        // publish was observed.
        inconsistencies.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(svc.Resynthesize(ServingOptions()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_EQ(inconsistencies.load(), 0u);
}

}  // namespace
}  // namespace ms
