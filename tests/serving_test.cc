// Lockdown suite for the MappingService serving tier (apps/serving.{h,cc},
// apps/mapping_store.{h,cc}): the RCU ServingSnapshot publication protocol,
// the fail-closed transition contract (a failed transition leaves store,
// pool, artifacts, corpus, options, and health() bit-identical), the
// ServiceHealth reset semantics, the recoverable append protocol
// (merge rollback on failure), and the batched/sharded lookup paths'
// equivalence with the scalar/scan oracles.
//
// Chain failures are injected with MappingService::InjectFaultForTests —
// the CPU-side analog of the persistence FaultInjectionEnv sweep
// (tests/fault_test.cc): the service's own artifacts always share lineage,
// so no mid-chain stage failure is reachable through the public API
// without a deterministic failpoint.
//
// The multi-threaded half of the serving contract (torture appends under
// read load, readers during Resynthesize) lives in
// tests/serving_concurrency_test.cc under the `concurrency` ctest label.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "common/random.h"
#include "persist/mapping_text.h"
#include "persist/rotation.h"
#include "synth/session.h"
#include "table/corpus.h"
#include "table/tsv.h"

namespace ms {
namespace {

using ServingFault = MappingService::ServingFault;
using LookupDirection = MappingService::LookupDirection;

std::string ScratchRoot() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir ? dir : "/tmp");
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ScratchRoot() + "/" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void FlipByte(const std::string& path, size_t pos) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), pos);
  bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------ corpus construction

struct TableSpec {
  std::string domain;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cols;
};

/// Same web-shaped generator family as the incremental/fault suites: a
/// ground mapping name_i -> code_(i mod 8) sampled with typo and conflict
/// noise over a small vocabulary.
std::vector<TableSpec> SmallCorpusSpec(Rng& rng, size_t n_tables) {
  std::vector<std::string> lefts, rights;
  for (size_t i = 0; i < 24; ++i) {
    lefts.push_back("entity name " + std::to_string(i));
    rights.push_back("code" + std::to_string(i % 8));
  }
  std::vector<TableSpec> specs;
  specs.reserve(n_tables);
  for (size_t t = 0; t < n_tables; ++t) {
    TableSpec spec;
    spec.domain = "domain" + std::to_string(rng.Uniform(4)) + ".example";
    const size_t rows = 4 + rng.Uniform(5);
    std::vector<std::string> lcol, rcol;
    std::set<uint64_t> seen;
    while (lcol.size() < rows) {
      const uint64_t li = rng.Uniform(lefts.size());
      if (!seen.insert(li).second) continue;
      std::string l = lefts[li];
      if (rng.Bernoulli(0.1)) {
        l[rng.Uniform(l.size())] = static_cast<char>('a' + rng.Uniform(26));
      }
      std::string r = rights[li];
      if (rng.Bernoulli(0.05)) r = "code" + std::to_string(rng.Uniform(8));
      lcol.push_back(std::move(l));
      rcol.push_back(std::move(r));
    }
    spec.names = {"name", "code"};
    spec.cols = {std::move(lcol), std::move(rcol)};
    specs.push_back(std::move(spec));
  }
  return specs;
}

void AddSpecs(TableCorpus* corpus, const std::vector<TableSpec>& specs,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    corpus->AddFromStrings(specs[i].domain, TableSource::kWeb, specs[i].names,
                           specs[i].cols);
  }
}

SynthesisOptions ServingOptions() {
  SynthesisOptions o;
  o.num_threads = 2;
  o.min_domains = 1;
  o.min_pairs = 1;
  o.extraction.coherence_threshold = -1.0;
  return o;
}

// -------------------------------------------------------------- comparison

std::multiset<std::string> Canonical(const SynthesisResult& r,
                                     const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::multiset<std::string> pairs;
    for (const auto& p : m.merged.pairs()) {
      pairs.insert(std::string(pool.Get(p.left)) + "\x1e" +
                   std::string(pool.Get(p.right)));
    }
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f";
    for (const auto& p : pairs) key += p + "\x1f";
    out.insert(std::move(key));
  }
  return out;
}

std::multiset<std::string> ServiceCanonical(const MappingService& svc) {
  return Canonical(svc.last_result(), *svc.shared_pool());
}

void ExpectHealthEq(const ServiceHealth& a, const ServiceHealth& b) {
  EXPECT_EQ(a.generation_served, b.generation_served);
  EXPECT_EQ(a.generations_skipped, b.generations_skipped);
  EXPECT_EQ(a.quarantined_files, b.quarantined_files);
  EXPECT_EQ(a.degraded(), b.degraded());
}

/// All left/right value strings of every mapping in the snapshot's store,
/// resolved through the snapshot's own pool — probe material for lookups.
std::vector<std::pair<std::string, std::string>> SnapshotPairs(
    const ServingSnapshot& snap) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& m : snap.result->mappings) {
    for (const auto& p : m.merged.pairs()) {
      out.emplace_back(std::string(snap.pool->Get(p.left)),
                       std::string(snap.pool->Get(p.right)));
    }
  }
  return out;
}

// ===================================================== ServingSnapshotTest

TEST(ServingRcuTest, NothingServedBeforeFirstTransition) {
  MappingService svc(ServingOptions());
  EXPECT_EQ(svc.AcquireSnapshot(), nullptr);
  EXPECT_FALSE(svc.has_store());
  EXPECT_EQ(svc.num_mappings(), 0u);
  const auto batch =
      svc.LookupBatch(0, {"entity name 1", "code1"});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch[0].has_value());
  EXPECT_FALSE(batch[1].has_value());
  EXPECT_EQ(svc.SuggestCorrections({"a", "b"}).mapping_index, -1);
  EXPECT_EQ(svc.AutoFill({"a", "b"}, {{0, "x"}}).mapping_index, -1);
  EXPECT_EQ(svc.AutoJoin({"a"}, {"b"}).mapping_index, -1);
}

TEST(ServingRcuTest, VersionsAdvanceAndOldHandlesKeepServing) {
  Rng rng(101);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus base;
  AddSpecs(&base, specs, 0, 7);

  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(base).ok());
  const auto v1 = svc.AcquireSnapshot();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  ASSERT_NE(v1->store, nullptr);
  ASSERT_NE(v1->result, nullptr);
  EXPECT_EQ(v1->store->size(), v1->result->mappings.size());
  const size_t v1_mappings = v1->store->size();
  const auto v1_pairs = SnapshotPairs(*v1);

  // Grow the external corpus and resynthesize: a new generation publishes.
  AddSpecs(&base, specs, 7, specs.size());
  ASSERT_TRUE(svc.ResynthesizeAppended().ok());
  const auto v2 = svc.AcquireSnapshot();
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version, 2u);
  EXPECT_NE(v1.get(), v2.get());
  EXPECT_NE(v1->store.get(), v2->store.get());

  // The old handle is still fully serviceable: same store object, same
  // size, lookups still resolve — the RCU grace period is the handle's
  // lifetime.
  EXPECT_EQ(v1->store->size(), v1_mappings);
  for (size_t i = 0; i < v1_pairs.size() && i < 8; ++i) {
    const auto got = v1->store->LookupRight(0, v1_pairs.empty()
                                                   ? std::string()
                                                   : v1_pairs[i].first);
    (void)got;  // value depends on which mapping is index 0; no crash is
                // the assertion, plus the size identity above.
  }

  // A third transition (warm resynthesize, same options) bumps again.
  ASSERT_TRUE(svc.Resynthesize(ServingOptions()).ok());
  EXPECT_EQ(svc.AcquireSnapshot()->version, 3u);
}

TEST(ServingRcuTest, SnapshotIsInternallyConsistentAcrossTransitions) {
  Rng rng(102);
  auto specs = SmallCorpusSpec(rng, 12);
  TableCorpus base;
  AddSpecs(&base, specs, 0, 8);
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(base).ok());

  const auto snap = svc.AcquireSnapshot();
  ASSERT_NE(snap, nullptr);
  // The published invariant the torture test hammers concurrently: the
  // store was built from exactly result->mappings.
  EXPECT_EQ(snap->store->size(), snap->result->mappings.size());
  EXPECT_EQ(snap->result->stats.mappings, snap->result->mappings.size());
  for (size_t i = 0; i < snap->store->size(); ++i) {
    EXPECT_EQ(snap->store->name(i),
              snap->result->mappings[i].left_label + "->" +
                  snap->result->mappings[i].right_label);
  }
}

// ==================================================== ServingFailClosedTest

/// Every chain-stage failpoint of a fresh run must leave the previous
/// serving generation — snapshot object, store, pool, result, corpus
/// binding, and health — bit-identical (ISSUE satellite 1: StartFreshRun
/// previously installed corpus/pool and cleared artifacts before running
/// the chain).
TEST(ServingFailClosedTest, FailedFreshRunLeavesPriorGenerationUntouched) {
  Rng rng(201);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus good;
  AddSpecs(&good, specs, 0, 7);
  Rng rng2(202);
  auto other_specs = SmallCorpusSpec(rng2, 6);
  TableCorpus other;
  AddSpecs(&other, other_specs, 0, other_specs.size());

  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(good).ok());
  const auto before_snap = svc.AcquireSnapshot();
  const auto before_canonical = ServiceCanonical(svc);
  const auto before_health = svc.health();
  const StringPool* before_pool = svc.shared_pool().get();
  const MappingStore* before_store = &svc.store();

  const ServingFault points[] = {ServingFault::kExtract,
                                 ServingFault::kBlock,
                                 ServingFault::kScore,
                                 ServingFault::kPartition,
                                 ServingFault::kResolve,
                                 ServingFault::kPublish};
  for (const ServingFault point : points) {
    svc.InjectFaultForTests(point);
    const Status st = svc.Synthesize(other);
    ASSERT_FALSE(st.ok()) << "fault point " << static_cast<int>(point);
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    // Identical serving state: same snapshot object (not merely equal
    // content), same store/pool objects, same result, same health.
    EXPECT_EQ(svc.AcquireSnapshot().get(), before_snap.get());
    EXPECT_EQ(&svc.store(), before_store);
    EXPECT_EQ(svc.shared_pool().get(), before_pool);
    EXPECT_EQ(ServiceCanonical(svc), before_canonical);
    ExpectHealthEq(svc.health(), before_health);
  }

  // The service is not wedged: the corpus binding still points at `good`,
  // so a warm resynthesize serves the same mappings.
  ASSERT_TRUE(svc.Resynthesize(ServingOptions()).ok());
  EXPECT_EQ(ServiceCanonical(svc), before_canonical);
}

TEST(ServingFailClosedTest, FailedResynthesizeRollsBackOptions) {
  Rng rng(203);
  auto specs = SmallCorpusSpec(rng, 10);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());

  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  const auto before_canonical = ServiceCanonical(svc);
  const auto before_snap = svc.AcquireSnapshot();

  SynthesisOptions tightened = ServingOptions();
  tightened.min_pairs = 3;  // downstream-only change: re-partitions/resolves

  svc.InjectFaultForTests(ServingFault::kResolve);
  ASSERT_FALSE(svc.Resynthesize(tightened).ok());
  // Fail-closed including configuration: the session still reports the
  // options the served artifacts were built under.
  EXPECT_EQ(svc.AcquireSnapshot().get(), before_snap.get());
  EXPECT_EQ(ServiceCanonical(svc), before_canonical);

  // The retry must actually re-run the changed stages. If the failed call
  // had left `tightened` installed, this diff would be a no-op and serve
  // the stale generation as if rebuilt.
  ASSERT_TRUE(svc.Resynthesize(tightened).ok());
  TableCorpus cold_corpus;
  AddSpecs(&cold_corpus, specs, 0, specs.size());
  MappingService cold(tightened);
  ASSERT_TRUE(cold.Synthesize(cold_corpus).ok());
  EXPECT_EQ(ServiceCanonical(svc), ServiceCanonical(cold));
}

// ======================================================= ServingHealthTest

/// Builds a rotation dir whose newest generation is corrupt, so a recovery
/// walk records a skip + quarantine (degraded health).
void BuildDegradedRotationDir(const std::string& dir,
                              const std::vector<TableSpec>& specs) {
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService writer(ServingOptions());
  ASSERT_TRUE(writer.Synthesize(corpus).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());
  ASSERT_TRUE(writer.SaveSnapshotRotating(dir).ok());
  const std::string newest = dir + "/" + persist::SnapshotFileName(2);
  FlipByte(newest, ReadFileBytes(newest).size() / 2);
}

TEST(ServingHealthTest, NonRotatingTransitionsResetRotationBookkeeping) {
  const std::string dir = FreshDir("serving_health_reset");
  Rng rng(301);
  auto specs = SmallCorpusSpec(rng, 8);
  BuildDegradedRotationDir(dir, specs);

  // A plain snapshot to open and a mappings TSV to bootstrap from.
  const std::string plain_snap = ScratchRoot() + "/serving_health_plain.mssnap";
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  {
    MappingService writer(ServingOptions());
    ASSERT_TRUE(writer.Synthesize(corpus).ok());
    ASSERT_TRUE(writer.SaveSnapshot(plain_snap).ok());
  }

  // Degrade, then check that each non-rotating transition resets the walk
  // record (ISSUE satellite 2: these used to leave health() degraded on a
  // healthy service).
  {
    MappingService svc(ServingOptions());
    ASSERT_TRUE(svc.OpenLatestSnapshot(dir).ok());
    ASSERT_TRUE(svc.health().degraded());  // walked past the corrupt gen 2
    EXPECT_EQ(svc.health().generation_served, 1u);
    ASSERT_TRUE(svc.OpenFromSnapshot(plain_snap).ok());
    const ServiceHealth h = svc.health();
    EXPECT_EQ(h.generation_served, 0u);
    EXPECT_EQ(h.generations_skipped, 0u);
    EXPECT_TRUE(h.quarantined_files.empty());
    EXPECT_FALSE(h.degraded());
  }
  // The first walk quarantined gen 2; re-corrupt for each fresh scenario.
  {
    const std::string dir2 = FreshDir("serving_health_reset_syn");
    BuildDegradedRotationDir(dir2, specs);
    MappingService svc(ServingOptions());
    ASSERT_TRUE(svc.OpenLatestSnapshot(dir2).ok());
    ASSERT_TRUE(svc.health().degraded());
    ASSERT_TRUE(svc.Synthesize(corpus).ok());
    EXPECT_FALSE(svc.health().degraded());
    EXPECT_EQ(svc.health().generation_served, 0u);
  }
  {
    const std::string dir3 = FreshDir("serving_health_reset_tsv");
    BuildDegradedRotationDir(dir3, specs);
    const std::string mappings_tsv =
        ScratchRoot() + "/serving_health_mappings.tsv";
    {
      MappingService writer(ServingOptions());
      ASSERT_TRUE(writer.Synthesize(corpus).ok());
      ASSERT_TRUE(persist::SaveMappingsTsv(writer.last_result().mappings,
                                           *writer.shared_pool(), mappings_tsv)
                      .ok());
    }
    MappingService svc(ServingOptions());
    ASSERT_TRUE(svc.OpenLatestSnapshot(dir3).ok());
    ASSERT_TRUE(svc.health().degraded());
    const Status st = svc.OpenFromMappingsFile(mappings_tsv);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_FALSE(svc.health().degraded());
    std::remove(mappings_tsv.c_str());
  }
  std::remove(plain_snap.c_str());
}

TEST(ServingHealthTest, AppendAndResynthesizeResetDegradedWalkRecord) {
  // A failed recovery walk records skips/quarantines while the service
  // keeps serving its previous state WITH its corpus — the degraded-but-
  // serving shape. A successful append or resynthesize then proves fresh
  // state and must clear the record.
  Rng rng(302);
  auto specs = SmallCorpusSpec(rng, 10);
  // All generations corrupt: the walk fails (and quarantines everything, so
  // each degradation scenario needs its own directory), recording 2 skips
  // while the previous serving state — including the corpus binding —
  // survives.
  auto degrade_all = [&](const std::string& name) {
    const std::string dir = FreshDir(name);
    TableCorpus corpus;
    AddSpecs(&corpus, specs, 0, 6);
    MappingService writer(ServingOptions());
    EXPECT_TRUE(writer.Synthesize(corpus).ok());
    EXPECT_TRUE(writer.SaveSnapshotRotating(dir).ok());
    EXPECT_TRUE(writer.SaveSnapshotRotating(dir).ok());
    for (uint64_t g = 1; g <= 2; ++g) {
      const std::string path = dir + "/" + persist::SnapshotFileName(g);
      FlipByte(path, ReadFileBytes(path).size() / 2);
    }
    return dir;
  };

  TableCorpus base;
  AddSpecs(&base, specs, 0, 6);
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(base).ok());
  ASSERT_FALSE(svc.OpenLatestSnapshot(degrade_all("serving_hlth_app1")).ok());
  ASSERT_TRUE(svc.health().degraded());  // the failed walk is recorded

  // External-corpus service: grow in place, then resynthesize the tail.
  AddSpecs(&base, specs, 6, 8);
  ASSERT_TRUE(svc.ResynthesizeAppended().ok());
  EXPECT_FALSE(svc.health().degraded());

  ASSERT_FALSE(svc.OpenLatestSnapshot(degrade_all("serving_hlth_app2")).ok());
  ASSERT_TRUE(svc.health().degraded());
  ASSERT_TRUE(svc.Resynthesize(ServingOptions()).ok());
  EXPECT_FALSE(svc.health().degraded());
}

TEST(ServingHealthTest, RotatingSaveClearsSkipQuarantineRecord) {
  const std::string dir = FreshDir("serving_health_rotsave");
  Rng rng(303);
  auto specs = SmallCorpusSpec(rng, 8);
  BuildDegradedRotationDir(dir, specs);

  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.OpenLatestSnapshot(dir).ok());
  const ServiceHealth degraded = svc.health();
  ASSERT_TRUE(degraded.degraded());
  EXPECT_EQ(degraded.generation_served, 1u);
  EXPECT_EQ(degraded.generations_skipped, 1u);

  // A successful rotating save commits a new durable generation: served
  // generation advances, the old walk's skip/quarantine record clears
  // (ISSUE satellite 2: it used to stick forever).
  ASSERT_TRUE(svc.SaveSnapshotRotating(dir).ok());
  const ServiceHealth after = svc.health();
  EXPECT_EQ(after.generation_served, 3u);  // gens 1,2 existed (2 corrupt)
  EXPECT_EQ(after.generations_skipped, 0u);
  EXPECT_TRUE(after.quarantined_files.empty());
  EXPECT_FALSE(after.degraded());
}

// ================================================ ServingAppendRecoveryTest

/// ISSUE satellite 3: a failed AppendAndResynthesize used to leave the
/// owned corpus grown past the synthesized prefix, turning every retry
/// into "corpus already grew" FailedPrecondition. The append protocol now
/// rolls the merge back, so the same delta simply retries.
TEST(ServingAppendRecoveryTest, FailedAppendRollsBackTheMergeAndRetries) {
  Rng rng(401);
  auto specs = SmallCorpusSpec(rng, 12);
  const std::string tsv = ScratchRoot() + "/serving_append_recovery.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 8);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }

  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());  // service-owned corpus
  const auto before_snap = svc.AcquireSnapshot();
  const auto before_canonical = ServiceCanonical(svc);

  TableCorpus delta;
  AddSpecs(&delta, specs, 8, 12);

  // Fail after the session append succeeded (the corpus merge has already
  // happened) — the worst spot: without rollback the corpus is grown and
  // the artifacts are not.
  svc.InjectFaultForTests(ServingFault::kAppendCommit);
  const Status st = svc.AppendAndResynthesize(delta);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(svc.AcquireSnapshot().get(), before_snap.get());
  EXPECT_EQ(ServiceCanonical(svc), before_canonical);

  // The retry with the SAME delta must work (this is the regression: it
  // used to FailedPrecondition forever).
  ASSERT_TRUE(svc.AppendAndResynthesize(delta).ok());

  // And the recovered append serves exactly what a cold rebuild over the
  // grown corpus serves.
  TableCorpus cold_corpus;
  AddSpecs(&cold_corpus, specs, 0, 12);
  MappingService cold(ServingOptions());
  ASSERT_TRUE(cold.Synthesize(cold_corpus).ok());
  EXPECT_EQ(ServiceCanonical(svc), ServiceCanonical(cold));
  std::remove(tsv.c_str());
}

TEST(ServingAppendRecoveryTest, PublishFaultAlsoRollsBackTheMerge) {
  Rng rng(402);
  auto specs = SmallCorpusSpec(rng, 10);
  const std::string tsv = ScratchRoot() + "/serving_append_publish.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 7);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());
  TableCorpus delta;
  AddSpecs(&delta, specs, 7, 10);

  svc.InjectFaultForTests(ServingFault::kPublish);
  ASSERT_FALSE(svc.AppendAndResynthesize(delta).ok());
  // Recoverable: the merge rolled back, so the append retries clean.
  ASSERT_TRUE(svc.AppendAndResynthesize(delta).ok());

  TableCorpus cold_corpus;
  AddSpecs(&cold_corpus, specs, 0, 10);
  MappingService cold(ServingOptions());
  ASSERT_TRUE(cold.Synthesize(cold_corpus).ok());
  EXPECT_EQ(ServiceCanonical(svc), ServiceCanonical(cold));
  std::remove(tsv.c_str());
}

TEST(ServingAppendRecoveryTest, FailedRetriesHoldThePoolSizeConstant) {
  // Regression: the append rollback truncated the corpus TABLES back to the
  // synthesized prefix but left the delta's freshly interned strings in the
  // pool — N failed retries pinned N orphaned copies of every delta value.
  Rng rng(403);
  auto specs = SmallCorpusSpec(rng, 8);
  const std::string tsv = ScratchRoot() + "/serving_append_poolleak.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 8);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());

  // A delta of values the base corpus has never interned, so every merge
  // genuinely grows the pool.
  TableCorpus delta;
  {
    std::vector<std::string> l, r;
    for (int i = 0; i < 6; ++i) {
      l.push_back("leak probe entity " + std::to_string(i));
      r.push_back("leakcode" + std::to_string(i % 2));
    }
    delta.AddFromStrings("domain9.example", TableSource::kWeb,
                         {"name", "code"}, {{l}, {r}});
  }

  const size_t pool_before = svc.shared_pool()->size();
  for (int attempt = 0; attempt < 5; ++attempt) {
    svc.InjectFaultForTests(ServingFault::kAppendCommit);
    ASSERT_FALSE(svc.AppendAndResynthesize(delta).ok());
    // Identity, not monotonicity: the pool must be at EXACTLY the
    // pre-append size after every failed attempt.
    EXPECT_EQ(pool_before, svc.shared_pool()->size())
        << "failed append attempt " << attempt << " leaked pool entries";
  }
  // The values really were new: a successful append grows the pool.
  ASSERT_TRUE(svc.AppendAndResynthesize(delta).ok());
  EXPECT_GT(svc.shared_pool()->size(), pool_before);
  std::remove(tsv.c_str());
}

// ===================================================== ServingMutationTest

/// Cold-rebuild oracle over `specs` minus `removed_specs` plus the tables
/// of `extra` (nullptr for removals).
std::multiset<std::string> ColdOracle(const std::vector<TableSpec>& specs,
                                      const std::set<size_t>& removed_specs,
                                      const TableCorpus* extra) {
  TableCorpus corpus;
  for (size_t i = 0; i < specs.size(); ++i) {
    if (removed_specs.count(i) != 0) continue;
    AddSpecs(&corpus, specs, i, i + 1);
  }
  if (extra != nullptr) {
    EXPECT_TRUE(corpus.AppendFrom(*extra).ok());
  }
  MappingService cold(ServingOptions());
  EXPECT_TRUE(cold.Synthesize(corpus).ok());
  return ServiceCanonical(cold);
}

TEST(ServingMutationTest, RemoveAndResynthesizeMatchesColdRebuild) {
  Rng rng(404);
  auto specs = SmallCorpusSpec(rng, 12);
  const std::string tsv = ScratchRoot() + "/serving_remove.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 12);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());
  const uint64_t version_before = svc.AcquireSnapshot()->version;

  ASSERT_TRUE(svc.RemoveAndResynthesize({2, 5, 9}).ok());
  EXPECT_GT(svc.AcquireSnapshot()->version, version_before);
  EXPECT_EQ(ServiceCanonical(svc), ColdOracle(specs, {2, 5, 9}, nullptr));

  // Removing an already tombstoned table is a no-op contribution, and the
  // service keeps serving.
  ASSERT_TRUE(svc.RemoveAndResynthesize({2}).ok());
  EXPECT_EQ(ServiceCanonical(svc), ColdOracle(specs, {2, 5, 9}, nullptr));
  std::remove(tsv.c_str());
}

TEST(ServingMutationTest, ReplaceAndResynthesizeMatchesColdRebuild) {
  Rng rng(405);
  auto specs = SmallCorpusSpec(rng, 14);
  const std::string tsv = ScratchRoot() + "/serving_replace.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 10);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());

  TableCorpus delta;
  AddSpecs(&delta, specs, 10, 14);
  ASSERT_TRUE(svc.ReplaceAndResynthesize({1, 3}, delta).ok());
  EXPECT_EQ(ServiceCanonical(svc), ColdOracle(specs, {1, 3, 10, 11, 12, 13},
                                              &delta));
  std::remove(tsv.c_str());
}

TEST(ServingMutationTest, FailedMutationsRollBackAndRetry) {
  Rng rng(406);
  auto specs = SmallCorpusSpec(rng, 14);
  const std::string tsv = ScratchRoot() + "/serving_mutation_recovery.tsv";
  {
    TableCorpus base;
    AddSpecs(&base, specs, 0, 10);
    ASSERT_TRUE(SaveCorpus(base, tsv).ok());
  }
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.SynthesizeFromFile(tsv).ok());
  const auto before_snap = svc.AcquireSnapshot();
  const auto before_canonical = ServiceCanonical(svc);
  const size_t pool_before = svc.shared_pool()->size();

  TableCorpus delta;
  AddSpecs(&delta, specs, 10, 14);

  // Fail AFTER the session mutation succeeded (tables tombstoned, delta
  // merged): the service must restore the columns and the pool tail so the
  // exact same call can be retried.
  for (int attempt = 0; attempt < 3; ++attempt) {
    svc.InjectFaultForTests(ServingFault::kAppendCommit);
    const Status st = svc.ReplaceAndResynthesize({0, 4}, delta);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_EQ(svc.AcquireSnapshot().get(), before_snap.get());
    EXPECT_EQ(ServiceCanonical(svc), before_canonical);
    EXPECT_EQ(pool_before, svc.shared_pool()->size())
        << "failed replace attempt " << attempt << " leaked pool entries";
  }
  // A publish-point failure exercises the other rollback call site.
  svc.InjectFaultForTests(ServingFault::kPublish);
  ASSERT_FALSE(svc.RemoveAndResynthesize({0}).ok());
  EXPECT_EQ(ServiceCanonical(svc), before_canonical);

  // Retries with the same arguments succeed and match the cold oracle —
  // proof the tombstoned columns really came back intact.
  ASSERT_TRUE(svc.ReplaceAndResynthesize({0, 4}, delta).ok());
  EXPECT_EQ(ServiceCanonical(svc), ColdOracle(specs, {0, 4, 10, 11, 12, 13},
                                              &delta));
  std::remove(tsv.c_str());
}

TEST(ServingMutationTest, MutationsRequireAnOwnedCorpus) {
  MappingService empty(ServingOptions());
  EXPECT_EQ(empty.RemoveAndResynthesize({0}).code(),
            StatusCode::kFailedPrecondition);

  // An external (caller-owned) corpus must not be tombstoned in place.
  Rng rng(407);
  auto specs = SmallCorpusSpec(rng, 6);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, 6);
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  EXPECT_EQ(svc.RemoveAndResynthesize({1}).code(),
            StatusCode::kFailedPrecondition);
  TableCorpus delta;
  AddSpecs(&delta, specs, 4, 6);
  EXPECT_EQ(svc.ReplaceAndResynthesize({1}, delta).code(),
            StatusCode::kFailedPrecondition);
  // The rejected mutations left serving untouched.
  EXPECT_EQ(corpus.size(), 6u);
  EXPECT_EQ(ServiceCanonical(svc).size(), svc.num_mappings());
}

// ===================================================== BatchLookupTest

/// Probe material: real values from the store plus typos, junk, empties,
/// and heavy duplication — the shapes the batch dedup must get right.
std::vector<std::string> ProbeMix(Rng& rng, const ServingSnapshot& snap,
                                  size_t n) {
  const auto pairs = SnapshotPairs(snap);
  std::vector<std::string> probes;
  probes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double roll = rng.UniformDouble();
    if (pairs.empty() || roll < 0.15) {
      probes.push_back("junk value " + std::to_string(rng.Uniform(50)));
    } else if (roll < 0.2) {
      probes.push_back("");
    } else {
      const auto& p = pairs[rng.Uniform(pairs.size())];
      std::string v = rng.Bernoulli(0.5) ? p.first : p.second;
      if (rng.Bernoulli(0.2) && !v.empty()) {
        v[rng.Uniform(v.size())] = 'z';  // typo: mostly misses
      }
      if (rng.Bernoulli(0.3)) v += "  ";  // normalization food
      probes.push_back(std::move(v));
    }
  }
  // Duplicate a prefix slice to force the dedup path to fan out.
  for (size_t i = 0; i + 1 < probes.size() / 2; i += 3) {
    probes[probes.size() - 1 - i] = probes[i];
  }
  return probes;
}

TEST(BatchLookupTest, BatchedLookupsMatchScalarOracle) {
  Rng rng(501);
  auto specs = SmallCorpusSpec(rng, 12);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  const auto snap = svc.AcquireSnapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_GT(snap->store->size(), 0u);
  const MappingStore& store = *snap->store;

  for (size_t round = 0; round < 20; ++round) {
    const size_t mi = rng.Uniform(store.size());
    const auto probes = ProbeMix(rng, *snap, 1 + rng.Uniform(40));

    const auto sides = store.ProbeBatch(mi, probes);
    const auto rights = store.LookupRightBatch(mi, probes);
    const auto lefts = store.LookupLeftBatch(mi, probes);
    const auto svc_right =
        svc.LookupBatch(mi, probes, LookupDirection::kLeftToRight);
    const auto svc_left =
        svc.LookupBatch(mi, probes, LookupDirection::kRightToLeft);
    ASSERT_EQ(sides.size(), probes.size());
    ASSERT_EQ(rights.size(), probes.size());
    ASSERT_EQ(lefts.size(), probes.size());
    for (size_t k = 0; k < probes.size(); ++k) {
      EXPECT_EQ(sides[k], store.Probe(mi, probes[k])) << "probe " << k;
      EXPECT_EQ(rights[k], store.LookupRight(mi, probes[k])) << "probe " << k;
      EXPECT_EQ(lefts[k], store.LookupLeft(mi, probes[k])) << "probe " << k;
      EXPECT_EQ(svc_right[k], rights[k]) << "probe " << k;
      EXPECT_EQ(svc_left[k], lefts[k]) << "probe " << k;
    }
  }

  // Degenerate shapes.
  EXPECT_TRUE(store.ProbeBatch(0, {}).empty());
  EXPECT_TRUE(store.LookupRightBatch(0, {}).empty());
  const auto out_of_range = svc.LookupBatch(store.size() + 5, {"x", "y"});
  ASSERT_EQ(out_of_range.size(), 2u);
  EXPECT_FALSE(out_of_range[0].has_value());
}

// ==================================================== ShardedStoreTest

TEST(ShardedStoreTest, ShardedContainmentMatchesScanOracle) {
  Rng rng(601);
  auto specs = SmallCorpusSpec(rng, 12);
  TableCorpus corpus;
  AddSpecs(&corpus, specs, 0, specs.size());
  MappingService svc(ServingOptions());
  ASSERT_TRUE(svc.Synthesize(corpus).ok());
  const auto snap = svc.AcquireSnapshot();
  ASSERT_GT(snap->store->size(), 0u);

  // Same mappings, one scan store and several sharded ones.
  auto build = [&](size_t shards) {
    auto store = std::make_unique<MappingStore>(
        snap->pool, SynthesisOptions{}.extraction.normalize, shards);
    for (const auto& m : snap->result->mappings) {
      store->Add(m, m.left_label + "->" + m.right_label);
    }
    return store;
  };
  const auto scan = build(0);
  for (const size_t shards : {1u, 4u, 13u}) {
    const auto sharded = build(shards);
    EXPECT_EQ(sharded->containment_index_shards(), shards);
    for (size_t round = 0; round < 30; ++round) {
      const auto probes = ProbeMix(rng, *snap, 1 + rng.Uniform(30));
      const size_t min_hits = rng.Uniform(4);
      const auto a = scan->FindByContainment(probes, min_hits);
      const auto b = sharded->FindByContainment(probes, min_hits);
      ASSERT_EQ(a.size(), b.size())
          << "shards=" << shards << " min_hits=" << min_hits;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index) << "match " << i;
        EXPECT_EQ(a[i].left_hits, b[i].left_hits) << "match " << i;
        EXPECT_EQ(a[i].right_hits, b[i].right_hits) << "match " << i;
      }
    }
  }
}

TEST(ShardedStoreTest, ServiceLevelShardingKeepsAppResultsIdentical) {
  Rng rng(602);
  auto specs = SmallCorpusSpec(rng, 12);
  TableCorpus corpus_a, corpus_b;
  AddSpecs(&corpus_a, specs, 0, specs.size());
  AddSpecs(&corpus_b, specs, 0, specs.size());

  MappingService plain(ServingOptions());
  ASSERT_TRUE(plain.Synthesize(corpus_a).ok());
  MappingService sharded(ServingOptions());
  sharded.set_containment_index_shards(8);
  ASSERT_TRUE(sharded.Synthesize(corpus_b).ok());
  ASSERT_EQ(sharded.store().containment_index_shards(), 8u);
  ASSERT_EQ(plain.num_mappings(), sharded.num_mappings());

  const auto snap = plain.AcquireSnapshot();
  for (size_t round = 0; round < 10; ++round) {
    const auto column = ProbeMix(rng, *snap, 12);
    const auto ca = plain.SuggestCorrections(column);
    const auto cb = sharded.SuggestCorrections(column);
    EXPECT_EQ(ca.mapping_index, cb.mapping_index);
    EXPECT_EQ(ca.suggestions.size(), cb.suggestions.size());

    const auto keys = ProbeMix(rng, *snap, 10);
    const auto rights = ProbeMix(rng, *snap, 10);
    const auto ja = plain.AutoJoin(keys, rights);
    const auto jb = sharded.AutoJoin(keys, rights);
    EXPECT_EQ(ja.mapping_index, jb.mapping_index);
    EXPECT_EQ(ja.pairs.size(), jb.pairs.size());
  }
}

}  // namespace
}  // namespace ms
