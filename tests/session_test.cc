// Tests for the staged SynthesisSession API: staged runs must be
// byte-identical to the monolithic pipeline, warm re-runs must provably
// skip the upstream stages (asserted via session stage counters), malformed
// options must be rejected with Status::InvalidArgument instead of
// undefined behavior, artifact lineage misuse must fail with
// FailedPrecondition, and corpus-file failures must propagate.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "apps/serving.h"
#include "corpusgen/builtin_domains.h"
#include "corpusgen/generator.h"
#include "synth/pipeline.h"
#include "synth/session.h"
#include "table/tsv.h"

namespace ms {
namespace {

GeneratedWorld SmallWorld(uint64_t seed = 7) {
  auto all = BuiltinWebRelationships();
  std::vector<RelationshipSpec> specs;
  for (auto& s : all) {
    if (s.name == "country_iso3" || s.name == "country_ioc" ||
        s.name == "state_abbrev" || s.name == "element_symbol") {
      s.popularity = 12;
      specs.push_back(std::move(s));
    }
  }
  GeneratorOptions opts;
  opts.seed = seed;
  opts.noise_table_fraction = 0.2;
  return GenerateWorld(std::move(specs), opts);
}

SynthesisOptions FastOptions() {
  SynthesisOptions o;
  o.num_threads = 4;
  o.min_domains = 2;
  return o;
}

/// Canonical view of a mapping set: partition ids (and hence vector order)
/// depend on thread scheduling, so compare as a sorted multiset of
/// (labels, member count, exact pair list).
std::multiset<std::string> CanonicalMappings(const SynthesisResult& r,
                                             const StringPool& pool) {
  std::multiset<std::string> out;
  for (const auto& m : r.mappings) {
    std::string key = m.left_label + "\x1f" + m.right_label + "\x1f" +
                      std::to_string(m.kept_tables.size()) + "\x1f";
    for (const auto& p : m.merged.pairs()) {
      key += std::string(pool.Get(p.left)) + "\x1e" +
             std::string(pool.Get(p.right)) + "\x1f";
    }
    out.insert(std::move(key));
  }
  return out;
}

// ------------------------------------------------------- staged equivalence

TEST(SessionStagedTest, StagedRunMatchesMonolithicByteIdentically) {
  GeneratedWorld world = SmallWorld(41);
  const StringPool& pool = world.corpus.pool();

  // Monolithic: the legacy wrapper.
  SynthesisResult mono = SynthesisPipeline(FastOptions()).Run(world.corpus);

  // Staged: every stage explicit.
  SynthesisSession session(FastOptions());
  ASSERT_TRUE(session.status().ok());
  auto cands = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok()) << cands.status().ToString();
  auto blocked = session.BlockPairs(cands.value());
  ASSERT_TRUE(blocked.ok());
  auto graph = session.ScorePairs(cands.value(), blocked.value());
  ASSERT_TRUE(graph.ok());
  auto parts = session.Partition(graph.value());
  ASSERT_TRUE(parts.ok());
  auto staged = session.Resolve(cands.value(), graph.value(), parts.value());
  ASSERT_TRUE(staged.ok());

  ASSERT_EQ(mono.mappings.size(), staged.value().mappings.size());
  EXPECT_EQ(CanonicalMappings(mono, pool),
            CanonicalMappings(staged.value(), pool));
  EXPECT_EQ(mono.stats.candidate_pairs, staged.value().stats.candidate_pairs);
  EXPECT_EQ(mono.stats.graph_edges, staged.value().stats.graph_edges);
  EXPECT_EQ(mono.stats.partitions, staged.value().stats.partitions);
  EXPECT_EQ(mono.stats.candidates, staged.value().stats.candidates);
}

TEST(SessionStagedTest, WarmRescoreSkipsExtractionAndBlocking) {
  GeneratedWorld world = SmallWorld(43);
  const StringPool& pool = world.corpus.pool();

  SynthesisSession session(FastOptions());
  auto cands = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok());
  auto blocked = session.BlockPairs(cands.value());
  ASSERT_TRUE(blocked.ok());
  auto first = session.FinishFromBlocked(cands.value(), blocked.value());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(session.session_stats().extract_runs, 1u);
  EXPECT_EQ(session.session_stats().blocking_runs, 1u);
  EXPECT_EQ(session.session_stats().scoring_runs, 1u);

  // Change scoring options; re-run from the blocked artifact.
  SynthesisOptions tweaked = FastOptions();
  tweaked.compat.edit.cap = 4;
  ASSERT_TRUE(session.UpdateOptions(tweaked).ok());
  auto warm = session.FinishFromBlocked(cands.value(), blocked.value());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // The counters prove extraction + blocking did not re-run.
  EXPECT_EQ(session.session_stats().extract_runs, 1u);
  EXPECT_EQ(session.session_stats().blocking_runs, 1u);
  EXPECT_EQ(session.session_stats().scoring_runs, 2u);
  // cap change keeps edit.fractional, so matcher caches stayed warm.
  EXPECT_EQ(session.session_stats().warm_scoring_runs, 1u);

  // Warm result must be byte-identical to a cold run under the same
  // options (warm state is a speed lever, never a results lever).
  SynthesisResult cold = SynthesisPipeline(tweaked).Run(world.corpus);
  EXPECT_EQ(CanonicalMappings(cold, pool),
            CanonicalMappings(warm.value(), pool));
}

TEST(SessionStagedTest, RepeatedScoringIsDeterministic) {
  // Warm per-worker matcher caches must not perturb scores: score the same
  // artifacts twice and compare graphs bitwise.
  GeneratedWorld world = SmallWorld(47);
  SynthesisSession session(FastOptions());
  auto cands = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok());
  auto blocked = session.BlockPairs(cands.value());
  ASSERT_TRUE(blocked.ok());
  auto g1 = session.ScorePairs(cands.value(), blocked.value());
  auto g2 = session.ScorePairs(cands.value(), blocked.value());
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g1.value().graph.num_edges(), g2.value().graph.num_edges());
  for (size_t e = 0; e < g1.value().graph.edges().size(); ++e) {
    const auto& e1 = g1.value().graph.edges()[e];
    const auto& e2 = g2.value().graph.edges()[e];
    EXPECT_EQ(e1.u, e2.u);
    EXPECT_EQ(e1.v, e2.v);
    EXPECT_EQ(e1.w_pos, e2.w_pos);  // bitwise
    EXPECT_EQ(e1.w_neg, e2.w_neg);
  }
  EXPECT_EQ(session.session_stats().warm_scoring_runs, 1u);
}

// ----------------------------------------------------------- Validate()

TEST(SessionValidateTest, RejectsMalformedOptions) {
  struct Case {
    const char* what;
    SynthesisOptions opts;
  };
  std::vector<Case> cases;
  {
    SynthesisOptions o;
    o.min_pairs = 0;
    cases.push_back({"min_pairs == 0", o});
  }
  {
    SynthesisOptions o;
    o.min_domains = 0;
    cases.push_back({"min_domains == 0", o});
  }
  {
    SynthesisOptions o;
    o.num_threads = static_cast<size_t>(-1);  // classic underflow
    cases.push_back({"num_threads overflow", o});
  }
  {
    SynthesisOptions o;
    o.compat.edit.fractional = -0.2;
    cases.push_back({"negative f_ed", o});
  }
  {
    SynthesisOptions o;
    o.compat.edit.fractional = 1.0;
    cases.push_back({"f_ed >= 1", o});
  }
  {
    SynthesisOptions o;
    o.compat.edit.fractional = std::nan("");
    cases.push_back({"NaN f_ed", o});
  }
  {
    SynthesisOptions o;
    o.blocking.theta_overlap = 0;
    cases.push_back({"theta_overlap == 0", o});
  }
  {
    SynthesisOptions o;
    o.blocking.max_posting = 1;
    cases.push_back({"max_posting < 2", o});
  }
  {
    SynthesisOptions o;
    o.extraction.fd_theta = 0.0;
    cases.push_back({"fd_theta == 0", o});
  }
  {
    SynthesisOptions o;
    o.extraction.fd_theta = 1.5;
    cases.push_back({"fd_theta > 1", o});
  }
  {
    SynthesisOptions o;
    o.extraction.min_pairs = 0;
    cases.push_back({"extraction.min_pairs == 0", o});
  }
  {
    SynthesisOptions o;
    o.partitioner.tau = 0.5;
    cases.push_back({"tau > 0", o});
  }
  {
    SynthesisOptions o;
    o.partitioner.tau = -2.0;
    cases.push_back({"tau < -1", o});
  }
  {
    SynthesisOptions o;
    o.partitioner.theta_edge = 1.5;
    cases.push_back({"theta_edge > 1", o});
  }
  for (const auto& c : cases) {
    Status st = c.opts.Validate();
    EXPECT_FALSE(st.ok()) << c.what;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << c.what;
    // A session constructed with bad options refuses to run every stage.
    SynthesisSession session(c.opts);
    EXPECT_FALSE(session.status().ok()) << c.what;
    GeneratedWorld world = SmallWorld(3);
    auto r = session.ExtractCandidates(world.corpus);
    EXPECT_FALSE(r.ok()) << c.what;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << c.what;
  }
}

TEST(SessionValidateTest, AcceptsDefaultsAndBoundaryValues) {
  EXPECT_TRUE(SynthesisOptions{}.Validate().ok());
  SynthesisOptions o;
  o.compat.edit.fractional = 0.0;   // exact matching only: legal
  o.partitioner.tau = 0.0;          // most permissive constraint: legal
  o.partitioner.theta_edge = 1.0;   // hardest edge floor: legal
  o.extraction.fd_theta = 1.0;      // exact FDs only: legal
  EXPECT_TRUE(o.Validate().ok()) << o.Validate().ToString();
}

TEST(SessionValidateTest, UpdateOptionsRejectsAndKeepsOldConfig) {
  SynthesisSession session(FastOptions());
  SynthesisOptions bad = FastOptions();
  bad.min_pairs = 0;
  Status st = session.UpdateOptions(bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Old (valid) options survive; the session still runs.
  EXPECT_TRUE(session.status().ok());
  EXPECT_EQ(session.options().min_pairs, FastOptions().min_pairs);
  GeneratedWorld world = SmallWorld(5);
  EXPECT_TRUE(session.Run(world.corpus).ok());
}

// ------------------------------------------------------- artifact lineage

TEST(SessionLineageTest, MixedArtifactsAreRejected) {
  GeneratedWorld world = SmallWorld(53);
  SynthesisSession session(FastOptions());
  auto c1 = session.ExtractCandidates(world.corpus);
  auto c2 = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto b1 = session.BlockPairs(c1.value());
  ASSERT_TRUE(b1.ok());
  // Blocked pairs of candidate set 1 scored against candidate set 2: the
  // ids would silently index the wrong tables without the lineage check.
  auto crossed = session.ScorePairs(c2.value(), b1.value());
  EXPECT_FALSE(crossed.ok());
  EXPECT_EQ(crossed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionLineageTest, ForeignCandidateSetRejectedEvenWithMatchingIds) {
  // Artifact ids count from 1 per session, so a CandidateSet from another
  // session can carry the id ScorePairs expects; the session check must
  // still reject it (the blocked pairs index a different table vector).
  GeneratedWorld world = SmallWorld(57);
  SynthesisSession a(FastOptions());
  SynthesisSession b(FastOptions());
  auto ca = a.ExtractCandidates(world.corpus);
  auto cb = b.ExtractCandidates(world.corpus);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  ASSERT_EQ(ca.value().artifact_id, cb.value().artifact_id);
  auto blocked = a.BlockPairs(ca.value());
  ASSERT_TRUE(blocked.ok());
  auto crossed = a.ScorePairs(cb.value(), blocked.value());
  EXPECT_FALSE(crossed.ok());
  EXPECT_EQ(crossed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionLineageTest, PartitionsFromAnotherGraphAreRejected) {
  // Two graphs scored from the same candidates under different options
  // share candidates_id; Resolve must still refuse to pair one graph with
  // the other's partitions.
  GeneratedWorld world = SmallWorld(63);
  SynthesisSession session(FastOptions());
  auto cands = session.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok());
  auto blocked = session.BlockPairs(cands.value());
  ASSERT_TRUE(blocked.ok());
  auto g1 = session.ScorePairs(cands.value(), blocked.value());
  ASSERT_TRUE(g1.ok());
  auto parts1 = session.Partition(g1.value());
  ASSERT_TRUE(parts1.ok());
  SynthesisOptions tweaked = FastOptions();
  tweaked.compat.edit.cap = 4;
  ASSERT_TRUE(session.UpdateOptions(tweaked).ok());
  auto g2 = session.ScorePairs(cands.value(), blocked.value());
  ASSERT_TRUE(g2.ok());
  auto mixed = session.Resolve(cands.value(), g2.value(), parts1.value());
  EXPECT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kFailedPrecondition);
  // The matching graph still resolves.
  auto ok = session.Resolve(cands.value(), g1.value(), parts1.value());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(SessionLineageTest, ForeignSessionArtifactsAreRejected) {
  GeneratedWorld world = SmallWorld(59);
  SynthesisSession a(FastOptions());
  SynthesisSession b(FastOptions());
  auto cands = a.ExtractCandidates(world.corpus);
  ASSERT_TRUE(cands.ok());
  auto blocked = b.BlockPairs(cands.value());
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionLineageTest, AdoptRejectsNonDenseIds) {
  StringPool pool;
  std::vector<BinaryTable> cands;
  BinaryTable t = BinaryTable::FromPairs(
      {{pool.Intern("a"), pool.Intern("b")}});
  t.id = 7;  // not dense
  cands.push_back(std::move(t));
  SynthesisSession session(FastOptions());
  auto r = session.AdoptCandidates(cands, pool);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- corpus-file propagation

TEST(SessionCorpusFileTest, CorruptTsvPropagatesStatus) {
  const std::string path = "/tmp/ms_session_corrupt.tsv";
  {
    std::ofstream out(path);
    out << "this is not a #table header\nname1\tname2\n";
  }
  SynthesisSession session(FastOptions());
  TableCorpus corpus;
  auto r = session.RunOnCorpusFile(path, &corpus);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SessionCorpusFileTest, MissingFileIsNotFound) {
  SynthesisSession session(FastOptions());
  TableCorpus corpus;
  auto r = session.RunOnCorpusFile("/tmp/ms_no_such_corpus.tsv", &corpus);
  EXPECT_FALSE(r.ok());
  // The env layer distinguishes a missing file (NotFound) from an IO
  // failure on an existing one (IOError) — recovery walks rely on it.
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find("/tmp/ms_no_such_corpus.tsv"),
            std::string::npos)
      << r.status().ToString();
}

TEST(SessionCorpusFileTest, ValidFileRoundTrips) {
  GeneratedWorld world = SmallWorld(61);
  const std::string path = "/tmp/ms_session_roundtrip.tsv";
  ASSERT_TRUE(SaveCorpus(world.corpus, path).ok());
  SynthesisSession session(FastOptions());
  TableCorpus corpus;
  auto r = session.RunOnCorpusFile(path, &corpus);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().mappings.empty());
  std::remove(path.c_str());
}

// --------------------------------------------------- synonym snapshot

TEST(SessionSnapshotTest, SnapshotMatchesDictionaryAndRefreshesOnChange) {
  auto pool = std::make_shared<StringPool>();
  SynonymDictionary dict(pool);
  dict.AddSynonym("usa", "united states");
  dict.AddSynonym("usa", "u.s.a.");
  dict.AddSynonym("uk", "united kingdom");

  SynonymSnapshot snap = dict.Snapshot();
  EXPECT_EQ(snap.source_version(), dict.version());
  auto check = [&](std::string_view x, std::string_view y) {
    ValueId a = pool->Find(x);
    ValueId b = pool->Find(y);
    ASSERT_NE(a, kInvalidValueId);
    ASSERT_NE(b, kInvalidValueId);
    EXPECT_EQ(snap.AreSynonyms(a, b), dict.AreSynonyms(a, b))
        << x << " / " << y;
  };
  check("usa", "united states");
  check("united states", "u.s.a.");
  check("usa", "uk");
  check("uk", "united kingdom");
  // Unknown-to-snapshot values are their own class.
  ValueId fresh = pool->Intern("france");
  EXPECT_FALSE(snap.AreSynonyms(fresh, pool->Find("usa")));
  EXPECT_TRUE(snap.AreSynonyms(fresh, fresh));

  // Mutation bumps the version; a stale snapshot is detectable.
  const uint64_t before = dict.version();
  dict.AddSynonym("france", "republique francaise");
  EXPECT_GT(dict.version(), before);
  EXPECT_NE(snap.source_version(), dict.version());
}

TEST(SessionSnapshotTest, SessionRebuildsSnapshotOnlyWhenDictionaryMoves) {
  GeneratedWorld world = SmallWorld(67);
  auto pool_handle = world.corpus.shared_pool();
  SynonymDictionary dict(pool_handle);
  dict.AddSynonym("usa", "united states");

  SynthesisOptions opts = FastOptions();
  opts.compat.synonyms = &dict;
  opts.conflict.synonyms = &dict;
  SynthesisSession session(opts);
  ASSERT_TRUE(session.Run(world.corpus).ok());
  const size_t builds_after_first = session.session_stats().snapshot_rebuilds;
  EXPECT_GE(builds_after_first, 1u);

  // Unchanged dictionary: no rebuild on the next run.
  ASSERT_TRUE(session.Run(world.corpus).ok());
  EXPECT_EQ(session.session_stats().snapshot_rebuilds, builds_after_first);

  // Dictionary moved: exactly one refresh on the next scoring run.
  dict.AddSynonym("uk", "united kingdom");
  ASSERT_TRUE(session.Run(world.corpus).ok());
  EXPECT_EQ(session.session_stats().snapshot_rebuilds, builds_after_first + 1);
}

TEST(SessionSnapshotTest, SnapshotScoringMatchesDictionaryScoring) {
  // ValuesMatch through a snapshot must agree with the locked dictionary
  // path on every pair (the snapshot is the hot-path replacement).
  auto pool = std::make_shared<StringPool>();
  SynonymDictionary dict(pool);
  dict.AddSynonym("ca", "california");
  dict.AddSynonym("wa", "washington");
  std::vector<ValueId> ids;
  for (const char* s : {"ca", "california", "wa", "washington", "oregon",
                        "calif"}) {
    ids.push_back(pool->Intern(s));
  }
  SynonymSnapshot snap = dict.Snapshot();
  CompatibilityOptions with_dict;
  with_dict.synonyms = &dict;
  CompatibilityOptions with_snap = with_dict;
  with_snap.synonym_snapshot = &snap;
  for (ValueId a : ids) {
    for (ValueId b : ids) {
      EXPECT_EQ(ValuesMatch(a, b, *pool, with_dict),
                ValuesMatch(a, b, *pool, with_snap))
          << pool->Get(a) << " / " << pool->Get(b);
    }
  }
}

// ----------------------------------------------- per-pair truncation reuse

TEST(SessionBlockingTest, TruncationTaintsOnlyTouchedPairs) {
  StringPool pool;
  uint32_t next_id = 0;
  auto make = [&](std::vector<std::pair<std::string, std::string>> rows) {
    std::vector<ValuePair> pairs;
    for (const auto& [l, r] : rows) {
      pairs.push_back({pool.Intern(l), pool.Intern(r)});
    }
    BinaryTable b = BinaryTable::FromPairs(std::move(pairs));
    b.id = next_id++;
    return b;
  };
  // Tables 0..9 share a hot key; the posting list truncates at 4, so ids
  // 4..9 are dropped (tainted). Tables 8 and 9 additionally share a private
  // key, so the pair (8, 9) survives — with an understated count (the hot
  // co-occurrence was lost to truncation), which per-pair tracking must
  // flag. Tables 10, 11 never touch the hot key and stay exact.
  std::vector<BinaryTable> cands;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::pair<std::string, std::string>> rows = {
        {"hot", "key"},
        {"u" + std::to_string(i), "v"},
        {"w" + std::to_string(i), "x"}};
    if (i >= 8) rows.push_back({"alt", "z"});
    cands.push_back(make(rows));
  }
  cands.push_back(make({{"cool", "pair"}, {"calm", "pair2"}}));
  cands.push_back(make({{"cool", "pair"}, {"calm", "pair2"}}));

  BlockingOptions opts;
  opts.theta_overlap = 1;
  opts.max_posting = 4;
  BlockingStats stats;
  auto pairs = GenerateCandidatePairs(cands, opts, nullptr, &stats);
  ASSERT_GT(stats.dropped_postings, 0u);
  EXPECT_FALSE(stats.exact_counts);          // whole-run flag: truncated
  EXPECT_EQ(stats.tainted_candidates, 6u);   // ids 4..9 only

  auto find_pair = [&](uint32_t a, uint32_t b) -> const CandidateTablePair* {
    for (const auto& p : pairs) {
      if (p.a == a && p.b == b) return &p;
    }
    return nullptr;
  };
  // The clean pair keeps exact counts despite truncation elsewhere — this
  // is exactly what the old global exact_counts flag threw away.
  const CandidateTablePair* clean = find_pair(10, 11);
  ASSERT_NE(clean, nullptr);
  EXPECT_TRUE(clean->counts_exact);
  EXPECT_EQ(clean->shared_pairs, 2u);
  // Pairs among the surviving hot-key tables (both kept) stay exact too.
  const CandidateTablePair* kept = find_pair(0, 1);
  ASSERT_NE(kept, nullptr);
  EXPECT_TRUE(kept->counts_exact);
  // The dropped-id pair survives via its private key but its count misses
  // the truncated hot co-occurrence: flagged inexact.
  const CandidateTablePair* dropped = find_pair(8, 9);
  ASSERT_NE(dropped, nullptr);
  EXPECT_FALSE(dropped->counts_exact);
  EXPECT_EQ(dropped->shared_pairs, 1u);  // true value is 2 (hot + alt)

  // Reference implementation agrees on per-pair exactness.
  auto ref = GenerateCandidatePairsReference(cands, opts);
  ASSERT_EQ(ref.size(), pairs.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].counts_exact, pairs[i].counts_exact)
        << ref[i].a << "," << ref[i].b;
  }
}

// --------------------------------------------------- matcher memory bounds

TEST(SessionMatcherTest, CompactPeqShrinksShortPatterns) {
  MyersPattern p;
  BuildMyersPattern("united states", &p);  // 9 distinct bytes
  // Dense layout was 256 * 8 = 2048 bytes; sparse is (1 + distinct) rows.
  EXPECT_LE(p.MaskBytes(), (1 + 13) * sizeof(uint64_t));
  // And it still computes exact distances.
  EXPECT_EQ(MyersDistance(p, "united states"), 0u);
  EXPECT_EQ(MyersDistance(p, "united  states"), 1u);
  EXPECT_EQ(MyersDistance(p, ""), 13u);

  // Blocked patterns (> 64 bytes) use the same sparse layout.
  std::string long_pattern;
  for (int i = 0; i < 10; ++i) long_pattern += "abcdefgh";
  MyersPattern pl;
  BuildMyersPattern(long_pattern, &pl);
  EXPECT_EQ(pl.words, 2u);
  EXPECT_LE(pl.MaskBytes(), (1 + 8) * 2 * sizeof(uint64_t));
  EXPECT_EQ(MyersDistance(pl, long_pattern), 0u);
  EXPECT_EQ(MyersDistance(pl, long_pattern.substr(1)), 1u);
}

TEST(SessionMatcherTest, CacheCapFlushesAndStaysCorrect) {
  StringPool pool;
  std::vector<ValueId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(pool.Intern("value_number_" + std::to_string(i)));
  }
  EditDistanceOptions edit;
  BatchApproxMatcher capped(pool, edit, true, nullptr, nullptr,
                            /*max_cached_values=*/8);
  BatchApproxMatcher unbounded(pool, edit, true, nullptr, nullptr);
  for (ValueId a : ids) {
    for (ValueId b : ids) {
      EXPECT_EQ(capped.Match(a, b), unbounded.Match(a, b));
    }
  }
  EXPECT_GT(capped.stats().cache_flushes, 0u);
  EXPECT_LE(capped.cached_values(), 8u);
  EXPECT_EQ(unbounded.stats().cache_flushes, 0u);
  EXPECT_GT(unbounded.cache_bytes(), 0u);
}

// --------------------------------------------------------- mapping service

TEST(MappingServiceTest, WarmResynthesisReusesUpstreamArtifacts) {
  GeneratedWorld world = SmallWorld(71);
  MappingService service(FastOptions());
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  const size_t mappings_before = service.num_mappings();
  ASSERT_GT(mappings_before, 0u);
  EXPECT_EQ(service.session_stats().extract_runs, 1u);
  EXPECT_EQ(service.session_stats().blocking_runs, 1u);
  EXPECT_EQ(service.session_stats().scoring_runs, 1u);

  // Scoring-only change: extraction + blocking artifacts reused.
  SynthesisOptions tweaked = FastOptions();
  tweaked.compat.edit.cap = 5;
  ASSERT_TRUE(service.Resynthesize(tweaked).ok());
  EXPECT_EQ(service.session_stats().extract_runs, 1u);
  EXPECT_EQ(service.session_stats().blocking_runs, 1u);
  EXPECT_EQ(service.session_stats().scoring_runs, 2u);

  // Partition-only change: even scoring is reused.
  SynthesisOptions partition_only = tweaked;
  partition_only.partitioner.tau = -0.1;
  ASSERT_TRUE(service.Resynthesize(partition_only).ok());
  EXPECT_EQ(service.session_stats().scoring_runs, 2u);
  EXPECT_EQ(service.session_stats().partition_runs, 3u);

  // Blocking change: re-blocks but does not re-extract.
  SynthesisOptions blocking_change = partition_only;
  blocking_change.blocking.theta_overlap = 3;
  ASSERT_TRUE(service.Resynthesize(blocking_change).ok());
  EXPECT_EQ(service.session_stats().extract_runs, 1u);
  EXPECT_EQ(service.session_stats().blocking_runs, 2u);
  EXPECT_EQ(service.session_stats().scoring_runs, 3u);

  // Warm results equal a cold service's results under the same options.
  MappingService cold(blocking_change);
  ASSERT_TRUE(cold.Synthesize(world.corpus).ok());
  EXPECT_EQ(cold.num_mappings(), service.num_mappings());
}

TEST(MappingServiceTest, SynonymMutationInvalidatesCachedGraph) {
  // AddSynonym mutates the dictionary behind an unchanged pointer; the
  // cached ScoredGraph was scored under the old classes and must not be
  // reused.
  GeneratedWorld world = SmallWorld(79);
  auto pool_handle = world.corpus.shared_pool();
  SynonymDictionary dict(pool_handle);
  dict.AddSynonym("usa", "united states");

  SynthesisOptions opts = FastOptions();
  opts.compat.synonyms = &dict;
  MappingService service(opts);
  ASSERT_TRUE(service.Synthesize(world.corpus).ok());
  EXPECT_EQ(service.session_stats().scoring_runs, 1u);

  // Identical options object, mutated dictionary: scoring must re-run.
  dict.AddSynonym("uk", "united kingdom");
  ASSERT_TRUE(service.Resynthesize(opts).ok());
  EXPECT_EQ(service.session_stats().scoring_runs, 2u);
  // Blocking is synonym-independent and stays reused.
  EXPECT_EQ(service.session_stats().blocking_runs, 1u);

  // Unchanged dictionary: the graph is reused again.
  ASSERT_TRUE(service.Resynthesize(opts).ok());
  EXPECT_EQ(service.session_stats().scoring_runs, 2u);
}

TEST(MappingServiceTest, ResynthesizeBeforeSynthesizeFails) {
  MappingService service(FastOptions());
  Status st = service.Resynthesize(FastOptions());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(MappingServiceTest, InvalidOptionsNeverBuildAStore) {
  SynthesisOptions bad = FastOptions();
  bad.min_domains = 0;
  MappingService service(bad);
  EXPECT_FALSE(service.status().ok());
  GeneratedWorld world = SmallWorld(73);
  EXPECT_FALSE(service.Synthesize(world.corpus).ok());
  EXPECT_FALSE(service.has_store());
  EXPECT_EQ(service.num_mappings(), 0u);
}

}  // namespace
}  // namespace ms
