// Tests for the corpus inverted index, PMI/NPMI (Equations 1-2, Example 4),
// and column coherence (Example 5's Table 7 scenario).
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "stats/coherence.h"
#include "stats/inverted_index.h"
#include "stats/npmi.h"
#include "table/corpus.h"

namespace ms {
namespace {

/// A corpus where {usa, canada, mexico} co-occur in many columns, {red,
/// blue} co-occur in others, and "orphan" appears alone.
class StatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 10; ++i) {
      corpus_.AddFromStrings(
          "geo" + std::to_string(i), TableSource::kWeb, {"country"},
          {{"usa", "canada", "mexico"}});
    }
    for (int i = 0; i < 6; ++i) {
      corpus_.AddFromStrings("col" + std::to_string(i), TableSource::kWeb,
                             {"color"}, {{"red", "blue"}});
    }
    corpus_.AddFromStrings("misc", TableSource::kWeb, {"x"}, {{"orphan"}});
    // One column mixing both concepts.
    corpus_.AddFromStrings("mixed", TableSource::kWeb, {"m"},
                           {{"usa", "red"}});
    index_.Build(corpus_);
  }

  ValueId Id(const std::string& s) { return corpus_.pool().Find(s); }

  TableCorpus corpus_;
  ColumnInvertedIndex index_;
};

TEST_F(StatsFixture, ColumnCountMatchesCorpus) {
  EXPECT_EQ(index_.num_columns(), corpus_.TotalColumns());
  EXPECT_EQ(index_.num_columns(), 18u);
}

TEST_F(StatsFixture, ColumnFrequency) {
  EXPECT_EQ(index_.ColumnFrequency(Id("usa")), 11u);     // 10 geo + mixed
  EXPECT_EQ(index_.ColumnFrequency(Id("canada")), 10u);
  EXPECT_EQ(index_.ColumnFrequency(Id("red")), 7u);      // 6 color + mixed
  EXPECT_EQ(index_.ColumnFrequency(Id("orphan")), 1u);
  EXPECT_EQ(index_.ColumnFrequency(999999), 0u);  // unseen id
}

TEST_F(StatsFixture, CoOccurrence) {
  EXPECT_EQ(index_.CoOccurrence(Id("usa"), Id("canada")), 10u);
  EXPECT_EQ(index_.CoOccurrence(Id("usa"), Id("red")), 1u);  // mixed column
  EXPECT_EQ(index_.CoOccurrence(Id("canada"), Id("red")), 0u);
  EXPECT_EQ(index_.CoOccurrence(Id("orphan"), Id("usa")), 0u);
}

TEST_F(StatsFixture, DuplicateValueInColumnCountsOnce) {
  TableCorpus c;
  c.AddFromStrings("d", TableSource::kWeb, {"x"}, {{"a", "a", "a"}});
  ColumnInvertedIndex idx;
  idx.Build(c);
  EXPECT_EQ(idx.ColumnFrequency(c.pool().Find("a")), 1u);
}

TEST_F(StatsFixture, ColumnCoords) {
  auto [table, col] = index_.ColumnCoords(0);
  EXPECT_EQ(table, 0u);
  EXPECT_EQ(col, 0u);
}

TEST_F(StatsFixture, PmiPositiveForCoOccurring) {
  EXPECT_GT(Pmi(index_, Id("usa"), Id("canada")), 0.0);
}

TEST_F(StatsFixture, PmiVeryNegativeForNonCoOccurring) {
  EXPECT_LT(Pmi(index_, Id("canada"), Id("red")), -1e8);
}

TEST_F(StatsFixture, PmiZeroForUnseenValues) {
  EXPECT_DOUBLE_EQ(Pmi(index_, 999999, Id("usa")), 0.0);
}

TEST_F(StatsFixture, NpmiRange) {
  for (const char* a : {"usa", "canada", "red", "blue", "orphan"}) {
    for (const char* b : {"usa", "canada", "red", "blue", "orphan"}) {
      double v = Npmi(index_, Id(a), Id(b));
      EXPECT_GE(v, -1.0) << a << "," << b;
      EXPECT_LE(v, 1.0) << a << "," << b;
    }
  }
}

TEST_F(StatsFixture, NpmiSelfIsOneWhenExclusive) {
  // canada only ever occurs with itself-containing columns: NPMI(u,u)=1.
  EXPECT_DOUBLE_EQ(Npmi(index_, Id("canada"), Id("canada")), 1.0);
}

TEST_F(StatsFixture, NpmiMinusOneForDisjoint) {
  EXPECT_DOUBLE_EQ(Npmi(index_, Id("canada"), Id("red")), -1.0);
}

TEST_F(StatsFixture, NpmiOrdersRelatednessSensibly) {
  const double strong = Npmi(index_, Id("usa"), Id("canada"));
  const double weak = Npmi(index_, Id("usa"), Id("red"));
  EXPECT_GT(strong, weak);
}

TEST(PmiExampleTest, PaperExample4) {
  // N=100M columns, |C(u)|=1000, |C(v)|=500, |C(u)∩C(v)|=300
  // => PMI = log(300e-8 / (1e-5 * 5e-6)) = log(6e4) ≈ 11.0 (natural log).
  // The paper quotes 4.78 with log10; we use natural log, so check the
  // ratio rather than the constant.
  const double n = 1e8, cu = 1000, cv = 500, cuv = 300;
  const double pmi = std::log((cuv / n) / ((cu / n) * (cv / n)));
  EXPECT_NEAR(pmi / std::log(10.0), 4.778, 0.01);  // matches the paper in log10
}

// ------------------------------------------------- CSR-vs-reference oracle

TEST(CsrEquivalenceTest, MatchesReferenceOnRandomCorpora) {
  // The CSR build (serial and parallel) must agree with the seed
  // vector<vector> build on every observable: column counts, frequencies,
  // posting lists, and co-occurrence counts.
  for (uint64_t seed : {3u, 17u, 91u}) {
    Rng rng(seed);
    TableCorpus corpus;
    const size_t n_tables = 20 + rng.Uniform(30);
    for (size_t t = 0; t < n_tables; ++t) {
      const size_t n_cols = 1 + rng.Uniform(4);
      std::vector<std::string> names;
      std::vector<std::vector<std::string>> cols;
      for (size_t c = 0; c < n_cols; ++c) {
        names.push_back("c" + std::to_string(c));
        std::vector<std::string> cells;
        const size_t n_rows = 1 + rng.Uniform(15);
        for (size_t r = 0; r < n_rows; ++r) {
          // Zipf skew => a few very hot values with long posting lists.
          cells.push_back("w" + std::to_string(rng.Zipf(80)));
        }
        cols.push_back(std::move(cells));
      }
      corpus.AddFromStrings("d" + std::to_string(t), TableSource::kWeb, names,
                            cols);
    }

    ReferenceInvertedIndex ref;
    ref.Build(corpus);
    ColumnInvertedIndex csr;
    csr.Build(corpus);
    ThreadPool pool(4);
    ColumnInvertedIndex csr_par;
    csr_par.Build(corpus, &pool);

    ASSERT_EQ(csr.num_columns(), ref.num_columns());
    ASSERT_EQ(csr_par.num_columns(), ref.num_columns());
    const size_t n_values = corpus.pool().size();
    for (ValueId u = 0; u < n_values; ++u) {
      ASSERT_EQ(csr.ColumnFrequency(u), ref.ColumnFrequency(u)) << "u=" << u;
      ASSERT_EQ(csr_par.ColumnFrequency(u), ref.ColumnFrequency(u));
      PostingsView pv = csr.Postings(u);
      const auto& rv = ref.Postings(u);
      ASSERT_EQ(pv.size, rv.size());
      for (size_t i = 0; i < pv.size; ++i) {
        ASSERT_EQ(pv[i], rv[i]) << "u=" << u << " i=" << i;
      }
      PostingsView pp = csr_par.Postings(u);
      ASSERT_EQ(pp.size, rv.size());
      for (size_t i = 0; i < pp.size; ++i) ASSERT_EQ(pp[i], rv[i]);
    }
    for (int rep = 0; rep < 400; ++rep) {
      ValueId u = static_cast<ValueId>(rng.Uniform(n_values));
      ValueId v = static_cast<ValueId>(rng.Uniform(n_values));
      ASSERT_EQ(csr.CoOccurrence(u, v), ref.CoOccurrence(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(CsrEquivalenceTest, GallopingHandlesSkewedLists) {
  // One value present in every column, one in few: forces the galloping
  // path (|long| / |short| >= 8) in both argument orders.
  TableCorpus corpus;
  for (int t = 0; t < 120; ++t) {
    std::vector<std::string> cells = {"hot"};
    if (t % 30 == 0) cells.push_back("rare");
    corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {cells});
  }
  ReferenceInvertedIndex ref;
  ref.Build(corpus);
  ColumnInvertedIndex csr;
  csr.Build(corpus);
  ValueId hot = corpus.pool().Find("hot");
  ValueId rare = corpus.pool().Find("rare");
  EXPECT_EQ(csr.ColumnFrequency(hot), 120u);
  EXPECT_EQ(csr.ColumnFrequency(rare), 4u);
  EXPECT_EQ(csr.CoOccurrence(hot, rare), ref.CoOccurrence(hot, rare));
  EXPECT_EQ(csr.CoOccurrence(rare, hot), 4u);
  EXPECT_EQ(csr.CoOccurrence(hot, hot), 120u);
}

TEST(CsrEquivalenceTest, UnseenAndInvalidIdsAreSafe) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"c"}, {{"a", "b"}});
  ColumnInvertedIndex csr;
  csr.Build(corpus);
  EXPECT_EQ(csr.ColumnFrequency(999999), 0u);
  EXPECT_EQ(csr.ColumnFrequency(kInvalidValueId), 0u);
  EXPECT_EQ(csr.CoOccurrence(kInvalidValueId, 0), 0u);
  EXPECT_TRUE(csr.Postings(kInvalidValueId).empty());
  ColumnInvertedIndex empty;
  TableCorpus none;
  empty.Build(none);
  EXPECT_EQ(empty.num_columns(), 0u);
  EXPECT_EQ(empty.ColumnFrequency(0), 0u);
}

// ---------------------------------------------------------------- Coherence

TEST_F(StatsFixture, CoherentColumnScoresHigh) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada"), Id("mexico")};
  EXPECT_GT(ColumnCoherence(index_, cells), 0.5);
}

TEST_F(StatsFixture, MixedColumnScoresLow) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada"), Id("red"),
                                Id("blue"), Id("orphan")};
  const double mixed = ColumnCoherence(index_, cells);
  std::vector<ValueId> pure = {Id("usa"), Id("canada"), Id("mexico")};
  EXPECT_LT(mixed, ColumnCoherence(index_, pure));
}

TEST_F(StatsFixture, SingleValueColumnIsTriviallyCoherent) {
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {Id("usa")}), 1.0);
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {Id("usa"), Id("usa")}), 1.0);
}

TEST_F(StatsFixture, EmptyColumnScoresZero) {
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {}), 0.0);
}

TEST_F(StatsFixture, SamplingIsDeterministic) {
  std::vector<ValueId> cells;
  for (int rep = 0; rep < 3; ++rep) {
    cells.push_back(Id("usa"));
    cells.push_back(Id("canada"));
    cells.push_back(Id("mexico"));
    cells.push_back(Id("red"));
    cells.push_back(Id("blue"));
  }
  CoherenceOptions opts;
  opts.max_sampled_values = 3;
  const double a = ColumnCoherence(index_, cells, opts);
  const double b = ColumnCoherence(index_, cells, opts);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(StatsFixture, SamplingCapChangesNothingWhenSmall) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada")};
  CoherenceOptions big, small;
  small.max_sampled_values = 2;
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, cells, big),
                   ColumnCoherence(index_, cells, small));
}

// ------------------------------------------------ Coherence margin cache

TEST_F(StatsFixture, MonotoneVerdictsAreStableOutright) {
  CoherenceProfile prof;
  const double score = ColumnCoherence(
      index_, {Id("usa"), Id("canada"), Id("mexico")}, {}, &prof);
  ASSERT_GT(prof.pairs, 0u);
  ASSERT_EQ(prof.n_eval, index_.num_columns());
  // Same N, same counts: nothing moved.
  EXPECT_TRUE(CoherenceVerdictStable(prof, 0.5, prof.n_eval));
  // At fixed counts S(C) only rises with N, so a kept verdict survives any
  // growth and a rejected one survives any shrink — no bound math needed.
  EXPECT_TRUE(CoherenceVerdictStable(prof, score - 0.01, prof.n_eval + 100));
  EXPECT_TRUE(CoherenceVerdictStable(prof, score + 0.01, prof.n_eval - 3));
}

TEST_F(StatsFixture, DistantThresholdsAreStableInTheHardDirections) {
  CoherenceProfile prof;
  ColumnCoherence(index_, {Id("usa"), Id("canada"), Id("mexico")}, {}, &prof);
  // S(C) lives in [-1, 1] at every N, so verdicts against thresholds
  // outside that range are provable even in the directions that need the
  // one-sided rho bound: rejected-vs-2.0 under growth, kept-vs-(-2.0)
  // under shrink (which additionally requires b_max < n_now).
  EXPECT_TRUE(CoherenceVerdictStable(prof, 2.0, prof.n_eval * 10));
  ASSERT_LT(prof.b_max, prof.n_eval - 3);
  EXPECT_TRUE(CoherenceVerdictStable(prof, -2.0, prof.n_eval - 3));
}

TEST_F(StatsFixture, StableVerdictsAgreeWithReEvaluationOnDisjointGrowth) {
  const std::vector<std::vector<ValueId>> cols = {
      {Id("usa"), Id("canada"), Id("mexico")},
      {Id("usa"), Id("canada"), Id("red"), Id("blue"), Id("orphan")},
      {Id("red"), Id("blue")},
  };
  std::vector<CoherenceProfile> profs(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    ColumnCoherence(index_, cols[i], {}, &profs[i]);
  }

  // Grow the corpus with columns over fresh values: every profiled
  // column's counts are unchanged and only N moves — exactly the regime
  // the margin cache is allowed to rule on.
  for (int i = 0; i < 40; ++i) {
    corpus_.AddFromStrings("pad" + std::to_string(i), TableSource::kWeb,
                           {"p"}, {{"pad value " + std::to_string(i)}});
  }
  ColumnInvertedIndex grown;
  grown.Build(corpus_);
  ASSERT_GT(grown.num_columns(), index_.num_columns());

  for (const double thr : {0.05, 0.2, 0.5, 0.8}) {
    for (size_t i = 0; i < cols.size(); ++i) {
      // Growth direction: a claim of stability is a proof, so the fresh
      // verdict at the grown N must agree with the cached one.
      if (CoherenceVerdictStable(profs[i], thr, grown.num_columns())) {
        EXPECT_EQ(ColumnCoherence(grown, cols[i]) >= thr,
                  profs[i].score >= thr)
            << "col " << i << " thr " << thr;
      }
      // Shrink direction: profile at the grown index, verdict at the
      // original N.
      CoherenceProfile big;
      const double score = ColumnCoherence(grown, cols[i], {}, &big);
      if (CoherenceVerdictStable(big, thr, index_.num_columns())) {
        EXPECT_EQ(ColumnCoherence(index_, cols[i]) >= thr, score >= thr)
            << "col " << i << " thr " << thr;
      }
    }
  }
}

}  // namespace
}  // namespace ms
