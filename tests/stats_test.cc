// Tests for the corpus inverted index, PMI/NPMI (Equations 1-2, Example 4),
// and column coherence (Example 5's Table 7 scenario).
#include <cmath>

#include <gtest/gtest.h>

#include "stats/coherence.h"
#include "stats/inverted_index.h"
#include "stats/npmi.h"
#include "table/corpus.h"

namespace ms {
namespace {

/// A corpus where {usa, canada, mexico} co-occur in many columns, {red,
/// blue} co-occur in others, and "orphan" appears alone.
class StatsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 10; ++i) {
      corpus_.AddFromStrings(
          "geo" + std::to_string(i), TableSource::kWeb, {"country"},
          {{"usa", "canada", "mexico"}});
    }
    for (int i = 0; i < 6; ++i) {
      corpus_.AddFromStrings("col" + std::to_string(i), TableSource::kWeb,
                             {"color"}, {{"red", "blue"}});
    }
    corpus_.AddFromStrings("misc", TableSource::kWeb, {"x"}, {{"orphan"}});
    // One column mixing both concepts.
    corpus_.AddFromStrings("mixed", TableSource::kWeb, {"m"},
                           {{"usa", "red"}});
    index_.Build(corpus_);
  }

  ValueId Id(const std::string& s) { return corpus_.pool().Find(s); }

  TableCorpus corpus_;
  ColumnInvertedIndex index_;
};

TEST_F(StatsFixture, ColumnCountMatchesCorpus) {
  EXPECT_EQ(index_.num_columns(), corpus_.TotalColumns());
  EXPECT_EQ(index_.num_columns(), 18u);
}

TEST_F(StatsFixture, ColumnFrequency) {
  EXPECT_EQ(index_.ColumnFrequency(Id("usa")), 11u);     // 10 geo + mixed
  EXPECT_EQ(index_.ColumnFrequency(Id("canada")), 10u);
  EXPECT_EQ(index_.ColumnFrequency(Id("red")), 7u);      // 6 color + mixed
  EXPECT_EQ(index_.ColumnFrequency(Id("orphan")), 1u);
  EXPECT_EQ(index_.ColumnFrequency(999999), 0u);  // unseen id
}

TEST_F(StatsFixture, CoOccurrence) {
  EXPECT_EQ(index_.CoOccurrence(Id("usa"), Id("canada")), 10u);
  EXPECT_EQ(index_.CoOccurrence(Id("usa"), Id("red")), 1u);  // mixed column
  EXPECT_EQ(index_.CoOccurrence(Id("canada"), Id("red")), 0u);
  EXPECT_EQ(index_.CoOccurrence(Id("orphan"), Id("usa")), 0u);
}

TEST_F(StatsFixture, DuplicateValueInColumnCountsOnce) {
  TableCorpus c;
  c.AddFromStrings("d", TableSource::kWeb, {"x"}, {{"a", "a", "a"}});
  ColumnInvertedIndex idx;
  idx.Build(c);
  EXPECT_EQ(idx.ColumnFrequency(c.pool().Find("a")), 1u);
}

TEST_F(StatsFixture, ColumnCoords) {
  auto [table, col] = index_.ColumnCoords(0);
  EXPECT_EQ(table, 0u);
  EXPECT_EQ(col, 0u);
}

TEST_F(StatsFixture, PmiPositiveForCoOccurring) {
  EXPECT_GT(Pmi(index_, Id("usa"), Id("canada")), 0.0);
}

TEST_F(StatsFixture, PmiVeryNegativeForNonCoOccurring) {
  EXPECT_LT(Pmi(index_, Id("canada"), Id("red")), -1e8);
}

TEST_F(StatsFixture, PmiZeroForUnseenValues) {
  EXPECT_DOUBLE_EQ(Pmi(index_, 999999, Id("usa")), 0.0);
}

TEST_F(StatsFixture, NpmiRange) {
  for (const char* a : {"usa", "canada", "red", "blue", "orphan"}) {
    for (const char* b : {"usa", "canada", "red", "blue", "orphan"}) {
      double v = Npmi(index_, Id(a), Id(b));
      EXPECT_GE(v, -1.0) << a << "," << b;
      EXPECT_LE(v, 1.0) << a << "," << b;
    }
  }
}

TEST_F(StatsFixture, NpmiSelfIsOneWhenExclusive) {
  // canada only ever occurs with itself-containing columns: NPMI(u,u)=1.
  EXPECT_DOUBLE_EQ(Npmi(index_, Id("canada"), Id("canada")), 1.0);
}

TEST_F(StatsFixture, NpmiMinusOneForDisjoint) {
  EXPECT_DOUBLE_EQ(Npmi(index_, Id("canada"), Id("red")), -1.0);
}

TEST_F(StatsFixture, NpmiOrdersRelatednessSensibly) {
  const double strong = Npmi(index_, Id("usa"), Id("canada"));
  const double weak = Npmi(index_, Id("usa"), Id("red"));
  EXPECT_GT(strong, weak);
}

TEST(PmiExampleTest, PaperExample4) {
  // N=100M columns, |C(u)|=1000, |C(v)|=500, |C(u)∩C(v)|=300
  // => PMI = log(300e-8 / (1e-5 * 5e-6)) = log(6e4) ≈ 11.0 (natural log).
  // The paper quotes 4.78 with log10; we use natural log, so check the
  // ratio rather than the constant.
  const double n = 1e8, cu = 1000, cv = 500, cuv = 300;
  const double pmi = std::log((cuv / n) / ((cu / n) * (cv / n)));
  EXPECT_NEAR(pmi / std::log(10.0), 4.778, 0.01);  // matches the paper in log10
}

// ---------------------------------------------------------------- Coherence

TEST_F(StatsFixture, CoherentColumnScoresHigh) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada"), Id("mexico")};
  EXPECT_GT(ColumnCoherence(index_, cells), 0.5);
}

TEST_F(StatsFixture, MixedColumnScoresLow) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada"), Id("red"),
                                Id("blue"), Id("orphan")};
  const double mixed = ColumnCoherence(index_, cells);
  std::vector<ValueId> pure = {Id("usa"), Id("canada"), Id("mexico")};
  EXPECT_LT(mixed, ColumnCoherence(index_, pure));
}

TEST_F(StatsFixture, SingleValueColumnIsTriviallyCoherent) {
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {Id("usa")}), 1.0);
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {Id("usa"), Id("usa")}), 1.0);
}

TEST_F(StatsFixture, EmptyColumnScoresZero) {
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, {}), 0.0);
}

TEST_F(StatsFixture, SamplingIsDeterministic) {
  std::vector<ValueId> cells;
  for (int rep = 0; rep < 3; ++rep) {
    cells.push_back(Id("usa"));
    cells.push_back(Id("canada"));
    cells.push_back(Id("mexico"));
    cells.push_back(Id("red"));
    cells.push_back(Id("blue"));
  }
  CoherenceOptions opts;
  opts.max_sampled_values = 3;
  const double a = ColumnCoherence(index_, cells, opts);
  const double b = ColumnCoherence(index_, cells, opts);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(StatsFixture, SamplingCapChangesNothingWhenSmall) {
  std::vector<ValueId> cells = {Id("usa"), Id("canada")};
  CoherenceOptions big, small;
  small.max_sampled_values = 2;
  EXPECT_DOUBLE_EQ(ColumnCoherence(index_, cells, big),
                   ColumnCoherence(index_, cells, small));
}

}  // namespace
}  // namespace ms
