// Integration test for the 12-method evaluation suite (the engine behind
// Figures 7/8/10/14): every method runs, is evaluated against ground truth,
// and the headline orderings the paper reports hold on a small world.
#include <gtest/gtest.h>

#include "corpusgen/builtin_domains.h"
#include "eval/suite.h"

namespace ms {
namespace {

class SuiteFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto all = BuiltinWebRelationships();
    std::vector<RelationshipSpec> specs;
    for (auto& s : all) {
      if (s.name == "country_iso3" || s.name == "country_ioc" ||
          s.name == "state_abbrev" || s.name == "element_symbol" ||
          s.name == "city_state" || s.name == "company_ticker") {
        s.popularity = 14;
        specs.push_back(std::move(s));
      }
    }
    GeneratorOptions gen;
    gen.seed = 99;
    gen.noise_table_fraction = 0.2;
    world_ = new GeneratedWorld(GenerateWorld(std::move(specs), gen));
    SuiteOptions opts;
    opts.synthesis.num_threads = 4;
    result_ = new SuiteResult(RunMethodSuite(*world_, opts));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete world_;
    result_ = nullptr;
    world_ = nullptr;
  }

  static const SuiteEntry* Find(const std::string& name) {
    for (const auto& e : result_->entries) {
      if (e.output.method_name == name) return &e;
    }
    return nullptr;
  }

  static GeneratedWorld* world_;
  static SuiteResult* result_;
};

GeneratedWorld* SuiteFixture::world_ = nullptr;
SuiteResult* SuiteFixture::result_ = nullptr;

TEST_F(SuiteFixture, AllTwelveMethodsPresent) {
  for (const char* name :
       {"Synthesis", "WikiTable", "WebTable", "UnionDomain", "UnionWeb",
        "SynthesisPos", "Correlation", "SchemaPosCC", "SchemaCC",
        "WiseIntegrator", "Freebase", "YAGO"}) {
    EXPECT_NE(Find(name), nullptr) << name;
  }
  EXPECT_EQ(result_->entries.size(), 12u);
}

TEST_F(SuiteFixture, EvaluationsCoverEveryCase) {
  for (const auto& e : result_->entries) {
    EXPECT_EQ(e.evaluation.per_case.size(), world_->cases.size())
        << e.output.method_name;
    EXPECT_GE(e.output.runtime_seconds, 0.0);
  }
}

TEST_F(SuiteFixture, SynthesisHasBestFscore) {
  const auto* synthesis = Find("Synthesis");
  ASSERT_NE(synthesis, nullptr);
  for (const auto& e : result_->entries) {
    EXPECT_GE(synthesis->evaluation.aggregate.avg_fscore + 1e-9,
              e.evaluation.aggregate.avg_fscore)
        << e.output.method_name;
  }
  EXPECT_GT(synthesis->evaluation.aggregate.avg_fscore, 0.8);
}

TEST_F(SuiteFixture, NegativeSignalsMatter) {
  // Figure 7's central ablation: SynthesisPos < Synthesis.
  EXPECT_LT(Find("SynthesisPos")->evaluation.aggregate.avg_fscore,
            Find("Synthesis")->evaluation.aggregate.avg_fscore);
}

TEST_F(SuiteFixture, WikiTableIsPreciseButIncomplete) {
  const auto* wiki = Find("WikiTable");
  ASSERT_NE(wiki, nullptr);
  EXPECT_GT(wiki->evaluation.aggregate.avg_precision, 0.85);
  EXPECT_LT(wiki->evaluation.aggregate.avg_recall,
            Find("Synthesis")->evaluation.aggregate.avg_recall);
}

TEST_F(SuiteFixture, SingleTablesTrailSynthesisOnRecall) {
  EXPECT_LT(Find("WebTable")->evaluation.aggregate.avg_recall,
            Find("Synthesis")->evaluation.aggregate.avg_recall);
}

TEST_F(SuiteFixture, KnowledgeBasesMissRelations) {
  // company_ticker is flagged off-KB in the builtin data (Section 6: both
  // KBs miss stocks); Freebase must score ~0 there.
  int ci = world_->CaseIndex("company_ticker");
  ASSERT_GE(ci, 0);
  EXPECT_LT(Find("Freebase")->evaluation.per_case[ci].fscore, 0.05);
  EXPECT_LT(Find("YAGO")->evaluation.aggregate.avg_recall,
            Find("Freebase")->evaluation.aggregate.avg_recall + 1e-9);
}

TEST_F(SuiteFixture, SharedGraphStatsReported) {
  EXPECT_GT(result_->num_candidates, 0u);
  EXPECT_GT(result_->graph_edges, 0u);
  EXPECT_GT(result_->extraction_stats.pairs_considered, 0u);
}

}  // namespace
}  // namespace ms
