// Unit tests for the table model: StringPool, Table, BinaryTable (value-pair
// relations, FD checks, conflict sets), TableCorpus, and TSV round-tripping.
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "table/binary_table.h"
#include "table/corpus.h"
#include "table/string_pool.h"
#include "table/tsv.h"

namespace ms {
namespace {

// ------------------------------------------------------------- StringPool

TEST(StringPoolTest, InternDeduplicates) {
  StringPool pool;
  ValueId a = pool.Intern("alpha");
  ValueId b = pool.Intern("beta");
  ValueId a2 = pool.Intern("alpha");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPoolTest, GetReturnsInterned) {
  StringPool pool;
  ValueId a = pool.Intern("value");
  EXPECT_EQ(pool.Get(a), "value");
}

TEST(StringPoolTest, FindMissingReturnsInvalid) {
  StringPool pool;
  EXPECT_EQ(pool.Find("nope"), kInvalidValueId);
  pool.Intern("yes");
  EXPECT_NE(pool.Find("yes"), kInvalidValueId);
}

TEST(StringPoolTest, EmptyStringIsValidValue) {
  StringPool pool;
  ValueId e = pool.Intern("");
  EXPECT_EQ(pool.Get(e), "");
  EXPECT_EQ(pool.Intern(""), e);
}

TEST(StringPoolTest, TruncateToUninternsTheTail) {
  StringPool pool;
  const ValueId a = pool.Intern("alpha");
  const ValueId b = pool.Intern("beta");
  const size_t before = pool.size();
  const ValueId c = pool.Intern("gamma");
  const ValueId d = pool.Intern("delta");
  ASSERT_EQ(pool.size(), 4u);

  pool.TruncateTo(before);
  EXPECT_EQ(pool.size(), before);
  // The surviving prefix is untouched: same ids, same bytes, still
  // Find-able.
  EXPECT_EQ(pool.Get(a), "alpha");
  EXPECT_EQ(pool.Get(b), "beta");
  EXPECT_EQ(pool.Find("alpha"), a);
  // The dropped tail is gone from the index — a rollback must leave the
  // dead delta's strings neither Find-able nor holding an id.
  EXPECT_EQ(pool.Find("gamma"), kInvalidValueId);
  EXPECT_EQ(pool.Find("delta"), kInvalidValueId);
  // Re-interning a dropped string hands out a fresh id from the truncated
  // end, exactly as if the failed append never happened.
  EXPECT_EQ(pool.Intern("gamma"), c);
  (void)d;
}

TEST(StringPoolTest, TruncateToBeyondSizeIsANoOp) {
  StringPool pool;
  const ValueId a = pool.Intern("alpha");
  pool.TruncateTo(100);
  pool.TruncateTo(pool.size());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Find("alpha"), a);
}

TEST(StringPoolTest, TruncateToKeepsFirstDuplicateMapped) {
  // AdoptExternal appends views verbatim (no dedup), so a tail id can
  // duplicate an earlier string. Truncating the duplicate away must not
  // unmap the survivor.
  StringPool pool;
  const ValueId a = pool.Intern("alpha");
  static const std::string kDup = "alpha";  // outlives the pool
  pool.AdoptExternal({kDup});
  ASSERT_EQ(pool.size(), 2u);
  ASSERT_EQ(pool.Find("alpha"), a);  // keep-first: index maps to id 0
  pool.TruncateTo(1);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Find("alpha"), a);
  EXPECT_EQ(pool.Get(a), "alpha");
}

TEST(StringPoolTest, ConcurrentInternIsConsistent) {
  StringPool pool;
  std::vector<std::thread> threads;
  std::vector<std::vector<ValueId>> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &ids, t] {
      for (int i = 0; i < 500; ++i) {
        ids[t].push_back(pool.Intern("shared" + std::to_string(i % 100)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.size(), 100u);
  // Same string -> same id across threads.
  for (int t = 1; t < 8; ++t) EXPECT_EQ(ids[t], ids[0]);
}

// ------------------------------------------------------------------ Table

Table MakeTable(const std::vector<std::vector<ValueId>>& cols) {
  Table t;
  for (const auto& c : cols) {
    Column col;
    col.name = "c" + std::to_string(t.columns.size());
    col.cells = c;
    t.columns.push_back(std::move(col));
  }
  return t;
}

TEST(TableTest, RectangularDetection) {
  EXPECT_TRUE(MakeTable({{1, 2}, {3, 4}}).IsRectangular());
  EXPECT_FALSE(MakeTable({{1, 2}, {3}}).IsRectangular());
  EXPECT_TRUE(MakeTable({}).IsRectangular());
}

TEST(TableTest, RowAndColumnCounts) {
  Table t = MakeTable({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(MakeTable({}).num_rows(), 0u);
}

TEST(TableTest, SourceNames) {
  EXPECT_STREQ(TableSourceName(TableSource::kWeb), "web");
  EXPECT_STREQ(TableSourceName(TableSource::kWiki), "wiki");
  EXPECT_STREQ(TableSourceName(TableSource::kEnterprise), "enterprise");
  EXPECT_STREQ(TableSourceName(TableSource::kTrusted), "trusted");
}

// ------------------------------------------------------------ BinaryTable

TEST(BinaryTableTest, FromPairsSortsAndDedups) {
  BinaryTable b = BinaryTable::FromPairs({{3, 1}, {1, 2}, {3, 1}, {2, 9}});
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.pairs()[0], (ValuePair{1, 2}));
  EXPECT_EQ(b.pairs()[1], (ValuePair{2, 9}));
  EXPECT_EQ(b.pairs()[2], (ValuePair{3, 1}));
}

TEST(BinaryTableTest, FromColumnsAlignsRows) {
  Table t = MakeTable({{10, 20, 30}, {11, 21, 31}});
  t.domain = "d.example";
  BinaryTable b = BinaryTable::FromColumns(t, 0, 1);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.ContainsPair({10, 11}));
  EXPECT_TRUE(b.ContainsPair({30, 31}));
  EXPECT_EQ(b.domain, "d.example");
}

TEST(BinaryTableTest, FromColumnsReversedOrder) {
  Table t = MakeTable({{10, 20}, {11, 21}});
  BinaryTable b = BinaryTable::FromColumns(t, 1, 0);
  EXPECT_TRUE(b.ContainsPair({11, 10}));
  EXPECT_FALSE(b.ContainsPair({10, 11}));
}

TEST(BinaryTableTest, LeftAndRightValues) {
  BinaryTable b = BinaryTable::FromPairs({{1, 5}, {1, 6}, {2, 5}, {3, 7}});
  EXPECT_EQ(b.LeftValues(), (std::vector<ValueId>{1, 2, 3}));
  EXPECT_EQ(b.RightValues(), (std::vector<ValueId>{5, 6, 7}));
}

TEST(BinaryTableTest, FdHoldRatioPerfectMapping) {
  BinaryTable b = BinaryTable::FromPairs({{1, 5}, {2, 6}, {3, 7}});
  EXPECT_DOUBLE_EQ(b.FdHoldRatio(), 1.0);
  EXPECT_TRUE(b.IsApproximateMapping(1.0));
}

TEST(BinaryTableTest, FdHoldRatioWithViolations) {
  // Left 1 maps to two rights: only one of its two pairs survives.
  BinaryTable b = BinaryTable::FromPairs({{1, 5}, {1, 6}, {2, 7}, {3, 8}});
  EXPECT_DOUBLE_EQ(b.FdHoldRatio(), 0.75);
  EXPECT_TRUE(b.IsApproximateMapping(0.75));
  EXPECT_FALSE(b.IsApproximateMapping(0.76));
}

TEST(BinaryTableTest, FdHoldRatioAllSameLeft) {
  BinaryTable b = BinaryTable::FromPairs({{1, 5}, {1, 6}, {1, 7}, {1, 8}});
  EXPECT_DOUBLE_EQ(b.FdHoldRatio(), 0.25);
}

TEST(BinaryTableTest, EmptyTableIsVacuouslyFunctional) {
  BinaryTable b;
  EXPECT_DOUBLE_EQ(b.FdHoldRatio(), 1.0);
  EXPECT_FALSE(b.IsApproximateMapping(0.95));  // empty is not a mapping
}

TEST(BinaryTableTest, IntersectSizeExact) {
  BinaryTable a = BinaryTable::FromPairs({{1, 5}, {2, 6}, {3, 7}});
  BinaryTable b = BinaryTable::FromPairs({{2, 6}, {3, 7}, {4, 8}});
  EXPECT_EQ(a.IntersectSize(b), 2u);
  EXPECT_EQ(b.IntersectSize(a), 2u);
  EXPECT_EQ(a.IntersectSize(a), 3u);
}

TEST(BinaryTableTest, IntersectSizeDisjoint) {
  BinaryTable a = BinaryTable::FromPairs({{1, 5}});
  BinaryTable b = BinaryTable::FromPairs({{2, 6}});
  EXPECT_EQ(a.IntersectSize(b), 0u);
}

TEST(BinaryTableTest, ConflictSetDetectsDisagreement) {
  // Left 2 maps to 6 in a but 9 in b -> conflict; left 1 agrees.
  BinaryTable a = BinaryTable::FromPairs({{1, 5}, {2, 6}});
  BinaryTable b = BinaryTable::FromPairs({{1, 5}, {2, 9}, {3, 7}});
  auto f = a.ConflictSet(b);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], 2u);
  EXPECT_EQ(b.ConflictSet(a).size(), 1u);  // symmetric
}

TEST(BinaryTableTest, ConflictSetEmptyWhenConsistent) {
  BinaryTable a = BinaryTable::FromPairs({{1, 5}, {2, 6}});
  BinaryTable b = BinaryTable::FromPairs({{2, 6}, {3, 7}});
  EXPECT_TRUE(a.ConflictSet(b).empty());
}

TEST(BinaryTableTest, ConflictSetNoSharedLefts) {
  BinaryTable a = BinaryTable::FromPairs({{1, 5}});
  BinaryTable b = BinaryTable::FromPairs({{2, 5}});
  EXPECT_TRUE(a.ConflictSet(b).empty());
}

// ------------------------------------------------------------ TableCorpus

TEST(TableCorpusTest, AddAssignsSequentialIds) {
  TableCorpus corpus;
  TableId a = corpus.Add(Table{});
  TableId b = corpus.Add(Table{});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(corpus.size(), 2u);
}

TEST(TableCorpusTest, AddFromStringsInternsValues) {
  TableCorpus corpus;
  corpus.AddFromStrings("d.com", TableSource::kWeb, {"Country", "Code"},
                        {{"USA", "Canada"}, {"US", "CA"}});
  const Table& t = corpus.table(0);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(corpus.pool().Get(t.columns[0].cells[0]), "USA");
  EXPECT_EQ(corpus.pool().Get(t.columns[1].cells[1]), "CA");
}

TEST(TableCorpusTest, TotalColumns) {
  TableCorpus corpus;
  corpus.AddFromStrings("a", TableSource::kWeb, {"x", "y"}, {{"1"}, {"2"}});
  corpus.AddFromStrings("b", TableSource::kWeb, {"x"}, {{"1"}});
  EXPECT_EQ(corpus.TotalColumns(), 3u);
}

TEST(TableCorpusTest, SubsetSharesPoolAndTruncates) {
  TableCorpus corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.AddFromStrings("d", TableSource::kWeb, {"x"},
                          {{"v" + std::to_string(i)}});
  }
  TableCorpus half = corpus.Subset(0.5);
  EXPECT_EQ(half.size(), 5u);
  EXPECT_EQ(&half.pool(), &corpus.pool());
  EXPECT_EQ(half.table(0).id, 0u);  // re-assigned dense ids
}

TEST(TableCorpusTest, TombstoneAndRestoreRoundTrip) {
  TableCorpus corpus;
  corpus.AddFromStrings("a.com", TableSource::kWeb, {"name", "code"},
                        {{"usa", "canada"}, {"US", "CA"}});
  corpus.AddFromStrings("b.com", TableSource::kWeb, {"name", "code"},
                        {{"france", "spain"}, {"FR", "ES"}});
  const size_t cols_before = corpus.TotalColumns();

  std::vector<Column> moved = corpus.Tombstone(0);
  ASSERT_EQ(moved.size(), 2u);
  // The shell stays: same table count, same id, zero columns — a cold
  // rebuild over the mutated corpus sees the table contribute nothing.
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.table(0).num_columns(), 0u);
  EXPECT_EQ(corpus.TotalColumns(), cols_before - 2);
  // The neighbor is untouched.
  EXPECT_EQ(corpus.pool().Get(corpus.table(1).columns[0].cells[0]), "france");

  corpus.RestoreColumns(0, std::move(moved));
  EXPECT_EQ(corpus.table(0).num_columns(), 2u);
  EXPECT_EQ(corpus.TotalColumns(), cols_before);
  EXPECT_EQ(corpus.pool().Get(corpus.table(0).columns[0].cells[1]), "canada");
  EXPECT_EQ(corpus.pool().Get(corpus.table(0).columns[1].cells[0]), "US");
}

TEST(TableCorpusTest, TruncateLeavesPoolForTruncateTo) {
  // The two-step rollback protocol: Truncate() drops the merged tables but
  // deliberately leaves their pool entries; the caller reclaims them with
  // StringPool::TruncateTo at the size recorded before the append.
  TableCorpus corpus;
  corpus.AddFromStrings("a.com", TableSource::kWeb, {"x"}, {{"kept"}});
  const size_t prev_tables = corpus.size();
  const size_t prev_pool = corpus.pool().size();

  TableCorpus delta;
  delta.AddFromStrings("b.com", TableSource::kWeb, {"x"},
                       {{"orphaned value"}});
  auto merged = corpus.AppendFrom(delta);
  ASSERT_TRUE(merged.ok());
  ASSERT_NE(corpus.pool().Find("orphaned value"), kInvalidValueId);

  corpus.Truncate(prev_tables);
  EXPECT_EQ(corpus.size(), prev_tables);
  EXPECT_NE(corpus.pool().Find("orphaned value"), kInvalidValueId);

  corpus.pool().TruncateTo(prev_pool);
  EXPECT_EQ(corpus.pool().size(), prev_pool);
  EXPECT_EQ(corpus.pool().Find("orphaned value"), kInvalidValueId);
  EXPECT_NE(corpus.pool().Find("kept"), kInvalidValueId);
}

TEST(TableCorpusTest, SubsetClampsFraction) {
  TableCorpus corpus;
  corpus.AddFromStrings("d", TableSource::kWeb, {"x"}, {{"v"}});
  EXPECT_EQ(corpus.Subset(2.0).size(), 1u);
  EXPECT_EQ(corpus.Subset(-1.0).size(), 0u);
}

// -------------------------------------------------------------------- TSV

TEST(TsvTest, RoundTripPreservesContent) {
  TableCorpus corpus;
  corpus.AddFromStrings("geo.example.com", TableSource::kWeb,
                        {"Country", "Code"},
                        {{"United States", "South Korea"}, {"USA", "KOR"}});
  corpus.AddFromStrings("", TableSource::kWiki, {"State", "Abbrev."},
                        {{"California"}, {"CA"}});

  std::ostringstream out;
  ASSERT_TRUE(WriteCorpusTsv(corpus, out).ok());

  std::istringstream in(out.str());
  TableCorpus loaded;
  ASSERT_TRUE(ReadCorpusTsv(in, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.table(0).domain, "geo.example.com");
  EXPECT_EQ(loaded.table(0).source, TableSource::kWeb);
  EXPECT_EQ(loaded.table(1).domain, "");
  EXPECT_EQ(loaded.table(1).source, TableSource::kWiki);
  EXPECT_EQ(loaded.pool().Get(loaded.table(0).columns[0].cells[1]),
            "South Korea");
  EXPECT_EQ(loaded.table(1).columns[1].name, "Abbrev.");
}

TEST(TsvTest, ReadRejectsGarbage) {
  std::istringstream in("not a table header\n");
  TableCorpus corpus;
  Status s = ReadCorpusTsv(in, &corpus);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TsvTest, ReadEmptyStreamYieldsEmptyCorpus) {
  std::istringstream in("");
  TableCorpus corpus;
  ASSERT_TRUE(ReadCorpusTsv(in, &corpus).ok());
  EXPECT_EQ(corpus.size(), 0u);
}

TEST(TsvTest, LoadMissingFileFails) {
  TableCorpus corpus;
  Status s = LoadCorpus("/nonexistent/path/corpus.tsv", &corpus);
  EXPECT_FALSE(s.ok());
  // NotFound (not IOError) since the env refactor: missing input is a
  // distinct, recoverable condition, and the message names the path.
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("/nonexistent/path/corpus.tsv"),
            std::string::npos)
      << s.ToString();
}

TEST(TsvTest, RoundTripEnterpriseAndTrustedSources) {
  TableCorpus corpus;
  corpus.AddFromStrings("intra", TableSource::kEnterprise, {"a"}, {{"1"}});
  corpus.AddFromStrings("gov", TableSource::kTrusted, {"b"}, {{"2"}});
  std::ostringstream out;
  ASSERT_TRUE(WriteCorpusTsv(corpus, out).ok());
  std::istringstream in(out.str());
  TableCorpus loaded;
  ASSERT_TRUE(ReadCorpusTsv(in, &loaded).ok());
  EXPECT_EQ(loaded.table(0).source, TableSource::kEnterprise);
  EXPECT_EQ(loaded.table(1).source, TableSource::kTrusted);
}

}  // namespace
}  // namespace ms
