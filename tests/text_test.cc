// Tests for cell normalization, the banded edit distance of Algorithm 2
// (validated against the full-matrix reference on random inputs), the
// fractional matching threshold, and the synonym dictionary.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/normalize.h"
#include "text/synonyms.h"

namespace ms {
namespace {

// -------------------------------------------------------------- Normalize

TEST(NormalizeTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeCell("  South   KOREA "), "south korea");
}

TEST(NormalizeTest, StripsPunctuation) {
  EXPECT_EQ(NormalizeCell("Korea, Republic of"), "korea republic of");
  EXPECT_EQ(NormalizeCell("American Samoa (US)"), "american samoa us");
}

TEST(NormalizeTest, StripsFootnoteMarks) {
  EXPECT_EQ(NormalizeCell("American Samoa[1]"), "american samoa");
  EXPECT_EQ(NormalizeCell("France[12][3]"), "france");
}

TEST(NormalizeTest, KeepsInnerBracketsThatAreNotFootnotes) {
  // "[ab]" is not a numeric footnote; punctuation stripping still removes
  // the brackets themselves.
  EXPECT_EQ(NormalizeCell("x [ab]"), "x ab");
}

TEST(NormalizeTest, OptionsCanDisableEachStep) {
  NormalizeOptions opts;
  opts.lowercase = false;
  opts.strip_punctuation = false;
  opts.strip_footnote_marks = false;
  opts.collapse_whitespace = false;
  EXPECT_EQ(NormalizeCell("A,b [1]", opts), "A,b [1]");
}

TEST(NormalizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(NormalizeCell(""), "");
  EXPECT_EQ(NormalizeCell("   "), "");
  EXPECT_EQ(NormalizeCell("..."), "");
}

TEST(NormalizeTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("123"));
  EXPECT_TRUE(LooksNumeric("1,234.56"));
  EXPECT_TRUE(LooksNumeric("-42%"));
  EXPECT_TRUE(LooksNumeric("$1000"));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("12 apples"));
  EXPECT_FALSE(LooksNumeric(""));
}

TEST(NormalizeTest, LooksTemporal) {
  EXPECT_TRUE(LooksTemporal("1994"));
  EXPECT_TRUE(LooksTemporal("2017"));
  EXPECT_TRUE(LooksTemporal("10-12"));
  EXPECT_TRUE(LooksTemporal("7:30"));
  EXPECT_FALSE(LooksTemporal("3127"));  // not 1xxx/2xxx year
  EXPECT_FALSE(LooksTemporal("hello"));
  EXPECT_FALSE(LooksTemporal("10-12 pm"));
}

// ---------------------------------------------------------- EditDistance

TEST(EditDistanceTest, FullBasics) {
  EXPECT_EQ(EditDistanceFull("", ""), 0u);
  EXPECT_EQ(EditDistanceFull("abc", ""), 3u);
  EXPECT_EQ(EditDistanceFull("", "abc"), 3u);
  EXPECT_EQ(EditDistanceFull("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistanceFull("abc", "abc"), 0u);
  EXPECT_EQ(EditDistanceFull("usa", "rsa"), 1u);
}

TEST(EditDistanceTest, BandedMatchesFullWithinBand) {
  EXPECT_EQ(EditDistanceBanded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(EditDistanceBanded("abc", "abc", 0), 0u);
  EXPECT_EQ(EditDistanceBanded("american samoa", "american samoa us", 3), 3u);
}

TEST(EditDistanceTest, BandedReportsExceededBand) {
  EXPECT_GT(EditDistanceBanded("kitten", "sitting", 2), 2u);
  EXPECT_GT(EditDistanceBanded("aaaa", "bbbb", 3), 3u);
  EXPECT_GT(EditDistanceBanded("short", "muchlongerstring", 3), 3u);
}

TEST(EditDistanceTest, BandedHandlesEmptyStrings) {
  EXPECT_EQ(EditDistanceBanded("", "", 0), 0u);
  EXPECT_EQ(EditDistanceBanded("", "ab", 2), 2u);
  EXPECT_GT(EditDistanceBanded("", "abc", 2), 2u);
}

TEST(EditDistanceTest, BandedIsSymmetric) {
  EXPECT_EQ(EditDistanceBanded("abcdef", "abdf", 4),
            EditDistanceBanded("abdf", "abcdef", 4));
}

/// Property sweep: the banded distance must agree with the full DP whenever
/// the true distance fits the band, and must report > band otherwise.
class BandedVsFullTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BandedVsFullTest, AgreesWithReference) {
  Rng rng(GetParam());
  const char alphabet[] = "abcde";
  for (int iter = 0; iter < 300; ++iter) {
    std::string a, b;
    const size_t la = rng.Uniform(15);
    const size_t lb = rng.Uniform(15);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(5)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(5)];
    const size_t truth = EditDistanceFull(a, b);
    for (size_t band = 0; band <= 6; ++band) {
      const size_t got = EditDistanceBanded(a, b, band);
      if (truth <= band) {
        EXPECT_EQ(got, truth) << "a=" << a << " b=" << b << " band=" << band;
      } else {
        EXPECT_GT(got, band) << "a=" << a << " b=" << b << " band=" << band;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BandedVsFullTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FractionalThresholdTest, PaperExample8) {
  // θ_ed("American Samoa"(13ch no punct? use raw), ...) = min{⌊13*0.2⌋,
  // ⌊15*0.2⌋, 10} = 2 per the paper's walk-through.
  std::string a = "american samoa";     // 14 chars
  std::string b = "american samoa us";  // 17 chars
  EXPECT_EQ(FractionalThreshold(a, b), 2u);
}

TEST(FractionalThresholdTest, ShortCodesRequireExactMatch) {
  EXPECT_EQ(FractionalThreshold("USA", "RSA"), 0u);
  EXPECT_FALSE(ApproxMatch("USA", "RSA"));
  EXPECT_TRUE(ApproxMatch("USA", "USA"));
}

TEST(FractionalThresholdTest, CapAppliesToVeryLongStrings) {
  std::string a(200, 'x');
  std::string b(200, 'y');
  EXPECT_EQ(FractionalThreshold(a, b), 10u);  // k_ed cap
}

TEST(ApproxMatchTest, ToleratesSmallVariation) {
  // 2 edits, threshold min(⌊17·0.2⌋, ⌊15·0.2⌋, 10) = 3: match.
  EXPECT_TRUE(ApproxMatch("korea republic of", "korea republic f"));
  // 3 edits, threshold min(3, ⌊14·0.2⌋ = 2, 10) = 2: no match.
  EXPECT_FALSE(ApproxMatch("korea republic of", "korea republic"));
  EXPECT_FALSE(ApproxMatch("washington", "wisconsin"));
}

TEST(ApproxMatchTest, CustomOptions) {
  EditDistanceOptions strict;
  strict.fractional = 0.0;
  EXPECT_FALSE(ApproxMatch("abcdefgh", "abcdefgx", strict));
  EditDistanceOptions loose;
  loose.fractional = 0.5;
  EXPECT_TRUE(ApproxMatch("abcdefgh", "abcdxxgh", loose));
}

// ---------------------------------------------------------------- Synonyms

class SynonymTest : public ::testing::Test {
 protected:
  SynonymTest() : pool_(std::make_shared<StringPool>()), dict_(pool_) {}
  std::shared_ptr<StringPool> pool_;
  SynonymDictionary dict_;
};

TEST_F(SynonymTest, BasicPairs) {
  dict_.AddSynonym("US Virgin Islands", "United States Virgin Islands");
  EXPECT_TRUE(
      dict_.AreSynonyms("US Virgin Islands", "United States Virgin Islands"));
  EXPECT_FALSE(dict_.AreSynonyms("US Virgin Islands", "Guam"));
}

TEST_F(SynonymTest, Transitivity) {
  dict_.AddSynonym("a", "b");
  dict_.AddSynonym("b", "c");
  EXPECT_TRUE(dict_.AreSynonyms("a", "c"));
}

TEST_F(SynonymTest, SelfSynonymAlwaysTrue) {
  ValueId v = pool_->Intern("solo");
  EXPECT_TRUE(dict_.AreSynonyms(v, v));
  EXPECT_TRUE(dict_.AreSynonyms("never seen", "never seen"));
}

TEST_F(SynonymTest, UnknownStringsAreNotSynonyms) {
  EXPECT_FALSE(dict_.AreSynonyms("ghost1", "ghost2"));
}

TEST_F(SynonymTest, ClassMembersEnumeratesClass) {
  dict_.AddSynonym("x", "y");
  dict_.AddSynonym("y", "z");
  ValueId x = pool_->Find("x");
  auto members = dict_.ClassMembers(x);
  EXPECT_EQ(members.size(), 3u);
}

TEST_F(SynonymTest, ClassOfSingletonIsSelf) {
  ValueId v = pool_->Intern("lonely");
  EXPECT_EQ(dict_.ClassOf(v), v);
  auto members = dict_.ClassMembers(v);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], v);
}

TEST_F(SynonymTest, IdempotentAdd) {
  dict_.AddSynonym("p", "q");
  dict_.AddSynonym("p", "q");
  dict_.AddSynonym("q", "p");
  EXPECT_TRUE(dict_.AreSynonyms("p", "q"));
  EXPECT_EQ(dict_.ClassMembers(pool_->Find("p")).size(), 2u);
}

}  // namespace
}  // namespace ms
