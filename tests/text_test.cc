// Tests for cell normalization, the banded edit distance of Algorithm 2
// (validated against the full-matrix reference on random inputs), the
// bit-parallel Myers kernels (locked to the full DP by a differential fuzz
// harness), the fractional matching threshold, and the synonym dictionary.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/myers.h"
#include "text/normalize.h"
#include "text/synonyms.h"

namespace ms {
namespace {

// -------------------------------------------------------------- Normalize

TEST(NormalizeTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(NormalizeCell("  South   KOREA "), "south korea");
}

TEST(NormalizeTest, StripsPunctuation) {
  EXPECT_EQ(NormalizeCell("Korea, Republic of"), "korea republic of");
  EXPECT_EQ(NormalizeCell("American Samoa (US)"), "american samoa us");
}

TEST(NormalizeTest, StripsFootnoteMarks) {
  EXPECT_EQ(NormalizeCell("American Samoa[1]"), "american samoa");
  EXPECT_EQ(NormalizeCell("France[12][3]"), "france");
}

TEST(NormalizeTest, KeepsInnerBracketsThatAreNotFootnotes) {
  // "[ab]" is not a numeric footnote; punctuation stripping still removes
  // the brackets themselves.
  EXPECT_EQ(NormalizeCell("x [ab]"), "x ab");
}

TEST(NormalizeTest, OptionsCanDisableEachStep) {
  NormalizeOptions opts;
  opts.lowercase = false;
  opts.strip_punctuation = false;
  opts.strip_footnote_marks = false;
  opts.collapse_whitespace = false;
  EXPECT_EQ(NormalizeCell("A,b [1]", opts), "A,b [1]");
}

TEST(NormalizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(NormalizeCell(""), "");
  EXPECT_EQ(NormalizeCell("   "), "");
  EXPECT_EQ(NormalizeCell("..."), "");
}

TEST(NormalizeTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("123"));
  EXPECT_TRUE(LooksNumeric("1,234.56"));
  EXPECT_TRUE(LooksNumeric("-42%"));
  EXPECT_TRUE(LooksNumeric("$1000"));
  EXPECT_FALSE(LooksNumeric("abc"));
  EXPECT_FALSE(LooksNumeric("12 apples"));
  EXPECT_FALSE(LooksNumeric(""));
}

TEST(NormalizeTest, LooksTemporal) {
  EXPECT_TRUE(LooksTemporal("1994"));
  EXPECT_TRUE(LooksTemporal("2017"));
  EXPECT_TRUE(LooksTemporal("10-12"));
  EXPECT_TRUE(LooksTemporal("7:30"));
  EXPECT_FALSE(LooksTemporal("3127"));  // not 1xxx/2xxx year
  EXPECT_FALSE(LooksTemporal("hello"));
  EXPECT_FALSE(LooksTemporal("10-12 pm"));
}

// ---------------------------------------------------------- EditDistance

TEST(EditDistanceTest, FullBasics) {
  EXPECT_EQ(EditDistanceFull("", ""), 0u);
  EXPECT_EQ(EditDistanceFull("abc", ""), 3u);
  EXPECT_EQ(EditDistanceFull("", "abc"), 3u);
  EXPECT_EQ(EditDistanceFull("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistanceFull("abc", "abc"), 0u);
  EXPECT_EQ(EditDistanceFull("usa", "rsa"), 1u);
}

TEST(EditDistanceTest, BandedMatchesFullWithinBand) {
  EXPECT_EQ(EditDistanceBanded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(EditDistanceBanded("abc", "abc", 0), 0u);
  EXPECT_EQ(EditDistanceBanded("american samoa", "american samoa us", 3), 3u);
}

TEST(EditDistanceTest, BandedReportsExceededBand) {
  EXPECT_GT(EditDistanceBanded("kitten", "sitting", 2), 2u);
  EXPECT_GT(EditDistanceBanded("aaaa", "bbbb", 3), 3u);
  EXPECT_GT(EditDistanceBanded("short", "muchlongerstring", 3), 3u);
}

TEST(EditDistanceTest, BandedHandlesEmptyStrings) {
  EXPECT_EQ(EditDistanceBanded("", "", 0), 0u);
  EXPECT_EQ(EditDistanceBanded("", "ab", 2), 2u);
  EXPECT_GT(EditDistanceBanded("", "abc", 2), 2u);
}

TEST(EditDistanceTest, BandedIsSymmetric) {
  EXPECT_EQ(EditDistanceBanded("abcdef", "abdf", 4),
            EditDistanceBanded("abdf", "abcdef", 4));
}

/// Property sweep: the banded distance must agree with the full DP whenever
/// the true distance fits the band, and must report > band otherwise.
class BandedVsFullTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BandedVsFullTest, AgreesWithReference) {
  Rng rng(GetParam());
  const char alphabet[] = "abcde";
  for (int iter = 0; iter < 300; ++iter) {
    std::string a, b;
    const size_t la = rng.Uniform(15);
    const size_t lb = rng.Uniform(15);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Uniform(5)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Uniform(5)];
    const size_t truth = EditDistanceFull(a, b);
    for (size_t band = 0; band <= 6; ++band) {
      const size_t got = EditDistanceBanded(a, b, band);
      if (truth <= band) {
        EXPECT_EQ(got, truth) << "a=" << a << " b=" << b << " band=" << band;
      } else {
        EXPECT_GT(got, band) << "a=" << a << " b=" << b << " band=" << band;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BandedVsFullTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------------------ Myers

TEST(MyersTest, SingleWordBasics) {
  EXPECT_EQ(Myers64("", ""), 0u);
  EXPECT_EQ(Myers64("abc", ""), 3u);
  EXPECT_EQ(Myers64("", "abc"), 3u);
  EXPECT_EQ(Myers64("kitten", "sitting"), 3u);
  EXPECT_EQ(Myers64("abc", "abc"), 0u);
  EXPECT_EQ(Myers64("usa", "rsa"), 1u);
  EXPECT_EQ(Myers64("american samoa", "american samoa us"), 3u);
}

TEST(MyersTest, BlockedMatchesSingleWordOnSharedInputs) {
  EXPECT_EQ(MyersBlocked("kitten", "sitting"), 3u);
  EXPECT_EQ(MyersBlocked("", "xy"), 2u);
  EXPECT_EQ(MyersBlocked("xy", ""), 2u);
}

TEST(MyersTest, WordBoundaryPatterns) {
  // Patterns straddling the 64-bit word boundary exercise the carry chain
  // between blocks: lengths 63..65, 127..129, and a 3-block case.
  for (size_t len : {63u, 64u, 65u, 127u, 128u, 129u, 200u}) {
    std::string a(len, 'a');
    std::string b = a;
    b[len / 2] = 'b';            // one substitution
    std::string c = a + "xyz";   // three insertions
    EXPECT_EQ(MyersBlocked(a, a), 0u) << len;
    EXPECT_EQ(MyersBlocked(a, b), 1u) << len;
    EXPECT_EQ(MyersBlocked(a, c), 3u) << len;
    EXPECT_EQ(MyersBlocked(a, b), EditDistanceFull(a, b)) << len;
    if (len <= 64) {
      EXPECT_EQ(Myers64(a, b), 1u) << len;
      EXPECT_EQ(Myers64(a, c), 3u) << len;
    }
  }
}

TEST(MyersTest, PrebuiltPatternReuse) {
  MyersPattern p;
  BuildMyersPattern("washington", &p);
  EXPECT_TRUE(p.single_word());
  EXPECT_EQ(MyersDistance(p, "washington"), 0u);
  EXPECT_EQ(MyersDistance(p, "wisconsin"),
            EditDistanceFull("washington", "wisconsin"));
  // Rebuilding over the same object must fully reset the masks.
  BuildMyersPattern("ohio", &p);
  EXPECT_EQ(MyersDistance(p, "ohio"), 0u);
  EXPECT_EQ(MyersDistance(p, "iowa"), EditDistanceFull("ohio", "iowa"));
  BuildMyersPattern("", &p);
  EXPECT_EQ(MyersDistance(p, "xyz"), 3u);
}

TEST(MyersTest, UnicodeBytesAreByteLevel) {
  // Distances are over bytes, matching the scalar DP: "é" is two UTF-8
  // bytes, so café -> cafe is one substitution plus one deletion.
  const std::string accented = "caf\xc3\xa9";
  EXPECT_EQ(MyersBlocked(accented, "cafe"), EditDistanceFull(accented, "cafe"));
  EXPECT_EQ(Myers64(accented, "cafe"), 2u);
  const std::string high(3, '\xff');
  EXPECT_EQ(Myers64(high, "abc"), 3u);
  EXPECT_EQ(Myers64(high, high), 0u);
}

/// Differential fuzz generator: mixed lengths 0–200 over several alphabets
/// (tiny, lowercase, raw bytes, multi-byte UTF-8), long shared prefixes and
/// suffixes, mutated copies, and repeated-character blocks — the shapes that
/// break bit-parallel implementations (carry propagation, partial top
/// blocks, high-bit bytes).
struct DiffCase {
  std::string a, b;
};

DiffCase MakeDiffCase(Rng& rng) {
  auto rand_char = [&](int alphabet) -> char {
    switch (alphabet) {
      case 0: return static_cast<char>('a' + rng.Uniform(3));
      case 1: return static_cast<char>('a' + rng.Uniform(26));
      default: return static_cast<char>(rng.Uniform(256));
    }
  };
  auto rand_len = [&]() -> size_t {
    const double r = rng.UniformDouble();
    if (r < 0.55) return rng.Uniform(25);        // short: the corpus case
    if (r < 0.85) return 40 + rng.Uniform(60);   // 1-2 words
    return 120 + rng.Uniform(81);                // multi-block, up to 200
  };
  auto rand_str = [&](size_t len, int alphabet) {
    std::string s;
    s.reserve(len);
    if (alphabet == 3) {  // UTF-8 multibyte runs
      while (s.size() < len) {
        const uint64_t cp = 0x80 + rng.Uniform(0xffff - 0x80);
        if (cp < 0x800) {
          s += static_cast<char>(0xc0 | (cp >> 6));
          s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
          s += static_cast<char>(0xe0 | (cp >> 12));
          s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
          s += static_cast<char>(0x80 | (cp & 0x3f));
        }
      }
      s.resize(len);
      return s;
    }
    if (alphabet == 4) {  // repeated-char blocks
      while (s.size() < len) {
        const char c = static_cast<char>('a' + rng.Uniform(3));
        const size_t run = 1 + rng.Uniform(12);
        s.append(std::min(run, len - s.size()), c);
      }
      return s;
    }
    for (size_t i = 0; i < len; ++i) s += rand_char(alphabet);
    return s;
  };

  const int alphabet = static_cast<int>(rng.Uniform(5));
  DiffCase c;
  c.a = rand_str(rand_len(), alphabet);
  switch (rng.Uniform(4)) {
    case 0:  // independent
      c.b = rand_str(rand_len(), alphabet);
      break;
    case 1: {  // mutated copy: substitutions + indels
      c.b = c.a;
      const size_t edits = rng.Uniform(8);
      for (size_t e = 0; e < edits && !c.b.empty(); ++e) {
        const size_t pos = rng.Uniform(c.b.size() + 1);
        switch (rng.Uniform(3)) {
          case 0:
            if (pos < c.b.size()) c.b[pos] = rand_char(alphabet);
            break;
          case 1:
            c.b.insert(c.b.begin() + pos, rand_char(alphabet));
            break;
          default:
            if (pos < c.b.size()) c.b.erase(c.b.begin() + pos);
            break;
        }
      }
      break;
    }
    case 2: {  // shared prefix, divergent middle, shared suffix
      const std::string prefix = rand_str(rng.Uniform(80), alphabet);
      const std::string suffix = rand_str(rng.Uniform(80), alphabet);
      c.a = prefix + rand_str(rng.Uniform(12), alphabet) + suffix;
      c.b = prefix + rand_str(rng.Uniform(12), alphabet) + suffix;
      break;
    }
    default:  // length-skewed: one side much longer
      c.b = c.a + rand_str(rand_len(), alphabet);
      if (rng.Bernoulli(0.5)) std::swap(c.a, c.b);
      break;
  }
  if (c.a.size() > 200) c.a.resize(200);
  if (c.b.size() > 200) c.b.resize(200);
  return c;
}

/// ≥ 10k seeded cases across the suite: every fast path must agree with the
/// O(nm) full-matrix oracle, and the banded DP must agree within its band.
class MyersDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MyersDifferentialTest, AllImplementationsAgree) {
  Rng rng(GetParam());
  MyersPattern prebuilt;
  for (int iter = 0; iter < 1300; ++iter) {
    const DiffCase c = MakeDiffCase(rng);
    const size_t truth = EditDistanceFull(c.a, c.b);

    // Bit-parallel kernels are exact everywhere.
    EXPECT_EQ(MyersBlocked(c.a, c.b), truth)
        << "|a|=" << c.a.size() << " |b|=" << c.b.size() << " iter=" << iter;
    if (c.a.size() <= 64) {
      EXPECT_EQ(Myers64(c.a, c.b), truth) << "iter=" << iter;
    }
    BuildMyersPattern(c.a, &prebuilt);
    EXPECT_EQ(MyersDistance(prebuilt, c.b), truth) << "iter=" << iter;

    // The banded scalar and the bounded (early-abandoning) Myers variant
    // agree whenever the distance fits the band, and both report > band
    // otherwise.
    for (const size_t band :
         {size_t{0}, size_t{2}, size_t{10}, truth, truth + 1}) {
      const size_t got = EditDistanceBanded(c.a, c.b, band);
      const size_t bounded = MyersDistanceBounded(prebuilt, c.b, band);
      if (truth <= band) {
        EXPECT_EQ(got, truth) << "band=" << band << " iter=" << iter;
        EXPECT_EQ(bounded, truth) << "band=" << band << " iter=" << iter;
      } else {
        EXPECT_GT(got, band) << "band=" << band << " iter=" << iter;
        EXPECT_GT(bounded, band) << "band=" << band << " iter=" << iter;
      }
    }

    // The ApproxMatch predicate is gate-invariant.
    EditDistanceOptions fast, slow;
    fast.use_bit_parallel = true;
    slow.use_bit_parallel = false;
    EXPECT_EQ(ApproxMatch(c.a, c.b, fast), ApproxMatch(c.a, c.b, slow))
        << "iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MyersDifferentialTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107,
                                           108));

// ----------------------------------------------------- ApproxMatch properties

TEST(ApproxMatchPropertyTest, SymmetricUnderBothGates) {
  Rng rng(555);
  for (int iter = 0; iter < 2000; ++iter) {
    const DiffCase c = MakeDiffCase(rng);
    for (const bool gate : {true, false}) {
      EditDistanceOptions opts;
      opts.use_bit_parallel = gate;
      EXPECT_EQ(ApproxMatch(c.a, c.b, opts), ApproxMatch(c.b, c.a, opts))
          << "gate=" << gate << " iter=" << iter;
    }
  }
}

TEST(EditDistancePropertyTest, BandMonotonicity) {
  // Once the band admits the true distance, widening it never changes the
  // result; below it, the reported value always exceeds the band.
  Rng rng(556);
  for (int iter = 0; iter < 1000; ++iter) {
    const DiffCase c = MakeDiffCase(rng);
    const size_t truth = EditDistanceFull(c.a, c.b);
    size_t prev = EditDistanceBanded(c.a, c.b, 0);
    for (size_t band = 1; band <= 12; ++band) {
      const size_t cur = EditDistanceBanded(c.a, c.b, band);
      if (truth <= band - 1) {
        EXPECT_EQ(cur, prev) << "band=" << band;  // stable once admitted
      }
      EXPECT_TRUE(cur == truth || cur > band) << "band=" << band;
      prev = cur;
    }
  }
}

TEST(FractionalThresholdTest, EmptyStringBoundaries) {
  EXPECT_EQ(FractionalThreshold("", ""), 0u);
  EXPECT_EQ(FractionalThreshold("", "abcdefghij"), 0u);
  // Equal strings still match (exact equality shortcut), empty-vs-nonempty
  // never does under any gate.
  for (const bool gate : {true, false}) {
    EditDistanceOptions opts;
    opts.use_bit_parallel = gate;
    EXPECT_TRUE(ApproxMatch("", "", opts));
    EXPECT_FALSE(ApproxMatch("", "a", opts));
    EXPECT_FALSE(ApproxMatch("abcdefghij", "", opts));
  }
}

TEST(FractionalThresholdTest, ExactlyIntegralProducts) {
  // len · f_ed landing exactly on an integer must not round up: |a| = 10,
  // f = 0.2 → θ = 2, so distance-3 pairs of 10-char strings never match.
  EXPECT_EQ(FractionalThreshold("aaaaaaaaaa", "bbbbbbbbbb"), 2u);
  EXPECT_EQ(FractionalThreshold("aaaaa", "bbbbb"), 1u);
  EditDistanceOptions opts;
  EXPECT_TRUE(ApproxMatch("aaaaaaaaaa", "aaaaaaaabb", opts));   // d=2 == θ
  EXPECT_FALSE(ApproxMatch("aaaaaaaaaa", "aaaaaaabbb", opts));  // d=3 > θ
}

TEST(FractionalThresholdTest, CapSaturationBoundary) {
  // 50 · 0.2 = 10 hits k_ed exactly; longer strings stay clamped at 10.
  const std::string a50(50, 'x'), b50(50, 'y');
  EXPECT_EQ(FractionalThreshold(a50, b50), 10u);
  const std::string a55(55, 'x'), b55(55, 'y');
  EXPECT_EQ(FractionalThreshold(a55, b55), 10u);  // min(11, 11, cap)
  EditDistanceOptions uncapped;
  uncapped.cap = 100;
  EXPECT_EQ(FractionalThreshold(a55, b55, uncapped), 11u);
  // At the cap boundary the predicate is exact: 10 edits match, 11 don't.
  std::string base(60, 'x');
  std::string ten_edits = base, eleven_edits = base;
  for (int i = 0; i < 10; ++i) ten_edits[i] = 'y';
  for (int i = 0; i < 11; ++i) eleven_edits[i] = 'y';
  for (const bool gate : {true, false}) {
    EditDistanceOptions opts;
    opts.use_bit_parallel = gate;
    EXPECT_TRUE(ApproxMatch(base, ten_edits, opts)) << gate;
    EXPECT_FALSE(ApproxMatch(base, eleven_edits, opts)) << gate;
  }
}

TEST(FractionalThresholdTest, PaperExample8) {
  // θ_ed("American Samoa"(13ch no punct? use raw), ...) = min{⌊13*0.2⌋,
  // ⌊15*0.2⌋, 10} = 2 per the paper's walk-through.
  std::string a = "american samoa";     // 14 chars
  std::string b = "american samoa us";  // 17 chars
  EXPECT_EQ(FractionalThreshold(a, b), 2u);
}

TEST(FractionalThresholdTest, ShortCodesRequireExactMatch) {
  EXPECT_EQ(FractionalThreshold("USA", "RSA"), 0u);
  EXPECT_FALSE(ApproxMatch("USA", "RSA"));
  EXPECT_TRUE(ApproxMatch("USA", "USA"));
}

TEST(FractionalThresholdTest, CapAppliesToVeryLongStrings) {
  std::string a(200, 'x');
  std::string b(200, 'y');
  EXPECT_EQ(FractionalThreshold(a, b), 10u);  // k_ed cap
}

TEST(ApproxMatchTest, ToleratesSmallVariation) {
  // 2 edits, threshold min(⌊17·0.2⌋, ⌊15·0.2⌋, 10) = 3: match.
  EXPECT_TRUE(ApproxMatch("korea republic of", "korea republic f"));
  // 3 edits, threshold min(3, ⌊14·0.2⌋ = 2, 10) = 2: no match.
  EXPECT_FALSE(ApproxMatch("korea republic of", "korea republic"));
  EXPECT_FALSE(ApproxMatch("washington", "wisconsin"));
}

TEST(ApproxMatchTest, CustomOptions) {
  EditDistanceOptions strict;
  strict.fractional = 0.0;
  EXPECT_FALSE(ApproxMatch("abcdefgh", "abcdefgx", strict));
  EditDistanceOptions loose;
  loose.fractional = 0.5;
  EXPECT_TRUE(ApproxMatch("abcdefgh", "abcdxxgh", loose));
}

// ---------------------------------------------------------------- Synonyms

class SynonymTest : public ::testing::Test {
 protected:
  SynonymTest() : pool_(std::make_shared<StringPool>()), dict_(pool_) {}
  std::shared_ptr<StringPool> pool_;
  SynonymDictionary dict_;
};

TEST_F(SynonymTest, BasicPairs) {
  dict_.AddSynonym("US Virgin Islands", "United States Virgin Islands");
  EXPECT_TRUE(
      dict_.AreSynonyms("US Virgin Islands", "United States Virgin Islands"));
  EXPECT_FALSE(dict_.AreSynonyms("US Virgin Islands", "Guam"));
}

TEST_F(SynonymTest, Transitivity) {
  dict_.AddSynonym("a", "b");
  dict_.AddSynonym("b", "c");
  EXPECT_TRUE(dict_.AreSynonyms("a", "c"));
}

TEST_F(SynonymTest, SelfSynonymAlwaysTrue) {
  ValueId v = pool_->Intern("solo");
  EXPECT_TRUE(dict_.AreSynonyms(v, v));
  EXPECT_TRUE(dict_.AreSynonyms("never seen", "never seen"));
}

TEST_F(SynonymTest, UnknownStringsAreNotSynonyms) {
  EXPECT_FALSE(dict_.AreSynonyms("ghost1", "ghost2"));
}

TEST_F(SynonymTest, ClassMembersEnumeratesClass) {
  dict_.AddSynonym("x", "y");
  dict_.AddSynonym("y", "z");
  ValueId x = pool_->Find("x");
  auto members = dict_.ClassMembers(x);
  EXPECT_EQ(members.size(), 3u);
}

TEST_F(SynonymTest, ClassOfSingletonIsSelf) {
  ValueId v = pool_->Intern("lonely");
  EXPECT_EQ(dict_.ClassOf(v), v);
  auto members = dict_.ClassMembers(v);
  ASSERT_EQ(members.size(), 1u);
  EXPECT_EQ(members[0], v);
}

TEST_F(SynonymTest, IdempotentAdd) {
  dict_.AddSynonym("p", "q");
  dict_.AddSynonym("p", "q");
  dict_.AddSynonym("q", "p");
  EXPECT_TRUE(dict_.AreSynonyms("p", "q"));
  EXPECT_EQ(dict_.ClassMembers(pool_->Find("p")).size(), 2u);
}

}  // namespace
}  // namespace ms
